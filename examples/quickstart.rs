//! Quickstart: build a trace with the paper's API, inspect it, and
//! simulate a small microservice under AccelFlow.
//!
//! Run with: `cargo run --release --example quickstart`

use accelflow::core::{Machine, MachineConfig, Policy};
use accelflow::sim::SimDuration;
use accelflow::trace::builder::TraceBuilder;
use accelflow::trace::cond::{BranchCond, PayloadFlags};
use accelflow::trace::format::DataFormat;
use accelflow::trace::kind::AccelKind::*;
use accelflow::trace::packed;
use accelflow::workloads::socialnetwork;

fn main() {
    // 1. Build Fig 4a's trace (receive a function request) with the
    //    paper's seq/branch/trans API — Listing 1.
    let trace = TraceBuilder::new("func_req")
        .seq([Tcp, Decr, Rpc, Dser])
        .branch(
            BranchCond::Compressed,
            |b| b.trans(DataFormat::Json, DataFormat::Str).seq([Dcmp]),
            |b| b,
        )
        .seq([Ldb])
        .to_cpu()
        .build();

    println!("trace '{}':", trace.name());
    println!(
        "  {} accelerator slots, {} branch(es)",
        trace.accelerator_count(),
        trace.branch_count()
    );

    // 2. Pack it into its binary form (4-bit accelerator IDs).
    let bytes = packed::pack(&trace).expect("trace packs");
    println!("  packed: {} bytes: {:02x?}", bytes.len(), bytes);

    // 3. Resolve both control-flow paths.
    for (name, flags) in [
        ("uncompressed", PayloadFlags::default()),
        (
            "compressed",
            PayloadFlags {
                compressed: true,
                ..Default::default()
            },
        ),
    ] {
        let path: Vec<String> = trace
            .resolve_path(&flags)
            .iter()
            .map(|s| format!("{s:?}"))
            .collect();
        println!("  {name}: {}", path.join(" -> "));
    }

    // 4. Simulate the UniqId service under the AccelFlow orchestrator.
    let services = vec![socialnetwork::uniq_id()];
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(2);
    let report = Machine::run_workload(&cfg, &services, 2_000.0, SimDuration::from_millis(50), 7);
    let stats = &report.per_service[0];
    println!(
        "\nUniqId @2k RPS under AccelFlow: {} completed, mean {}, p99 {}",
        stats.completed,
        stats.mean(),
        stats.p99(),
    );
}
