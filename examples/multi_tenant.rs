//! Fine-grained accelerator virtualization (paper §IV-D): two tenants
//! share the ensemble; PE scratchpads are wiped between tenants, and a
//! per-tenant trace cap stops one tenant from hoarding accelerators.
//!
//! Run with: `cargo run --release --example multi_tenant`

use accelflow::accel::queue::TenantId;
use accelflow::core::{Machine, MachineConfig, Policy};
use accelflow::sim::SimDuration;
use accelflow::workloads::socialnetwork;

fn main() {
    // Tenant 1 runs the latency-sensitive UniqId; tenant 2 floods the
    // ensemble with heavy CPost traffic.
    let mut victim = socialnetwork::uniq_id();
    victim.tenant = TenantId(1);
    let mut aggressor = socialnetwork::compose_post();
    aggressor.tenant = TenantId(2);
    let services = vec![victim, aggressor];

    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12}",
        "cap N", "UniqId p99", "CPost p99", "throttled", "wipes"
    );
    for cap in [usize::MAX, 64, 16, 4] {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(3);
        cfg.tenant_cap = cap;
        let report =
            Machine::run_workload(&cfg, &services, 9_000.0, SimDuration::from_millis(60), 5);
        println!(
            "{:>10} {:>14} {:>14} {:>12} {:>12}",
            if cap == usize::MAX {
                "off".to_string()
            } else {
                cap.to_string()
            },
            report.per_service[0].p99().to_string(),
            report.per_service[1].p99().to_string(),
            report.totals.tenant_throttled,
            report.totals.tenant_wipes,
        );
    }
    println!("\nLower caps throttle the aggressor's trace initiations (counted");
    println!("above) while scratchpad wipes charge the isolation cost of");
    println!("interleaving tenants on the same PEs (§IV-D).");
}
