//! Soft-SLO deadline scheduling (paper §IV-C): compare FIFO input
//! dispatchers against the deadline-aware policy when a latency-
//! critical service shares the ensemble with heavy background traffic.
//!
//! Run with: `cargo run --release --example slo_scheduling`

use accelflow::core::{Machine, MachineConfig, Policy};
use accelflow::sim::SimDuration;
use accelflow::workloads::socialnetwork;

fn main() {
    // UniqId carries a 5x-unloaded soft SLO; CPost is the heavy
    // background service filling the accelerator queues.
    let mut services = vec![socialnetwork::uniq_id(), socialnetwork::compose_post()];
    services[0].slo_slack = Some(5.0);

    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>10}",
        "dispatcher", "UniqId mean", "UniqId p99", "deadline miss", "CPost p99"
    );
    for policy in [Policy::AccelFlow, Policy::AccelFlowDeadline] {
        let mut cfg = MachineConfig::new(policy);
        cfg.warmup = SimDuration::from_millis(5);
        // A lean ensemble (2 PEs per accelerator) makes the input
        // queues actually build, giving the scheduler room to reorder.
        cfg.arch.pes_per_accelerator = 2;
        let report =
            Machine::run_workload(&cfg, &services, 30_000.0, SimDuration::from_millis(80), 3);
        let uniq = &report.per_service[0];
        let cpost = &report.per_service[1];
        let miss = uniq.deadline_misses as f64 / uniq.completed.max(1) as f64;
        println!(
            "{:<14} {:>12} {:>12} {:>13.2}% {:>10}",
            match policy {
                Policy::AccelFlowDeadline => "deadline-aware",
                _ => "FIFO",
            },
            uniq.mean().to_string(),
            uniq.p99().to_string(),
            miss * 100.0,
            cpost.p99().to_string(),
        );
    }
    println!("\nThe deadline-aware input dispatcher lets urgent entries jump the");
    println!("queue when their slack runs out (§IV-C), trading background-service");
    println!("latency for SLO compliance.");
}
