//! Building a bespoke accelerator pipeline with the trace API: an
//! ETL-style ingest pipeline with data-format transformation, a
//! conditional re-compression stage, packed-encoding round trip, and a
//! run on the simulated machine.
//!
//! Run with: `cargo run --release --example custom_accelerator_pipeline`

use accelflow::core::{
    CallSpec, CyclesDist, Machine, MachineConfig, Policy, ServiceSpec, SizeDist, StageSpec,
};
use accelflow::sim::SimDuration;
use accelflow::trace::builder::TraceBuilder;
use accelflow::trace::cond::{BranchCond, PayloadFlags};
use accelflow::trace::format::DataFormat;
use accelflow::trace::kind::AccelKind::*;
use accelflow::trace::packed;

fn main() {
    // Ingest: decrypt, decompress, deserialize; then either archive
    // (recompress, BSON) or pass through, depending on a payload bit.
    let pipeline = TraceBuilder::new("ingest_etl")
        .seq([Tcp, Decr, Dcmp, Dser])
        .branch(
            BranchCond::Custom {
                mask: 0b0000_0001,
                expect: 0b0000_0001,
            },
            |b| b.trans(DataFormat::Json, DataFormat::Bson).seq([Ser, Cmp]),
            |b| b.seq([Ser]),
        )
        .to_cpu()
        .build();

    println!("pipeline '{}':", pipeline.name());
    let bytes = packed::pack(&pipeline).expect("packs");
    println!("  packed into {} bytes: {:02x?}", bytes.len(), bytes);
    let back = packed::unpack("ingest_etl", &bytes).expect("unpacks");
    assert_eq!(back.slots(), pipeline.slots());
    println!("  round-trips through the binary encoding");

    for (label, field) in [("archive", 1u8), ("passthrough", 0u8)] {
        let flags = PayloadFlags {
            custom_field: field,
            ..Default::default()
        };
        let steps: Vec<String> = pipeline
            .resolve_path(&flags)
            .iter()
            .map(|s| format!("{s:?}"))
            .collect();
        println!("  {label}: {}", steps.join(" -> "));
    }

    // Run it as a service at increasing loads and watch the ensemble
    // absorb the pipeline.
    let mut call = CallSpec::custom(pipeline);
    call.payload = SizeDist::new(8_192.0, 0.6, 128 * 1024);
    let svc = ServiceSpec::new(
        "IngestEtl",
        vec![
            StageSpec::Call(call),
            StageSpec::Cpu(CyclesDist::new(15_000.0, 0.3)),
        ],
    );
    println!(
        "\n{:<10} {:>10} {:>12} {:>12}",
        "load", "completed", "mean (us)", "p99 (us)"
    );
    for rps in [2_000.0, 10_000.0, 40_000.0] {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(3);
        let report = Machine::run_workload(
            &cfg,
            std::slice::from_ref(&svc),
            rps,
            SimDuration::from_millis(40),
            11,
        );
        let s = &report.per_service[0];
        println!(
            "{:<10} {:>10} {:>12.1} {:>12.1}",
            format!("{}k", rps / 1000.0),
            s.completed,
            s.mean().as_micros_f64(),
            s.p99().as_micros_f64()
        );
    }
}
