//! Driving the simulator from a JSON workload file: define a service
//! mix without writing Rust, load it, and compare orchestrators on it.
//!
//! Run with: `cargo run --release --example json_workload`

use accelflow::core::{Machine, MachineConfig, Policy};
use accelflow::sim::SimDuration;
use accelflow::workloads::config;

const WORKLOAD: &str = r#"[
  {
    "name": "Checkout",
    "stages": [
      { "call": { "template": "T1" } },
      { "cpu": { "median_cycles": 60000, "sigma": 0.3 } },
      { "call": { "template": "T4",
                  "flags": { "compressed": 0.2, "hit": 0.7, "found": 0.99,
                             "exception": 0.01, "cache_compressed": 0.2 } } },
      { "cpu": { "median_cycles": 40000, "sigma": 0.3 } },
      { "parallel": [
          { "call": { "template": "T9", "cmp_prob": 0.5 } },
          { "call": { "template": "T9" } }
      ] },
      { "call": { "template": "T3" } }
    ]
  },
  {
    "name": "Inventory",
    "stages": [
      { "call": { "template": "T1",
                  "payload": { "median": 900, "sigma": 0.5, "max": 8192 } } },
      { "cpu": { "median_cycles": 25000, "sigma": 0.2 } },
      { "call": { "template": "T2" } }
    ]
  }
]"#;

fn main() {
    let services = config::load_services(WORKLOAD).expect("workload config parses");
    println!(
        "loaded {} services: {}\n",
        services.len(),
        services
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!(
        "{:<12} {:>14} {:>14}",
        "architecture", "Checkout p99", "Inventory p99"
    );
    for policy in [Policy::AccelFlow, Policy::Relief, Policy::NonAcc] {
        let mut cfg = MachineConfig::new(policy);
        cfg.warmup = SimDuration::from_millis(5);
        let report =
            Machine::run_workload(&cfg, &services, 12_000.0, SimDuration::from_millis(60), 21);
        println!(
            "{:<12} {:>14} {:>14}",
            policy.name(),
            report.per_service[0].p99().to_string(),
            report.per_service[1].p99().to_string(),
        );
    }

    // Round-trip: export the built-in SocialNetwork mix as JSON.
    let exported = config::save_services(&accelflow::workloads::socialnetwork::all());
    println!(
        "\nexported built-in SocialNetwork mix: {} bytes of JSON",
        exported.len()
    );
    assert!(config::load_services(&exported).is_ok());
}
