//! Orchestrator shootout: the paper's headline experiment at laptop
//! scale — the eight SocialNetwork services under bursty load, across
//! all five architectures plus the Ideal bound.
//!
//! Run with: `cargo run --release --example orchestrator_shootout`

use accelflow::accel::timing::ServiceTimeModel;
use accelflow::arch::config::ArchConfig;
use accelflow::core::{Machine, MachineConfig, Policy};
use accelflow::sim::SimDuration;
use accelflow::trace::templates::TraceLibrary;
use accelflow::workloads::arrivals::{bursty_arrivals, BurstyProfile};
use accelflow::workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
    let duration = SimDuration::from_millis(60);

    // One bursty arrival trace shared by every policy, so differences
    // come from orchestration alone (common random numbers).
    let arrivals = bursty_arrivals(
        &services,
        &lib,
        &timing,
        13_400.0,
        duration,
        42,
        &BurstyProfile::alibaba_like(),
    );
    println!(
        "{} requests across {} services\n",
        arrivals.len(),
        services.len()
    );
    println!(
        "{:<13} {:>10} {:>12} {:>12} {:>10}",
        "architecture", "completed", "mean (us)", "p99 (us)", "vs AF p99"
    );

    let mut af_p99 = 0.0;
    let mut rows = Vec::new();
    for policy in [
        Policy::AccelFlow,
        Policy::Ideal,
        Policy::Cohort,
        Policy::Relief,
        Policy::CpuCentric,
        Policy::NonAcc,
    ] {
        let mut cfg = MachineConfig::new(policy);
        cfg.warmup = SimDuration::from_millis(5);
        let report = Machine::run_arrivals(&cfg, &services, arrivals.clone(), duration, 42);
        let agg = report.aggregate_latency();
        let p99 = agg.percentile_duration(99.0).as_micros_f64();
        if policy == Policy::AccelFlow {
            af_p99 = p99;
        }
        rows.push((
            policy,
            report.completed(),
            agg.mean_duration().as_micros_f64(),
            p99,
        ));
    }
    for (policy, completed, mean, p99) in rows {
        println!(
            "{:<13} {:>10} {:>12.1} {:>12.1} {:>9.2}x",
            policy.name(),
            completed,
            mean,
            p99,
            p99 / af_p99
        );
    }
}
