//! Cross-crate integration tests of the orchestration policies: the
//! paper's qualitative results must hold at test scale.

use accelflow::accel::timing::ServiceTimeModel;
use accelflow::arch::config::ArchConfig;
use accelflow::core::{Machine, MachineConfig, Policy};
use accelflow::sim::SimDuration;
use accelflow::trace::templates::TraceLibrary;
use accelflow::workloads::arrivals::{bursty_arrivals, BurstyProfile};
use accelflow::workloads::socialnetwork;

fn services() -> Vec<accelflow::core::ServiceSpec> {
    vec![
        socialnetwork::uniq_id(),
        socialnetwork::login(),
        socialnetwork::read_home_timeline(),
    ]
}

fn shared_arrivals(rps: f64, ms: u64) -> Vec<accelflow::core::Arrival> {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
    bursty_arrivals(
        &services(),
        &lib,
        &timing,
        rps,
        SimDuration::from_millis(ms),
        77,
        &BurstyProfile::alibaba_like(),
    )
}

fn run(
    policy: Policy,
    arrivals: Vec<accelflow::core::Arrival>,
    ms: u64,
) -> accelflow::core::RunReport {
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = SimDuration::from_millis(2);
    Machine::run_arrivals(
        &cfg,
        &services(),
        arrivals,
        SimDuration::from_millis(ms),
        77,
    )
}

#[test]
fn every_policy_completes_a_bursty_workload() {
    let arrivals = shared_arrivals(800.0, 30);
    assert!(arrivals.len() > 30);
    for policy in [
        Policy::NonAcc,
        Policy::CpuCentric,
        Policy::Relief,
        Policy::ReliefPerTypeQ,
        Policy::Direct,
        Policy::CntrFlow,
        Policy::Cohort,
        Policy::AccelFlow,
        Policy::AccelFlowDeadline,
        Policy::Ideal,
    ] {
        let r = run(policy, arrivals.clone(), 30);
        assert!(
            r.completion_ratio() > 0.98,
            "{policy}: completion {}",
            r.completion_ratio()
        );
        assert!(r.aggregate_latency().count() > 0, "{policy}");
    }
}

#[test]
fn accelflow_beats_the_baselines_and_tracks_ideal() {
    let arrivals = shared_arrivals(3_000.0, 40);
    let p99 = |policy: Policy| {
        run(policy, arrivals.clone(), 40)
            .aggregate_latency()
            .percentile(99.0) as f64
    };
    let af = p99(Policy::AccelFlow);
    let ideal = p99(Policy::Ideal);
    let relief = p99(Policy::Relief);
    let non = p99(Policy::NonAcc);
    assert!(
        af <= ideal * 1.35,
        "AccelFlow {af} must track Ideal {ideal}"
    );
    assert!(af < relief, "AccelFlow {af} vs RELIEF {relief}");
    assert!(af < non, "AccelFlow {af} vs Non-acc {non}");
}

#[test]
fn orchestration_cost_ordering() {
    // Per-request orchestration time: AccelFlow (dispatchers) must be
    // orders of magnitude below the manager- and core-driven designs.
    let arrivals = shared_arrivals(500.0, 30);
    let orch = |policy: Policy| {
        let r = run(policy, arrivals.clone(), 30);
        r.total_breakdown().orchestration.as_secs_f64() / r.completed().max(1) as f64
    };
    let af = orch(Policy::AccelFlow);
    let relief = orch(Policy::Relief);
    let cpu = orch(Policy::CpuCentric);
    assert!(af * 10.0 < relief, "AF {af} vs RELIEF {relief}");
    assert!(af * 10.0 < cpu, "AF {af} vs CPU-Centric {cpu}");
}

#[test]
fn common_random_numbers_make_policies_comparable() {
    let arrivals = shared_arrivals(1_000.0, 25);
    let a = run(Policy::AccelFlow, arrivals.clone(), 25);
    let b = run(Policy::Relief, arrivals.clone(), 25);
    assert_eq!(a.offered(), b.offered());
    // And the same policy twice is bit-identical.
    let c = run(Policy::AccelFlow, arrivals, 25);
    assert_eq!(
        a.aggregate_latency().percentile(99.0),
        c.aggregate_latency().percentile(99.0)
    );
    assert_eq!(a.totals.dispatcher_instrs, c.totals.dispatcher_instrs);
    assert_eq!(a.totals.atm_reads, c.totals.atm_reads);
}

#[test]
fn chiplet_and_interchiplet_sensitivity_directions() {
    let arrivals = shared_arrivals(1_500.0, 30);
    let p99_at = |chiplets: usize, cycles: f64| {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.chiplets = chiplets;
        cfg.arch.inter_chiplet_cycles = cycles;
        Machine::run_arrivals(
            &cfg,
            &services(),
            arrivals.clone(),
            SimDuration::from_millis(30),
            77,
        )
        .aggregate_latency()
        .mean()
    };
    let base = p99_at(2, 60.0);
    let six = p99_at(6, 60.0);
    let six_slow = p99_at(6, 100.0);
    assert!(
        six >= base,
        "more chiplets cannot be faster: {six} vs {base}"
    );
    assert!(
        six_slow >= six,
        "slower links cannot be faster: {six_slow} vs {six}"
    );
}

#[test]
fn fewer_pes_increase_latency_and_fallbacks() {
    let arrivals = shared_arrivals(55_000.0, 30);
    let run_pes = |pes: usize| {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.arch.pes_per_accelerator = pes;
        Machine::run_arrivals(
            &cfg,
            &services(),
            arrivals.clone(),
            SimDuration::from_millis(30),
            77,
        )
    };
    let eight = run_pes(8);
    let two = run_pes(2);
    // The mean isolates accelerator queueing from the workload's
    // intrinsic straggler tail.
    assert!(
        two.aggregate_latency().mean() > eight.aggregate_latency().mean() * 1.02,
        "2 PEs must be slower: {} vs {}",
        two.aggregate_latency().mean(),
        eight.aggregate_latency().mean()
    );
    assert!(
        two.totals.fallbacks + two.totals.overflows
            >= eight.totals.fallbacks + eight.totals.overflows,
        "2 PEs must overflow at least as much"
    );
}

#[test]
fn speedup_scaling_direction() {
    let arrivals = shared_arrivals(1_000.0, 25);
    let mean_at = |scale: f64| {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.speedup_scale = scale;
        Machine::run_arrivals(
            &cfg,
            &services(),
            arrivals.clone(),
            SimDuration::from_millis(25),
            77,
        )
        .aggregate_latency()
        .mean()
    };
    let slow = mean_at(0.25);
    let base = mean_at(1.0);
    let fast = mean_at(4.0);
    assert!(slow > base, "0.25x accelerators must be slower");
    assert!(fast < base, "4x accelerators must be faster");
}
