//! Repository hygiene guard: no source module may grow past a line
//! budget.
//!
//! The machine model once lived in a single 2,400-line `machine.rs`;
//! splitting it into the `machine/` module tree only stays effective
//! if nothing regrows to that size. Any `.rs` file under `crates/`
//! must stay at or below [`MAX_LINES`] physical lines, or carry an
//! entry in [`ALLOWLIST`] with a written justification.

use std::path::{Path, PathBuf};

/// Line budget for one module. Generous enough for a cohesive
/// subsystem with its unit tests; small enough that a second subsystem
/// growing inside the file trips the guard.
const MAX_LINES: usize = 900;

/// Files allowed over budget, with the reason on record. Additions to
/// this list should be rare and justified in the PR that makes them.
const ALLOWLIST: &[(&str, &str)] = &[(
    "crates/sim/src/telemetry.rs",
    "one cohesive subsystem: ring buffer, sampler, Chrome-trace export, \
     and report formatting share private record types; splitting would \
     expose them for no structural gain",
)];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // Skip build output if a stray target/ exists under crates/.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_module_exceeds_the_line_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    assert!(files.len() > 20, "crates/ scan found too few files");

    let mut over = Vec::new();
    let mut stale_allowlist: Vec<&str> = ALLOWLIST.iter().map(|(p, _)| *p).collect();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .expect("under repo root")
            .to_string_lossy()
            .replace('\\', "/");
        let lines = std::fs::read_to_string(&path)
            .expect("readable source file")
            .lines()
            .count();
        let allowed = ALLOWLIST.iter().any(|(p, _)| *p == rel);
        if allowed {
            stale_allowlist.retain(|p| *p != rel);
            // Even allowlisted files get a hard ceiling so the
            // exemption cannot absorb unbounded growth.
            assert!(
                lines <= 2 * MAX_LINES,
                "{rel}: {lines} lines exceeds even the allowlisted ceiling of {}",
                2 * MAX_LINES
            );
        } else if lines > MAX_LINES {
            over.push(format!("{rel}: {lines} lines (budget {MAX_LINES})"));
        }
    }
    assert!(
        over.is_empty(),
        "modules over the {MAX_LINES}-line budget — split them or add an \
         allowlist entry with a justification:\n  {}",
        over.join("\n  ")
    );
    assert!(
        stale_allowlist.is_empty(),
        "stale allowlist entries (file gone or renamed): {stale_allowlist:?}"
    );
}
