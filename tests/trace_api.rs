//! End-to-end tests of the public trace programming model: build
//! custom traces with the paper's API, register them as workloads, and
//! execute them on the machine.

use accelflow::core::{
    CallSpec, CyclesDist, Machine, MachineConfig, Policy, ServiceSpec, StageSpec,
};
use accelflow::sim::SimDuration;
use accelflow::trace::builder::TraceBuilder;
use accelflow::trace::cond::BranchCond;
use accelflow::trace::format::DataFormat;
use accelflow::trace::kind::AccelKind::*;
use accelflow::trace::templates::{TemplateId, TraceLibrary};

#[test]
fn custom_trace_runs_end_to_end() {
    // A bespoke pipeline: decompress, deserialize, re-serialize
    // (densified), compress, with a conditional re-encode.
    let trace = TraceBuilder::new("etl")
        .seq([Dcmp, Dser])
        .branch(
            BranchCond::CacheCompressed,
            |b| b.trans(DataFormat::Json, DataFormat::Bson).seq([Ser, Cmp]),
            |b| b.seq([Ser]),
        )
        .to_cpu()
        .build();
    assert!(trace.validate().is_ok());

    let svc = ServiceSpec::new(
        "Etl",
        vec![
            StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
            StageSpec::Call(CallSpec::custom(trace)),
        ],
    );
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    let report = Machine::run_workload(&cfg, &[svc], 1_000.0, SimDuration::from_millis(25), 3);
    assert!(report.completion_ratio() > 0.99);
    assert!(report.per_service[0].latency.count() > 10);
    // The branch resolves in the dispatcher: glue instructions counted.
    assert!(report.totals.dispatcher_instrs > 0);
}

#[test]
fn run_trace_style_invocation_with_fallback() {
    // Listing 2's shape: invoke a registered trace per request; when
    // the ensemble is overloaded, execution falls back to the CPU and
    // the request still completes.
    let svc = ServiceSpec::new(
        "FallbackProne",
        vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
    );
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    // Starve the ensemble: one PE, tiny queues, minuscule overflow,
    // and accelerators slowed 50x so the queues actually build.
    cfg.arch.pes_per_accelerator = 1;
    cfg.arch.input_queue_entries = 2;
    cfg.arch.overflow_entries = 2;
    cfg.speedup_scale = 0.02;
    let report = Machine::run_workload(&cfg, &[svc], 30_000.0, SimDuration::from_millis(20), 9);
    assert!(
        report.totals.fallbacks > 0 || report.totals.overflows > 0,
        "a starved ensemble must overflow or fall back"
    );
    assert!(
        report.completion_ratio() > 0.9,
        "fallback keeps requests completing: {}",
        report.completion_ratio()
    );
}

#[test]
fn template_library_round_trips_through_machine() {
    // Every template is executable as a single-call service.
    let lib = TraceLibrary::standard();
    for id in [
        TemplateId::T1,
        TemplateId::T2,
        TemplateId::T4,
        TemplateId::T8,
        TemplateId::T9,
        TemplateId::T11,
    ] {
        let svc = ServiceSpec::new(id.name(), vec![StageSpec::Call(CallSpec::new(id))]);
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        let report = Machine::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(20), 4);
        assert!(
            report.completion_ratio() > 0.99,
            "{id}: completion {}",
            report.completion_ratio()
        );
    }
    let _ = lib;
}

#[test]
fn error_paths_are_reported() {
    // Force exceptions on a write-heavy service: the §IV-B error trace
    // runs and the request completes as an error.
    let mut call = CallSpec::new(TemplateId::T8);
    call.flags.exception = 1.0;
    let svc = ServiceSpec::new("AlwaysError", vec![StageSpec::Call(call)]);
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    let report = Machine::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(20), 4);
    let s = &report.per_service[0];
    assert!(s.completed > 0);
    assert_eq!(s.errors, s.completed, "every request takes the error path");
}

#[test]
fn tcp_timeouts_fire_for_lost_responses() {
    // An external delay beyond the TCP timeout terminates the request
    // (§IV-B: entries "are not held indefinitely waiting").
    let mut call = CallSpec::new(TemplateId::T4);
    call.external.median = SimDuration::from_millis(80);
    call.external.sigma = 0.01;
    let svc = ServiceSpec::new("SlowDb", vec![StageSpec::Call(call)]);
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    cfg.tcp_timeout = SimDuration::from_millis(5);
    let report = Machine::run_workload(&cfg, &[svc], 200.0, SimDuration::from_millis(30), 4);
    assert!(
        report.totals.tcp_timeouts > 0,
        "slow responses must time out"
    );
    let s = &report.per_service[0];
    assert!(s.errors > 0, "timed-out requests are errors");
    // Latency capped near the timeout.
    assert!(s.p99() < SimDuration::from_millis(8), "p99 {}", s.p99());
}

#[test]
fn multi_tenant_isolation_costs_are_visible() {
    use accelflow::accel::queue::TenantId;
    // Two tenants sharing the ensemble force scratchpad wipes (§IV-D).
    let mut a = ServiceSpec::new(
        "TenantA",
        vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
    );
    a.tenant = TenantId(1);
    let mut b = ServiceSpec::new(
        "TenantB",
        vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
    );
    b.tenant = TenantId(2);
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    cfg.arch.pes_per_accelerator = 2; // force PE sharing across tenants
    let report = Machine::run_workload(&cfg, &[a, b], 3_000.0, SimDuration::from_millis(25), 6);
    assert!(
        report.totals.tenant_wipes > 0,
        "tenant switches must wipe scratchpads"
    );
    assert!(report.completion_ratio() > 0.98);
}
