//! Cross-crate calibration tests: the workload models must reproduce
//! the paper's characterization numbers (Fig 1, Table IV, §III Q2)
//! within tolerance.

use accelflow::core::{Machine, MachineConfig, Policy};
use accelflow::sim::SimDuration;
use accelflow::trace::kind::AccelKind;
use accelflow::workloads::socialnetwork;

/// Fig 1 averages: TCP 25.6%, (De)Encr 14.6%, RPC 3.2%, (De)Ser 22.4%,
/// (De)Cmp 9.5%, LdB 3.9%, AppLogic 20.7%.
#[test]
fn fig1_breakdown_matches_paper_within_tolerance() {
    let services = socialnetwork::all();
    let mut cfg = MachineConfig::new(Policy::NonAcc);
    cfg.warmup = SimDuration::from_millis(2);
    let report = Machine::run_workload(&cfg, &services, 250.0, SimDuration::from_millis(60), 42);

    let n = report.per_service.len() as f64;
    let mut avg = [0.0f64; 7];
    for s in &report.per_service {
        assert!(s.completed > 0, "{} completed nothing", s.name);
        let (shares, app) = s.fig1_shares();
        use AccelKind::*;
        let cat = [
            shares[Tcp.id() as usize],
            shares[Encr.id() as usize] + shares[Decr.id() as usize],
            shares[Rpc.id() as usize],
            shares[Ser.id() as usize] + shares[Dser.id() as usize],
            shares[Cmp.id() as usize] + shares[Dcmp.id() as usize],
            shares[Ldb.id() as usize],
            app,
        ];
        for (a, c) in avg.iter_mut().zip(cat) {
            *a += c / n;
        }
    }
    let paper = [0.256, 0.146, 0.032, 0.224, 0.095, 0.039, 0.207];
    let names = [
        "TCP", "(De)Encr", "RPC", "(De)Ser", "(De)Cmp", "LdB", "AppLogic",
    ];
    for ((got, want), name) in avg.iter().zip(paper).zip(names) {
        assert!(
            (got - want).abs() < 0.05,
            "{name}: measured {got:.3}, paper {want:.3}"
        );
    }
    // Tax dominates: the paper's core finding.
    assert!(avg[6] < 0.30, "app logic must be a minority share");
}

/// Table IV: accelerator invocations per service (±20%).
#[test]
fn table_iv_invocation_counts() {
    use accelflow::accel::timing::ServiceTimeModel;
    use accelflow::sim::rng::SimRng;
    use accelflow::sim::time::Frequency;
    use accelflow::trace::templates::TraceLibrary;

    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
    let mut rng = SimRng::seed(99);
    let paper = [
        ("CPost", 87.0),
        ("ReadH", 28.0),
        ("StoreP", 18.0),
        ("Follow", 30.0),
        ("Login", 29.0),
        ("CUrls", 19.0),
        ("UniqId", 9.0),
        ("RegUsr", 25.0),
    ];
    for (svc, (name, want)) in socialnetwork::all().iter().zip(paper) {
        assert_eq!(svc.name, name);
        let n = 200;
        let got: f64 = (0..n)
            .map(|i| {
                svc.sample(&lib, &timing, &mut rng, (i as u64) << 32)
                    .accelerator_invocations() as f64
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (got - want).abs() / want < 0.20,
            "{name}: measured {got:.1}, paper {want}"
        );
    }
}

/// §III Q2: a majority of accelerator sequences contain at least one
/// branch (the paper reports 69.2% for SocialNetwork).
#[test]
fn branchy_sequence_fraction() {
    use accelflow::accel::timing::ServiceTimeModel;
    use accelflow::sim::rng::SimRng;
    use accelflow::sim::time::Frequency;
    use accelflow::trace::templates::TraceLibrary;

    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
    let mut rng = SimRng::seed(5);
    let (mut with, mut total) = (0usize, 0usize);
    for svc in socialnetwork::all() {
        for i in 0..60u64 {
            let p = svc.sample(&lib, &timing, &mut rng, i << 36);
            for call in p.calls() {
                for seg in &call.segments {
                    total += 1;
                    if seg.hops.iter().any(|h| h.branches_after > 0) {
                        with += 1;
                    }
                }
            }
        }
    }
    let frac = with as f64 / total as f64;
    assert!(
        (0.45..0.90).contains(&frac),
        "branchy fraction {frac:.3} (paper: 0.692)"
    );
}

/// The fine-grained premise: tax operations take single-digit to
/// tens of µs, and whole service invocations tens to hundreds of µs.
#[test]
fn operations_are_fine_grained() {
    let services = vec![socialnetwork::uniq_id(), socialnetwork::compose_post()];
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    let report = Machine::run_workload(&cfg, &services, 150.0, SimDuration::from_millis(80), 13);
    let uniq = report.per_service[0].mean();
    let cpost = report.per_service[1].mean();
    assert!(uniq.as_micros_f64() < 120.0, "UniqId unloaded mean {uniq}");
    assert!(
        cpost.as_micros_f64() < 3_000.0,
        "CPost unloaded mean {cpost}"
    );
    assert!(cpost > uniq * 4, "CPost must dwarf UniqId");
}
