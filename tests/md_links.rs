//! Markdown link hygiene: every relative link in the repo's top-level
//! and `docs/` markdown must point at a file that exists.
//!
//! Documentation cross-links rot silently — a renamed doc or moved
//! binary breaks `docs/RESILIENCE.md -> docs/METRICS.md` style links
//! with no compiler to notice. This test walks every `[text](target)`
//! link, resolves relative targets against the linking file, and fails
//! with the full list of dangling ones. External (`http...`), mail and
//! pure-anchor links are skipped; a `#section` suffix on a relative
//! link is stripped before the existence check.

use std::path::{Path, PathBuf};

/// Repo root: this test compiles within the workspace root package.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Markdown files under scrutiny: top level plus `docs/`.
fn markdown_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in [root.clone(), root.join("docs")] {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(files.len() >= 5, "markdown sweep found too few files");
    files
}

/// Extracts inline `[text](target)` targets from one markdown body.
/// Fenced code blocks are skipped (they hold example syntax, not
/// links); reference-style links are rare here and out of scope.
fn link_targets(body: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in body.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find `](`, then the matching `)`.
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(rel_end) = line[start..].find(')') {
                    let target = &line[start..start + rel_end];
                    targets.push(target.to_string());
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    targets
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn relative_markdown_links_resolve() {
    let mut dangling = Vec::new();
    for file in markdown_files() {
        let body = std::fs::read_to_string(&file).expect("readable markdown");
        let dir = file.parent().unwrap_or(Path::new("."));
        for target in link_targets(&body) {
            if is_external(&target) || target.is_empty() {
                continue;
            }
            // Strip a `#section` anchor; the file part must exist.
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            let resolved = dir.join(path_part);
            if !resolved.exists() {
                dangling.push(format!(
                    "{}: [{}] -> {}",
                    file.strip_prefix(repo_root()).unwrap_or(&file).display(),
                    target,
                    resolved.display()
                ));
            }
        }
    }
    assert!(
        dangling.is_empty(),
        "dangling markdown links:\n{}",
        dangling.join("\n")
    );
}

#[test]
fn link_extraction_handles_the_common_shapes() {
    let body = "\
See [the design](DESIGN.md) and [metrics](docs/METRICS.md#faults).\n\
External [paper](https://arxiv.org/abs/0000.0000) and [anchor](#local).\n\
```\n\
[not a link](inside/a/fence.md)\n\
```\n";
    let targets = link_targets(body);
    assert_eq!(
        targets,
        vec![
            "DESIGN.md",
            "docs/METRICS.md#faults",
            "https://arxiv.org/abs/0000.0000",
            "#local",
        ]
    );
    assert!(is_external(&targets[2]));
    assert!(is_external(&targets[3]));
}
