//! Property-based tests over the core data structures and invariants.
//!
//! Cases are generated from a seeded [`SimRng`] rather than an external
//! property-testing framework (the build environment has no package
//! registry), so every run explores the same deterministic case set.
//! Each property checks a few hundred generated inputs; failures print
//! the case index so a shrink-by-hand starts from a concrete repro.

use std::collections::HashSet;

use accelflow::sim::rng::SimRng;
use accelflow::sim::stats::Histogram;
use accelflow::sim::time::{Frequency, SimDuration, SimTime};
use accelflow::trace::atm::AtmAddr;
use accelflow::trace::builder::TraceBuilder;
use accelflow::trace::cond::{BranchCond, PayloadFlags};
use accelflow::trace::format::DataFormat;
use accelflow::trace::ir::{PathStep, Slot, Trace};
use accelflow::trace::kind::AccelKind;
use accelflow::trace::packed;

const CASES: usize = 256;

fn gen_kind(rng: &mut SimRng) -> AccelKind {
    AccelKind::from_id(rng.index(9) as u8).unwrap()
}

fn gen_kinds(rng: &mut SimRng, lo: usize, hi: usize) -> Vec<AccelKind> {
    let n = lo + rng.index(hi - lo);
    (0..n).map(|_| gen_kind(rng)).collect()
}

fn gen_cond(rng: &mut SimRng) -> BranchCond {
    match rng.index(6) {
        0 => BranchCond::Compressed,
        1 => BranchCond::Hit,
        2 => BranchCond::Found,
        3 => BranchCond::Exception,
        4 => BranchCond::CacheCompressed,
        _ => {
            let mask = rng.index(256) as u8;
            let expect = rng.index(256) as u8 & mask;
            BranchCond::Custom { mask, expect }
        }
    }
}

fn gen_format(rng: &mut SimRng) -> DataFormat {
    DataFormat::from_code(rng.index(5) as u8).unwrap()
}

fn gen_flags(rng: &mut SimRng) -> PayloadFlags {
    let bits = rng.index(256) as u8;
    PayloadFlags {
        compressed: bits & 1 != 0,
        hit: bits & 2 != 0,
        found: bits & 4 != 0,
        exception: bits & 8 != 0,
        cache_compressed: bits & 16 != 0,
        custom_field: rng.index(256) as u8,
    }
}

/// Builds a random but *valid* trace through the builder API: random
/// sequences, an optional branch with random arms, random transforms.
fn gen_trace(rng: &mut SimRng) -> Trace {
    let pre = gen_kinds(rng, 1, 5);
    let branch = if rng.chance(0.5) {
        Some((gen_cond(rng), gen_kinds(rng, 0, 3), gen_kinds(rng, 0, 3)))
    } else {
        None
    };
    let trans = if rng.chance(0.5) {
        Some((gen_format(rng), gen_format(rng)))
    } else {
        None
    };
    let post = gen_kinds(rng, 0, 4);
    let terminal = rng.index(3);
    let atm = rng.index(64) as u16;

    let mut b = TraceBuilder::new("prop").seq(pre);
    if let Some((cond, t_arm, f_arm)) = branch {
        b = b.branch(cond, move |bb| bb.seq(t_arm), move |bb| bb.seq(f_arm));
    }
    if let Some((src, dst)) = trans {
        b = b.trans(src, dst);
    }
    b = b.seq(post);
    match terminal {
        0 => b.to_cpu().build(),
        1 => b.next_trace(AtmAddr(atm)).build(),
        _ => b.build(), // implicit ToCpu at end
    }
}

/// Packed encoding round-trips every builder-constructed trace.
#[test]
fn packed_roundtrip() {
    let mut rng = SimRng::seed(0xA11CE);
    for case in 0..CASES {
        let trace = gen_trace(&mut rng);
        let bytes = packed::pack(&trace).expect("builder traces pack");
        let back = packed::unpack(trace.name(), &bytes).expect("unpack");
        assert_eq!(back.slots(), trace.slots(), "case {case}");
    }
}

/// Every flag assignment resolves to a terminating path whose
/// accelerator count is bounded by the static count.
#[test]
fn all_paths_terminate() {
    let mut rng = SimRng::seed(0xB0B);
    for case in 0..CASES {
        let trace = gen_trace(&mut rng);
        let flags = gen_flags(&mut rng);
        let path = trace.resolve_path(&flags);
        let accels = path
            .iter()
            .filter(|s| matches!(s, PathStep::Accel(_)))
            .count();
        assert!(accels <= trace.accelerator_count(), "case {case}");
        // The path ends at the CPU or chains to the ATM.
        assert!(
            matches!(path.last(), Some(PathStep::Cpu) | Some(PathStep::Chain(_))),
            "case {case}"
        );
    }
}

/// `all_paths` covers every path `resolve_path` can produce.
#[test]
fn all_paths_is_exhaustive() {
    let mut rng = SimRng::seed(0xC0FFEE);
    let mut checked = 0;
    while checked < CASES {
        let trace = gen_trace(&mut rng);
        let flags = gen_flags(&mut rng);
        // Custom conditions depend on custom_field, which all_paths
        // fixes at zero, so restrict to traces without custom conds.
        let has_custom = trace.slots().iter().any(|s| {
            matches!(
                s,
                Slot::Branch {
                    cond: BranchCond::Custom { .. },
                    ..
                }
            )
        });
        if has_custom {
            continue;
        }
        checked += 1;
        let flags = PayloadFlags {
            custom_field: 0,
            ..flags
        };
        let path = trace.resolve_path(&flags);
        assert!(trace.all_paths().contains(&path), "case {checked}");
    }
}

/// Histogram percentiles are monotone and bracketed by min/max.
#[test]
fn histogram_percentiles_monotone() {
    let mut rng = SimRng::seed(0xD00D);
    for case in 0..CASES {
        let n = 1 + rng.index(199);
        let values: Vec<u64> = (0..n)
            .map(|_| (rng.uniform() * 1_000_000_000.0) as u64)
            .collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "case {case} p{p}: {v} < {last}");
            last = v;
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        assert!(h.percentile(0.0) >= lo, "case {case}");
        assert!(h.percentile(100.0) <= hi.max(lo), "case {case}");
    }
}

/// Histogram count/mean are exact regardless of bucketing.
#[test]
fn histogram_count_and_mean_exact() {
    let mut rng = SimRng::seed(0xE66);
    for case in 0..CASES {
        let n = 1 + rng.index(99);
        let values: Vec<u64> = (0..n).map(|_| rng.index(1_000_000) as u64).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64, "case {case}");
        let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((h.mean() - exact).abs() < 1e-6, "case {case}");
    }
}

/// Time arithmetic: (t + a) + b == (t + b) + a and subtraction
/// inverts addition.
#[test]
fn time_arithmetic_laws() {
    let mut rng = SimRng::seed(0xF00);
    for case in 0..CASES {
        let t = (rng.uniform() * (1u64 << 50) as f64) as u64;
        let a = (rng.uniform() * (1u64 << 40) as f64) as u64;
        let b = (rng.uniform() * (1u64 << 40) as f64) as u64;
        let t0 = SimTime::from_picos(t);
        let da = SimDuration::from_picos(a);
        let db = SimDuration::from_picos(b);
        assert_eq!((t0 + da) + db, (t0 + db) + da, "case {case}");
        assert_eq!((t0 + da) - t0, da, "case {case}");
        assert_eq!(da + db - db, da, "case {case}");
    }
}

/// Cycle conversions are consistent across frequencies.
#[test]
fn frequency_conversion_consistency() {
    let mut rng = SimRng::seed(0x1CE);
    for case in 0..CASES {
        let cycles = rng.uniform_range(1.0, 1e9);
        let ghz = rng.uniform_range(0.5, 6.0);
        let f = Frequency::from_ghz(ghz);
        let d = f.cycles(cycles);
        let back = f.cycles_in(d);
        assert!((back - cycles).abs() / cycles < 1e-6, "case {case}");
    }
}

/// Branch conditions partition: for any flags, exactly one arm of
/// a branch is taken, and the packed trace resolves identically.
#[test]
fn packed_trace_resolves_identically() {
    let mut rng = SimRng::seed(0x2DA);
    for case in 0..CASES {
        let trace = gen_trace(&mut rng);
        let flags = gen_flags(&mut rng);
        let bytes = packed::pack(&trace).expect("packs");
        let back = packed::unpack(trace.name(), &bytes).expect("unpacks");
        assert_eq!(
            back.resolve_path(&flags),
            trace.resolve_path(&flags),
            "case {case}"
        );
    }
}

/// Accelerator IDs pack into 4 bits and are unique.
#[test]
fn accelerator_ids_unique() {
    let ids: HashSet<u8> = AccelKind::ALL.iter().map(|k| k.id()).collect();
    assert_eq!(ids.len(), AccelKind::COUNT);
    assert!(ids.iter().all(|&i| i < 16));
}

mod workload_properties {
    use super::*;
    use accelflow::accel::timing::ServiceTimeModel;
    use accelflow::core::request::{sample_call, CallSpec, SegmentEnd};
    use accelflow::trace::templates::{TemplateId, TraceLibrary};

    /// Sampled calls are well-formed for every template, payload
    /// scale, and flag mix: payload sizes chain hop to hop, glue
    /// costs respect the dispatcher floor, and only the final
    /// segment lacks a successor.
    #[test]
    fn sampled_calls_are_well_formed() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
        let mut rng = SimRng::seed(0x3AB);
        for case in 0..CASES {
            let template = TemplateId::ALL[rng.index(12)];
            let median = rng.uniform_range(128.0, 16_384.0);
            let compressed = rng.uniform();
            let hit = rng.uniform();
            let seed = rng.index(5_000) as u64;

            let mut call_rng = SimRng::seed(seed);
            let mut spec = CallSpec::new(template);
            spec.payload = accelflow::core::request::SizeDist::new(median, 0.6, 1 << 20);
            spec.flags.compressed = compressed;
            spec.flags.hit = hit;
            let call = sample_call(&lib, &timing, &mut call_rng, &spec, 0x4200_0000);

            assert!(!call.segments.is_empty(), "case {case}");
            for (si, seg) in call.segments.iter().enumerate() {
                assert!(!seg.hops.is_empty(), "case {case} {template} segment {si}");
                for w in seg.hops.windows(2) {
                    assert_eq!(w[0].out_bytes, w[1].in_bytes, "case {case}: sizes chain");
                }
                for hop in &seg.hops {
                    assert!(hop.glue_instrs >= 15, "case {case}: dispatcher floor");
                    assert!(hop.in_bytes >= 1, "case {case}");
                }
                let last = si + 1 == call.segments.len();
                match seg.end {
                    SegmentEnd::ToCpu => assert!(last, "case {case}: ToCpu must be final"),
                    SegmentEnd::Continue | SegmentEnd::AwaitResponse { .. } => {
                        assert!(!last, "case {case}: chain needs a successor")
                    }
                }
            }
        }
    }

    /// Trace synthesis round-trips randomly generated observation
    /// sets whose divergences are flag-separable.
    #[test]
    fn compiler_reproduces_observations() {
        use accelflow::trace::compiler::{synthesize, ObservedPath};
        let mut rng = SimRng::seed(0x4CC);
        for case in 0..CASES {
            let common_len = 1 + rng.index(3);
            let extra = gen_kinds(&mut rng, 1, 3);
            let common: Vec<AccelKind> = (0..common_len).map(|i| AccelKind::ALL[i % 9]).collect();
            let short = PayloadFlags::default();
            let long = PayloadFlags {
                compressed: true,
                ..Default::default()
            };
            let mut long_path = common.clone();
            long_path.extend(extra.iter().copied());
            let trace = synthesize(
                "prop",
                &[
                    ObservedPath::new(short, common.clone()),
                    ObservedPath::new(long, long_path.clone()),
                ],
            )
            .unwrap();
            let count = |flags: &PayloadFlags| {
                trace
                    .resolve_path(flags)
                    .iter()
                    .filter(|s| matches!(s, PathStep::Accel(_)))
                    .count()
            };
            assert_eq!(count(&short), common.len(), "case {case}");
            assert_eq!(count(&long), long_path.len(), "case {case}");
        }
    }
}

/// Decoding arbitrary bytes never panics: it yields a valid trace
/// or a structured error (untrusted-input safety).
#[test]
fn unpack_never_panics() {
    let mut rng = SimRng::seed(0x5EED);
    for case in 0..4 * CASES {
        let len = rng.index(64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.index(256) as u8).collect();
        if let Ok(trace) = packed::unpack("fuzz", &bytes) {
            // Whatever decoded must itself be valid and re-packable.
            assert!(trace.validate().is_ok(), "case {case}");
            assert!(packed::pack(&trace).is_ok(), "case {case}");
        }
    }
}
