//! Property-based tests over the core data structures and invariants.

use std::collections::HashSet;

use accelflow::sim::stats::Histogram;
use accelflow::sim::time::{Frequency, SimDuration, SimTime};
use accelflow::trace::atm::AtmAddr;
use accelflow::trace::builder::TraceBuilder;
use accelflow::trace::cond::{BranchCond, PayloadFlags};
use accelflow::trace::format::DataFormat;
use accelflow::trace::ir::{PathStep, Slot, Trace};
use accelflow::trace::kind::AccelKind;
use accelflow::trace::packed;
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = AccelKind> {
    (0u8..9).prop_map(|id| AccelKind::from_id(id).unwrap())
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Compressed),
        Just(BranchCond::Hit),
        Just(BranchCond::Found),
        Just(BranchCond::Exception),
        Just(BranchCond::CacheCompressed),
        (any::<u8>(), any::<u8>()).prop_map(|(mask, expect)| BranchCond::Custom {
            mask,
            expect: expect & mask,
        }),
    ]
}

fn arb_format() -> impl Strategy<Value = DataFormat> {
    (0u8..5).prop_map(|c| DataFormat::from_code(c).unwrap())
}

fn arb_flags() -> impl Strategy<Value = PayloadFlags> {
    (any::<u8>(), any::<u8>()).prop_map(|(bits, custom)| PayloadFlags {
        compressed: bits & 1 != 0,
        hit: bits & 2 != 0,
        found: bits & 4 != 0,
        exception: bits & 8 != 0,
        cache_compressed: bits & 16 != 0,
        custom_field: custom,
    })
}

/// Builds a random but *valid* trace through the builder API: random
/// sequences, an optional branch with random arms, random transforms.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        proptest::collection::vec(arb_kind(), 1..5),
        proptest::option::of((
            arb_cond(),
            proptest::collection::vec(arb_kind(), 0..3),
            proptest::collection::vec(arb_kind(), 0..3),
        )),
        proptest::collection::vec(arb_kind(), 0..4),
        proptest::option::of((arb_format(), arb_format())),
        prop_oneof![Just(0u8), Just(1u8), Just(2u8)],
        0u16..64,
    )
        .prop_map(|(pre, branch, post, trans, terminal, atm)| {
            let mut b = TraceBuilder::new("prop").seq(pre);
            if let Some((cond, t_arm, f_arm)) = branch {
                b = b.branch(cond, move |bb| bb.seq(t_arm), move |bb| bb.seq(f_arm));
            }
            if let Some((src, dst)) = trans {
                b = b.trans(src, dst);
            }
            b = b.seq(post);
            match terminal {
                0 => b.to_cpu().build(),
                1 => b.next_trace(AtmAddr(atm)).build(),
                _ => b.build(), // implicit ToCpu at end
            }
        })
}

proptest! {
    /// Packed encoding round-trips every builder-constructed trace.
    #[test]
    fn packed_roundtrip(trace in arb_trace()) {
        let bytes = packed::pack(&trace).expect("builder traces pack");
        let back = packed::unpack(trace.name(), &bytes).expect("unpack");
        prop_assert_eq!(back.slots(), trace.slots());
    }

    /// Every flag assignment resolves to a terminating path whose
    /// accelerator count is bounded by the static count.
    #[test]
    fn all_paths_terminate(trace in arb_trace(), flags in arb_flags()) {
        let path = trace.resolve_path(&flags);
        let accels = path.iter().filter(|s| matches!(s, PathStep::Accel(_))).count();
        prop_assert!(accels <= trace.accelerator_count());
        // The path ends at the CPU or chains to the ATM.
        prop_assert!(matches!(path.last(), Some(PathStep::Cpu) | Some(PathStep::Chain(_))));
    }

    /// `all_paths` covers every path `resolve_path` can produce.
    #[test]
    fn all_paths_is_exhaustive(trace in arb_trace(), flags in arb_flags()) {
        // Custom conditions depend on custom_field, which all_paths
        // fixes at zero, so restrict to traces without custom conds.
        let has_custom = trace.slots().iter().any(|s| matches!(
            s, Slot::Branch { cond: BranchCond::Custom { .. }, .. }
        ));
        prop_assume!(!has_custom);
        let flags = PayloadFlags { custom_field: 0, ..flags };
        let path = trace.resolve_path(&flags);
        prop_assert!(trace.all_paths().contains(&path));
    }

    /// Histogram percentiles are monotone and bracketed by min/max.
    #[test]
    fn histogram_percentiles_monotone(values in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert!(h.percentile(0.0) >= lo);
        prop_assert!(h.percentile(100.0) <= hi.max(lo));
    }

    /// Histogram count/mean are exact regardless of bucketing.
    #[test]
    fn histogram_count_and_mean_exact(values in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact).abs() < 1e-6);
    }

    /// Time arithmetic: (t + a) + b == (t + b) + a and subtraction
    /// inverts addition.
    #[test]
    fn time_arithmetic_laws(t in 0u64..1u64 << 50, a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let t0 = SimTime::from_picos(t);
        let da = SimDuration::from_picos(a);
        let db = SimDuration::from_picos(b);
        prop_assert_eq!((t0 + da) + db, (t0 + db) + da);
        prop_assert_eq!((t0 + da) - t0, da);
        prop_assert_eq!(da + db - db, da);
    }

    /// Cycle conversions are consistent across frequencies.
    #[test]
    fn frequency_conversion_consistency(cycles in 1.0f64..1e9, ghz in 0.5f64..6.0) {
        let f = Frequency::from_ghz(ghz);
        let d = f.cycles(cycles);
        let back = f.cycles_in(d);
        prop_assert!((back - cycles).abs() / cycles < 1e-6);
    }

    /// Branch conditions partition: for any flags, exactly one arm of
    /// a branch is taken, and the packed trace resolves identically.
    #[test]
    fn packed_trace_resolves_identically(trace in arb_trace(), flags in arb_flags()) {
        let bytes = packed::pack(&trace).expect("packs");
        let back = packed::unpack(trace.name(), &bytes).expect("unpacks");
        prop_assert_eq!(back.resolve_path(&flags), trace.resolve_path(&flags));
    }

    /// Accelerator IDs pack into 4 bits and are unique.
    #[test]
    fn accelerator_ids_unique(_x in 0u8..1) {
        let ids: HashSet<u8> = AccelKind::ALL.iter().map(|k| k.id()).collect();
        prop_assert_eq!(ids.len(), AccelKind::COUNT);
        prop_assert!(ids.iter().all(|&i| i < 16));
    }
}

mod workload_properties {
    use super::*;
    use accelflow::accel::timing::ServiceTimeModel;
    use accelflow::core::request::{sample_call, CallSpec, SegmentEnd};
    use accelflow::sim::rng::SimRng;
    use accelflow::trace::templates::{TemplateId, TraceLibrary};

    fn arb_template() -> impl Strategy<Value = TemplateId> {
        (0usize..12).prop_map(|i| TemplateId::ALL[i])
    }

    proptest! {
        /// Sampled calls are well-formed for every template, payload
        /// scale, and flag mix: payload sizes chain hop to hop, glue
        /// costs respect the dispatcher floor, and only the final
        /// segment lacks a successor.
        #[test]
        fn sampled_calls_are_well_formed(
            template in arb_template(),
            median in 128.0f64..16_384.0,
            compressed in 0.0f64..1.0,
            hit in 0.0f64..1.0,
            seed in 0u64..5_000,
        ) {
            let lib = TraceLibrary::standard();
            let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
            let mut rng = SimRng::seed(seed);
            let mut spec = CallSpec::new(template);
            spec.payload = accelflow::core::request::SizeDist::new(median, 0.6, 1 << 20);
            spec.flags.compressed = compressed;
            spec.flags.hit = hit;
            let call = sample_call(&lib, &timing, &mut rng, &spec, 0x4200_0000);

            prop_assert!(!call.segments.is_empty());
            for (si, seg) in call.segments.iter().enumerate() {
                prop_assert!(!seg.hops.is_empty(), "{template} segment {si} empty");
                for w in seg.hops.windows(2) {
                    prop_assert_eq!(w[0].out_bytes, w[1].in_bytes, "sizes must chain");
                }
                for hop in &seg.hops {
                    prop_assert!(hop.glue_instrs >= 15, "dispatcher floor");
                    prop_assert!(hop.in_bytes >= 1);
                }
                let last = si + 1 == call.segments.len();
                match seg.end {
                    SegmentEnd::ToCpu => prop_assert!(last, "ToCpu must be final"),
                    SegmentEnd::Continue | SegmentEnd::AwaitResponse { .. } => {
                        prop_assert!(!last, "chain needs a successor")
                    }
                }
            }
        }

        /// Trace synthesis round-trips randomly generated observation
        /// sets whose divergences are flag-separable.
        #[test]
        fn compiler_reproduces_observations(
            common_len in 1usize..4,
            extra in proptest::collection::vec(arb_kind(), 1..3),
        ) {
            use accelflow::trace::compiler::{synthesize, ObservedPath};
            let common: Vec<AccelKind> =
                (0..common_len).map(|i| AccelKind::ALL[i % 9]).collect();
            let short = PayloadFlags::default();
            let long = PayloadFlags { compressed: true, ..Default::default() };
            let mut long_path = common.clone();
            long_path.extend(extra.iter().copied());
            let trace = synthesize(
                "prop",
                &[
                    ObservedPath::new(short, common.clone()),
                    ObservedPath::new(long, long_path.clone()),
                ],
            )
            .unwrap();
            let count = |flags: &PayloadFlags| {
                trace
                    .resolve_path(flags)
                    .iter()
                    .filter(|s| matches!(s, PathStep::Accel(_)))
                    .count()
            };
            prop_assert_eq!(count(&short), common.len());
            prop_assert_eq!(count(&long), long_path.len());
        }
    }
}

proptest! {
    /// Decoding arbitrary bytes never panics: it yields a valid trace
    /// or a structured error (untrusted-input safety).
    #[test]
    fn unpack_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match packed::unpack("fuzz", &bytes) {
            Ok(trace) => {
                // Whatever decoded must itself be valid and re-packable.
                prop_assert!(trace.validate().is_ok());
                prop_assert!(packed::pack(&trace).is_ok());
            }
            Err(_) => {}
        }
    }
}
