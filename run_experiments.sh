#!/bin/bash
# Regenerates every table and figure; writes one output file per
# experiment under results/.
set -u
cd "$(dirname "$0")"
export ACCELFLOW_DURATION_MS="${ACCELFLOW_DURATION_MS:-120}"
BINS="table01_connectivity table02_traces table03_params table04_paths \
      fig02_traces \
      fig01_breakdown fig03_overhead fig05_datasizes fig11_latency fig12_loads \
      fig13_ablation fig14_throughput fig15_relief_suite fig16_serverless \
      fig17_breakdown fig18_chiplets fig19_pes fig20_generations \
      sens_interchiplet sens_speedup sens_instances sens_overflow \
      ext_priority q2_branches \
      stats_glue stats_utilization stats_energy stats_events stats_area stats_profile diag_timeline export_csv"
cargo build --release -p accelflow-bench 2>/dev/null
for b in $BINS; do
  echo "== running $b =="
  cargo run --release -q -p accelflow-bench --bin "$b" > "results/$b.txt" 2>&1 || echo "FAILED: $b"
done
echo "all experiments done"
