//! Service models and request programs.
//!
//! A **service** is specified the way the paper characterizes one
//! (Table IV): a path of application-logic stages and trace calls,
//! e.g. `Login = T1-CPU-T4-T5-T6-T7-CPU-T2`. A [`ServiceSpec`] carries
//! the distributions — payload sizes (Fig 5), branch-outcome
//! probabilities (§III Q2), app-logic cycles, and external (remote
//! DB/RPC) delays. Sampling a spec yields a concrete [`Program`]: the
//! fully-resolved execution the machine simulates under any policy.
//!
//! Note on chains: a trace call like `T4` resolves into *segments*
//! joined by chain points (T4 sends the read; T5 runs when the response
//! arrives). A chain whose follow-on trace begins with TCP waits for an
//! external response (the sampled remote delay); a chain to a split-out
//! subtrace (the §IV-B error trace starts with Ser) continues
//! immediately.

use std::sync::Arc;

use accelflow_accel::dispatcher::output_dispatch_instructions;
use accelflow_accel::queue::TenantId;
use accelflow_accel::timing::ServiceTimeModel;
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::SimDuration;
use accelflow_trace::cond::PayloadFlags;
use accelflow_trace::ir::{GlueAction, Next, PositionMark, Trace};
use accelflow_trace::kind::AccelKind;
use accelflow_trace::templates::{TemplateId, TraceLibrary};

/// Index of a service within a workload mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub usize);

/// The address of one in-flight trace call position: which request,
/// which program step, which arm of a parallel step, and how far into
/// the call's segment/hop chain execution has progressed.
///
/// Every machine event that concerns a call carries one of these, and
/// it round-trips through the accelerator queues as a packed `u64`
/// tag (`CallAddr::tag`) so a completing PE can find its owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallAddr {
    /// Index of the request in the arrival list.
    pub(crate) req: u32,
    /// Program step holding the call.
    pub(crate) step: u8,
    /// Arm within a [`Step::Parallel`] (0 for plain calls).
    pub(crate) par: u8,
    /// Segment of the call currently executing.
    pub(crate) seg: u8,
    /// Hop within the segment currently executing.
    pub(crate) hop: u8,
}

impl CallAddr {
    /// Packs the address into the `u64` tag format carried by
    /// accelerator queue entries.
    pub(crate) fn tag(self) -> u64 {
        ((self.req as u64) << 32)
            | ((self.step as u64) << 24)
            | ((self.par as u64) << 16)
            | ((self.seg as u64) << 8)
            | self.hop as u64
    }

    /// Inverse of [`CallAddr::tag`].
    pub(crate) fn from_tag(tag: u64) -> Self {
        CallAddr {
            req: (tag >> 32) as u32,
            step: (tag >> 24) as u8,
            par: (tag >> 16) as u8,
            seg: (tag >> 8) as u8,
            hop: tag as u8,
        }
    }
}

/// A log-normal payload-size distribution (median + shape), clamped to
/// `[64, max]` bytes — Fig 5's "median of a few KB with a long tail".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeDist {
    /// Median size in bytes.
    pub median: f64,
    /// Log-normal shape (σ of the underlying normal).
    pub sigma: f64,
    /// Hard cap in bytes (tails reach tens of KB, Fig 5).
    pub max: u64,
}

impl SizeDist {
    /// A distribution with a few-KB median and a tail to `max`.
    pub fn new(median: f64, sigma: f64, max: u64) -> Self {
        SizeDist { median, sigma, max }
    }

    /// Draws a size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        (rng.log_normal(self.median, self.sigma).round() as u64).clamp(64, self.max)
    }
}

impl Default for SizeDist {
    /// The common case: 2 KB median, tail to 32 KB.
    fn default() -> Self {
        SizeDist::new(2048.0, 0.7, 32 * 1024)
    }
}

/// A log-normal distribution over CPU cycles for app-logic stages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CyclesDist {
    /// Median cycles.
    pub median: f64,
    /// Log-normal shape.
    pub sigma: f64,
}

impl CyclesDist {
    /// Creates the distribution.
    pub fn new(median: f64, sigma: f64) -> Self {
        CyclesDist { median, sigma }
    }

    /// Draws a cycle count.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.log_normal(self.median, self.sigma)
    }
}

/// Probabilities of the payload facts that branch conditions test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlagProbs {
    /// P(payload compressed).
    pub compressed: f64,
    /// P(DB-cache hit).
    pub hit: f64,
    /// P(record found in DB).
    pub found: f64,
    /// P(response carries an exception).
    pub exception: f64,
    /// P(DB cache stores compressed entries).
    pub cache_compressed: f64,
}

impl FlagProbs {
    /// Draws one flag assignment.
    pub fn sample(&self, rng: &mut SimRng) -> PayloadFlags {
        PayloadFlags {
            compressed: rng.chance(self.compressed),
            hit: rng.chance(self.hit),
            found: rng.chance(self.found),
            exception: rng.chance(self.exception),
            cache_compressed: rng.chance(self.cache_compressed),
            custom_field: 0,
        }
    }
}

impl Default for FlagProbs {
    /// Typical service behavior: some compressed payloads, warm cache,
    /// records usually found, exceptions rare.
    fn default() -> Self {
        FlagProbs {
            compressed: 0.3,
            hit: 0.8,
            found: 0.97,
            exception: 0.01,
            cache_compressed: 0.25,
        }
    }
}

/// Remote-side delay for a chain point (DB cache, DB, callee service),
/// with a small bursty tail.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExternalSpec {
    /// Median delay.
    pub median: SimDuration,
    /// Log-normal shape.
    pub sigma: f64,
    /// Probability of a straggler.
    pub tail_p: f64,
    /// Straggler multiplier.
    pub tail_mult: f64,
    /// Probability the response is effectively lost (fires the TCP
    /// input-queue timeout of §IV-B).
    pub loss_p: f64,
}

impl ExternalSpec {
    /// Creates the spec.
    pub fn new(median: SimDuration, sigma: f64) -> Self {
        ExternalSpec {
            median,
            sigma,
            tail_p: 0.0035,
            tail_mult: 25.0,
            loss_p: 4e-6,
        }
    }

    /// Draws a delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if rng.chance(self.loss_p) {
            // The response never arrives in time (dropped packet,
            // remote failure): the TCP timeout will fire.
            return SimDuration::from_secs(3600);
        }
        let base = rng.log_normal(self.median.as_micros_f64().max(0.01), self.sigma);
        let mult = if rng.chance(self.tail_p) {
            self.tail_mult
        } else {
            1.0
        };
        SimDuration::from_micros_f64(base * mult)
    }

    /// A fast same-rack DB-cache access (~20 µs median).
    pub fn db_cache() -> Self {
        ExternalSpec::new(SimDuration::from_micros(20), 0.3)
    }

    /// A slower database access (~90 µs median).
    pub fn db() -> Self {
        ExternalSpec::new(SimDuration::from_micros(90), 0.4)
    }

    /// A nested RPC to another service (~60 µs median).
    pub fn rpc() -> Self {
        ExternalSpec::new(SimDuration::from_micros(60), 0.5)
    }

    /// An HTTP call to an external endpoint (~200 µs median).
    pub fn http() -> Self {
        ExternalSpec::new(SimDuration::from_micros(200), 0.5)
    }
}

/// One trace call in a service path.
#[derive(Clone, Debug)]
pub struct CallSpec {
    /// The trace template to invoke.
    pub template: TemplateId,
    /// A custom trace overriding the template (for non-microservice
    /// workloads, e.g. the RELIEF coarse-grain suite). Custom traces
    /// are single-segment and core-initiated.
    pub custom: Option<Arc<Trace>>,
    /// Probability the core picks the with-Cmp variant (T8/T9/T11; for
    /// T2 vs T3 the path simply names the right template).
    pub cmp_variant_prob: f64,
    /// Payload size distribution.
    pub payload: SizeDist,
    /// Branch-outcome probabilities.
    pub flags: FlagProbs,
    /// Remote delay at response chain points.
    pub external: ExternalSpec,
}

impl CallSpec {
    /// A call with default payload/flag/external models.
    pub fn new(template: TemplateId) -> Self {
        let external = match template {
            TemplateId::T4 | TemplateId::T5 => ExternalSpec::db_cache(),
            TemplateId::T6 => ExternalSpec::db(),
            TemplateId::T8 | TemplateId::T7 => ExternalSpec::db_cache(),
            TemplateId::T9 | TemplateId::T10 => ExternalSpec::rpc(),
            TemplateId::T11 | TemplateId::T12 => ExternalSpec::http(),
            _ => ExternalSpec::db_cache(),
        };
        CallSpec {
            template,
            custom: None,
            cmp_variant_prob: 0.0,
            payload: SizeDist::default(),
            flags: FlagProbs::default(),
            external,
        }
    }

    /// Uses a custom, single-segment, core-initiated trace instead of
    /// a library template.
    pub fn custom(trace: Trace) -> Self {
        let mut spec = CallSpec::new(TemplateId::T1);
        spec.custom = Some(Arc::new(trace));
        spec
    }

    /// Sets the with-Cmp variant probability.
    pub fn with_cmp_prob(mut self, p: f64) -> Self {
        self.cmp_variant_prob = p;
        self
    }

    /// Sets the payload distribution.
    pub fn with_payload(mut self, payload: SizeDist) -> Self {
        self.payload = payload;
        self
    }

    /// Sets branch probabilities.
    pub fn with_flags(mut self, flags: FlagProbs) -> Self {
        self.flags = flags;
        self
    }
}

/// One stage of a service path.
#[derive(Clone, Debug)]
pub enum StageSpec {
    /// Application logic on a core.
    Cpu(CyclesDist),
    /// One trace call.
    Call(CallSpec),
    /// Parallel trace calls (e.g. CPost's `4x(T9-T10)`); the path joins
    /// before the next stage.
    Parallel(Vec<CallSpec>),
}

/// A service: its Table IV path plus all sampling distributions.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Service name (e.g. "Login").
    pub name: String,
    /// Owning tenant.
    pub tenant: TenantId,
    /// The execution path.
    pub stages: Vec<StageSpec>,
    /// Soft-SLO slack factor: per-call deadlines are set to
    /// `slack × Σ accel_time` of the call when present (§IV-C).
    pub slo_slack: Option<f64>,
    /// Priority tag carried by this service's queue entries (higher
    /// runs first under the priority input-dispatcher policy, §V-1).
    pub priority: u8,
}

impl ServiceSpec {
    /// Creates a service from its path.
    pub fn new(name: impl Into<String>, stages: Vec<StageSpec>) -> Self {
        ServiceSpec {
            name: name.into(),
            tenant: TenantId(0),
            stages,
            slo_slack: None,
            priority: 0,
        }
    }

    /// The Table IV path string (e.g. `T1-CPU-T4-T5-CPU-T2`), derived
    /// from the stages with chains expanded on their common path.
    pub fn path_string(&self, lib: &TraceLibrary) -> String {
        let mut parts = Vec::new();
        for stage in &self.stages {
            match stage {
                StageSpec::Cpu(_) => parts.push("CPU".to_string()),
                StageSpec::Call(c) => parts.push(chain_names(lib, c)),
                StageSpec::Parallel(calls) => {
                    let inner = chain_names(lib, &calls[0]);
                    parts.push(format!("{}x({})", calls.len(), inner));
                }
            }
        }
        parts.join("-")
    }

    /// Samples a concrete program. `vaddr_base` gives the request its
    /// own buffer addresses (drives the TLBs).
    pub fn sample(
        &self,
        lib: &TraceLibrary,
        timing: &ServiceTimeModel,
        rng: &mut SimRng,
        vaddr_base: u64,
    ) -> Program {
        let mut steps = Vec::with_capacity(self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            let step = match stage {
                StageSpec::Cpu(d) => Step::Cpu {
                    cycles: d.sample(rng),
                },
                StageSpec::Call(c) => Step::Call(sample_call(
                    lib,
                    timing,
                    rng,
                    c,
                    vaddr_base + ((i as u64) << 20),
                )),
                StageSpec::Parallel(calls) => Step::Parallel(
                    calls
                        .iter()
                        .enumerate()
                        .map(|(j, c)| {
                            sample_call(
                                lib,
                                timing,
                                rng,
                                c,
                                vaddr_base + ((i as u64) << 20) + ((j as u64) << 16),
                            )
                        })
                        .collect(),
                ),
            };
            steps.push(step);
        }
        Program {
            steps,
            slo_slack: self.slo_slack,
            priority: self.priority,
        }
    }
}

fn chain_names(lib: &TraceLibrary, call: &CallSpec) -> String {
    // Follow the *most likely* chain for this call's flag
    // probabilities (e.g. a cache-cold T4 commonly runs T4-T5-T6-T7).
    let mut names = vec![call.template.name().to_string()];
    let mut current = call.template;
    loop {
        let next = match current {
            TemplateId::T4 => Some(TemplateId::T5),
            TemplateId::T5 if call.flags.hit < 0.5 => Some(TemplateId::T6),
            TemplateId::T6 if call.flags.found >= 0.5 => Some(TemplateId::T7),
            TemplateId::T8 => Some(TemplateId::T7),
            TemplateId::T9 => Some(TemplateId::T10),
            TemplateId::T11 => Some(TemplateId::T12),
            _ => None,
        };
        match next {
            Some(n) if lib.addr(n).is_some() => {
                names.push(n.name().to_string());
                current = n;
            }
            _ => break,
        }
    }
    names.join("-")
}

/// A fully-sampled request: the concrete execution the machine runs.
#[derive(Clone, Debug)]
pub struct Program {
    /// The stages, in order.
    pub steps: Vec<Step>,
    /// Soft-SLO slack factor carried from the spec.
    pub slo_slack: Option<f64>,
    /// Priority tag carried from the spec.
    pub priority: u8,
}

impl Program {
    /// Total accelerator invocations on this request's resolved path
    /// (the `#` column of Table IV).
    pub fn accelerator_invocations(&self) -> usize {
        self.calls().map(|c| c.hop_count()).sum()
    }

    /// All trace calls, in path order.
    pub fn calls(&self) -> impl Iterator<Item = &TraceCall> {
        self.steps.iter().flat_map(|s| match s {
            Step::Cpu { .. } => Vec::new(),
            Step::Call(c) => vec![c],
            Step::Parallel(cs) => cs.iter().collect(),
        })
    }

    /// Total app-logic cycles.
    pub fn app_cycles(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Cpu { cycles } => *cycles,
                _ => 0.0,
            })
            .sum()
    }
}

/// One stage of a sampled program.
#[derive(Clone, Debug)]
pub enum Step {
    /// Application logic.
    Cpu {
        /// CPU cycles (before generation scaling).
        cycles: f64,
    },
    /// One trace call.
    Call(TraceCall),
    /// Parallel trace calls; the program joins before the next step.
    Parallel(Vec<TraceCall>),
}

/// A sampled trace call: the resolved chain of segments.
#[derive(Clone, Debug)]
pub struct TraceCall {
    /// The segments, chained in order.
    pub segments: Vec<Segment>,
    /// Base virtual address of this call's payload buffers.
    pub vaddr: u64,
}

impl TraceCall {
    /// Total accelerator hops across segments.
    pub fn hop_count(&self) -> usize {
        self.segments.iter().map(|s| s.hops.len()).sum()
    }
}

/// A chain-free run of accelerator hops.
#[derive(Clone, Debug)]
pub struct Segment {
    /// The trace this segment executes (for queue entries).
    pub trace: Arc<Trace>,
    /// Resolved payload flags for this segment.
    pub flags: PayloadFlags,
    /// Whether the segment is triggered by a network message arriving
    /// at TCP (vs. initiated by a core's `Enqueue`).
    pub entry_is_network: bool,
    /// The accelerator visits, in order.
    pub hops: Vec<HopExec>,
    /// What happens after the last hop.
    pub end: SegmentEnd,
}

/// One accelerator visit.
#[derive(Clone, Copy, Debug)]
pub struct HopExec {
    /// The accelerator.
    pub kind: AccelKind,
    /// The `Accel` slot in the trace (the Position Mark).
    pub pm: PositionMark,
    /// Payload size entering the hop.
    pub in_bytes: u64,
    /// Payload size leaving the hop (after any transform).
    pub out_bytes: u64,
    /// Output-dispatcher glue instructions after this hop.
    pub glue_instrs: u32,
    /// Branches the dispatcher resolves after this hop.
    pub branches_after: u8,
    /// Whether a data transformation follows this hop.
    pub transform_after: bool,
    /// Whether a copy is forked to the CPU after this hop.
    pub fork_after: bool,
}

/// How a segment ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentEnd {
    /// Deliver the result to the originating core.
    ToCpu,
    /// Chain to the next segment immediately (split subtrace, e.g. the
    /// error trace).
    Continue,
    /// Chain to the next segment after a remote response arrives.
    AwaitResponse {
        /// Sampled remote delay.
        external: SimDuration,
    },
}

/// Samples one trace call: resolves flags, walks the template chain,
/// and precomputes every hop's sizes and glue costs.
pub fn sample_call(
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    rng: &mut SimRng,
    spec: &CallSpec,
    vaddr: u64,
) -> TraceCall {
    let flags = spec.flags.sample(rng);
    let (mut trace, mut entry_is_network) = match &spec.custom {
        Some(custom) => (Arc::clone(custom), false),
        None => {
            let entry = if spec.cmp_variant_prob > 0.0 && rng.chance(spec.cmp_variant_prob) {
                lib.entry_with_cmp(spec.template)
            } else {
                lib.entry(spec.template)
            };
            (Arc::new(entry.clone()), spec.template.message_triggered())
        }
    };

    let mut segments = Vec::new();
    let mut bytes = spec.payload.sample(rng);
    // Bound chains defensively (T4→T5→T6→T7→... is the longest: 4).
    for _ in 0..8 {
        let (segment, chained) = sample_segment(timing, &trace, flags, entry_is_network, bytes);
        let end = segment.end;
        segments.push(segment);
        match chained {
            None => break,
            Some(addr) => {
                let next = lib
                    .atm()
                    .peek(addr)
                    .expect("chain target must be ATM-resident")
                    .clone();
                // A response segment starts from a fresh network payload.
                if matches!(end, SegmentEnd::AwaitResponse { .. }) {
                    bytes = spec.payload.sample(rng);
                }
                trace = Arc::new(next);
                entry_is_network = matches!(end, SegmentEnd::AwaitResponse { .. });
            }
        }
    }
    // Attach sampled external delays now that ends are known.
    for segment in &mut segments {
        if let SegmentEnd::AwaitResponse { external } = &mut segment.end {
            *external = spec.external.sample(rng);
        }
    }
    TraceCall { segments, vaddr }
}

fn sample_segment(
    timing: &ServiceTimeModel,
    trace: &Arc<Trace>,
    flags: PayloadFlags,
    entry_is_network: bool,
    entry_bytes: u64,
) -> (Segment, Option<accelflow_trace::atm::AtmAddr>) {
    let mut hops: Vec<HopExec> = Vec::new();
    let mut bytes = entry_bytes;
    let mut adv = trace.first(&flags);
    let mut chained = None;
    let end = loop {
        match adv.next {
            Next::Invoke { kind, pm } => {
                let in_bytes = bytes;
                let mut out_bytes = timing.output_bytes(kind, in_bytes);
                let after = trace.advance(pm, &flags);
                let mut branches = 0u8;
                let mut transform = false;
                let mut fork = false;
                for action in &after.actions {
                    match action {
                        GlueAction::Branch { .. } => branches += 1,
                        GlueAction::Transform(t) => {
                            transform = true;
                            out_bytes =
                                ((out_bytes as f64) * t.size_ratio()).round().max(1.0) as u64;
                        }
                        GlueAction::ForkToCpu => fork = true,
                    }
                }
                let glue_instrs = output_dispatch_instructions(&after, out_bytes);
                hops.push(HopExec {
                    kind,
                    pm,
                    in_bytes,
                    out_bytes,
                    glue_instrs,
                    branches_after: branches,
                    transform_after: transform,
                    fork_after: fork,
                });
                bytes = out_bytes;
                adv = after;
            }
            Next::ToCpu => break SegmentEnd::ToCpu,
            Next::Chain(addr) => {
                chained = Some(addr);
                // Chains whose last hop sent a network message wait for
                // the response; split-subtrace chains continue at once.
                let waits = hops
                    .last()
                    .map(|h| h.kind == AccelKind::Tcp)
                    .unwrap_or(false);
                break if waits {
                    SegmentEnd::AwaitResponse {
                        external: SimDuration::ZERO,
                    }
                } else {
                    SegmentEnd::Continue
                };
            }
        }
    };
    (
        Segment {
            trace: Arc::clone(trace),
            flags,
            entry_is_network,
            hops,
            end,
        },
        chained,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_sim::time::Frequency;

    #[test]
    fn call_addr_tag_roundtrips() {
        for (req, step, par, seg, hop) in [
            (0u32, 0u8, 0u8, 0u8, 0u8),
            (1, 2, 3, 4, 5),
            (u32::MAX, u8::MAX, u8::MAX, u8::MAX, u8::MAX),
            (123_456, 7, 0, 3, 11),
        ] {
            let addr = CallAddr {
                req,
                step,
                par,
                seg,
                hop,
            };
            assert_eq!(CallAddr::from_tag(addr.tag()), addr);
        }
    }

    fn fixtures() -> (TraceLibrary, ServiceTimeModel, SimRng) {
        (
            TraceLibrary::standard(),
            ServiceTimeModel::calibrated(Frequency::from_ghz(2.4)),
            SimRng::seed(42),
        )
    }

    #[test]
    fn t1_call_has_single_segment() {
        let (lib, timing, mut rng) = fixtures();
        let spec = CallSpec::new(TemplateId::T1);
        let call = sample_call(&lib, &timing, &mut rng, &spec, 0x10000);
        assert_eq!(call.segments.len(), 1);
        let seg = &call.segments[0];
        assert!(seg.entry_is_network);
        assert_eq!(seg.end, SegmentEnd::ToCpu);
        // Tcp, Decr, Rpc, Dser, [Dcmp], Ldb.
        assert!(seg.hops.len() == 5 || seg.hops.len() == 6);
        assert_eq!(seg.hops[0].kind, AccelKind::Tcp);
        assert_eq!(seg.hops.last().unwrap().kind, AccelKind::Ldb);
    }

    #[test]
    fn t4_call_chains_through_responses() {
        let (lib, timing, mut rng) = fixtures();
        let spec = CallSpec::new(TemplateId::T4).with_flags(FlagProbs {
            hit: 1.0, // always hits the DB cache
            ..FlagProbs::default()
        });
        let call = sample_call(&lib, &timing, &mut rng, &spec, 0x10000);
        // T4 (send) + T5 (response): two segments.
        assert_eq!(call.segments.len(), 2);
        assert!(
            matches!(call.segments[0].end, SegmentEnd::AwaitResponse { external } if external > SimDuration::ZERO)
        );
        assert!(!call.segments[0].entry_is_network);
        assert!(call.segments[1].entry_is_network);
        assert_eq!(call.segments[1].end, SegmentEnd::ToCpu);
    }

    #[test]
    fn t4_miss_path_reaches_t6_and_t7() {
        let (lib, timing, mut rng) = fixtures();
        let spec = CallSpec::new(TemplateId::T4).with_flags(FlagProbs {
            hit: 0.0,
            found: 1.0,
            exception: 0.0,
            ..FlagProbs::default()
        });
        let call = sample_call(&lib, &timing, &mut rng, &spec, 0x10000);
        // T4 → T5(miss→send to DB) → T6(found→write cache) → T7.
        assert_eq!(call.segments.len(), 4);
        let waits: Vec<bool> = call
            .segments
            .iter()
            .map(|s| matches!(s.end, SegmentEnd::AwaitResponse { .. }))
            .collect();
        assert_eq!(waits, vec![true, true, true, false]);
        // T6's fork hands the data to the CPU mid-trace.
        assert!(call.segments[2].hops.iter().any(|h| h.fork_after));
    }

    #[test]
    fn error_chain_continues_immediately() {
        let (lib, timing, mut rng) = fixtures();
        let spec = CallSpec::new(TemplateId::T8).with_flags(FlagProbs {
            exception: 1.0,
            ..FlagProbs::default()
        });
        let call = sample_call(&lib, &timing, &mut rng, &spec, 0);
        // T8 (send) → T7 (response, exception) → error trace (immediate).
        assert_eq!(call.segments.len(), 3);
        assert_eq!(call.segments[1].end, SegmentEnd::Continue);
        assert_eq!(call.segments[2].end, SegmentEnd::ToCpu);
        assert_eq!(call.segments[2].hops.len(), 4);
    }

    #[test]
    fn payload_sizes_flow_through_hops() {
        let (lib, timing, mut rng) = fixtures();
        let spec = CallSpec::new(TemplateId::T9).with_cmp_prob(1.0);
        let call = sample_call(&lib, &timing, &mut rng, &spec, 0);
        let seg = &call.segments[0];
        assert_eq!(seg.hops[0].kind, AccelKind::Cmp);
        // Compression shrinks the payload ~3x before Ser.
        assert!(seg.hops[1].in_bytes < seg.hops[0].in_bytes / 2);
        for w in seg.hops.windows(2) {
            assert_eq!(w[0].out_bytes, w[1].in_bytes, "sizes must chain");
        }
    }

    #[test]
    fn glue_instructions_are_positive_and_bounded() {
        let (lib, timing, mut rng) = fixtures();
        for template in TemplateId::ALL {
            let spec = CallSpec::new(template);
            let call = sample_call(&lib, &timing, &mut rng, &spec, 0);
            for seg in &call.segments {
                for hop in &seg.hops {
                    assert!(hop.glue_instrs >= 15, "{template}: {}", hop.glue_instrs);
                    assert!(hop.glue_instrs <= 15 + 9 * 2 + 12 * 64 + 20, "{template}");
                }
            }
        }
    }

    #[test]
    fn program_counts_parallel_calls() {
        let (lib, timing, mut rng) = fixtures();
        let svc = ServiceSpec::new(
            "toy",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(50_000.0, 0.2)),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 4]),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        );
        let program = svc.sample(&lib, &timing, &mut rng, 0);
        assert_eq!(program.steps.len(), 4);
        // T1 (≥5) + 4×(T9+T10: ≥9 each) + T2 (4) ≥ 45.
        assert!(program.accelerator_invocations() >= 40);
        assert!(program.app_cycles() > 0.0);
    }

    #[test]
    fn path_string_names_chains() {
        let (lib, _, _) = fixtures();
        let svc = ServiceSpec::new(
            "ReadH",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(10_000.0, 0.1)),
                StageSpec::Call(CallSpec::new(TemplateId::T4)),
                StageSpec::Call(CallSpec::new(TemplateId::T3)),
            ],
        );
        assert_eq!(svc.path_string(&lib), "T1-CPU-T4-T5-T3");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let (lib, timing, _) = fixtures();
        let spec = CallSpec::new(TemplateId::T4);
        let a = sample_call(&lib, &timing, &mut SimRng::seed(9), &spec, 0);
        let b = sample_call(&lib, &timing, &mut SimRng::seed(9), &spec, 0);
        assert_eq!(a.segments.len(), b.segments.len());
        for (sa, sb) in a.segments.iter().zip(&b.segments) {
            assert_eq!(sa.hops.len(), sb.hops.len());
            for (ha, hb) in sa.hops.iter().zip(&sb.hops) {
                assert_eq!(ha.in_bytes, hb.in_bytes);
            }
        }
    }
}
