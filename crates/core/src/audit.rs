//! Invariant auditing for the machine model.
//!
//! The paper's headline claim is that traces execute end-to-end with
//! no CPU involvement — which makes silent bookkeeping bugs (a lost
//! request, a leaked tenant slot, a queue past its SRAM capacity) the
//! most dangerous failure mode of the reproduction: they skew every
//! figure without crashing anything. The [`Auditor`] watches the
//! [`Machine`](crate::machine::Machine) event loop and checks, at every
//! state transition:
//!
//! - **Request conservation** — every admitted request terminates
//!   exactly once, `admitted == terminated + live` at all times, and
//!   the measured totals match the per-service `offered`/`completed`
//!   rows.
//! - **Call conservation** — every initiated trace call releases its
//!   per-tenant slot exactly once (normal completion or cleanup at
//!   request termination); once the machine drains, no tenant holds a
//!   slot.
//! - **Call finish uniqueness** — each call position (`step`, `par`)
//!   of a live request delivers its completion (CallDone or Timeout)
//!   at most once; a duplicate means a handler lost the call identity
//!   or a stale event slipped past the liveness guards.
//! - **Queue bounds** — SRAM input-queue occupancy never exceeds the
//!   configured capacity, the overflow area never exceeds its own
//!   capacity, and the overflow area is only occupied while the SRAM
//!   queue is full (a bounce happened).
//! - **Time/energy monotonicity** — event timestamps never move
//!   backwards, and the monotone activity meters (busy time, DMA
//!   bytes, ATM reads, overflow/rejection counts) never decrease.
//! - **ATM chain termination** — no stored trace chain revisits an ATM
//!   address without a branch on the cycle (checked statically at
//!   construction; a branch-free cycle is an infinite dispatch loop).
//! - **Resilience invariants** — under fault injection (see
//!   [`faults`](crate::faults)), no PE starts a job while its station
//!   is stalled dark, every retry stays within the configured budget,
//!   and a drained machine holds no orphaned retry bookkeeping (a
//!   request lost inside the recovery layer would strand one).
//!
//! Auditing is on by default in debug builds (`debug_assertions`) and
//! opt-in for release builds through the `audit` cargo feature or
//! [`MachineConfig::audit`](crate::machine::MachineConfig). Violations
//! are collected into the run's [`AuditReport`]; debug builds
//! additionally panic at report time so tests fail loudly.

use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::atm::{Atm, AtmAddr};
use accelflow_trace::ir::Slot;

/// One observed invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed (short stable identifier).
    pub invariant: &'static str,
    /// Simulated time of the observation.
    pub at: SimTime,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={} {}", self.invariant, self.at, self.detail)
    }
}

/// Outcome of a run's invariant audit.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Whether auditing ran at all.
    pub enabled: bool,
    /// Individual invariant evaluations performed.
    pub checks: u64,
    /// Total violations observed (may exceed `violations.len()`).
    pub violation_count: u64,
    /// The first violations, capped to keep reports bounded.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Report for a run that had auditing disabled.
    pub fn disabled() -> Self {
        AuditReport::default()
    }

    /// True when auditing found nothing (vacuously true if disabled).
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }
}

/// Cap on retained [`Violation`]s; the count keeps incrementing past it.
const MAX_RECORDED: usize = 32;

/// Watches the machine's state transitions and records violations.
#[derive(Debug)]
pub struct Auditor {
    checks: u64,
    violation_count: u64,
    violations: Vec<Violation>,
    // Request conservation.
    admitted: u64,
    terminated: u64,
    measured_admitted: u64,
    measured_terminated: u64,
    terminated_flags: Vec<bool>,
    // Call / tenant-slot conservation.
    calls_started: u64,
    calls_ended: u64,
    /// Per request (dense-indexed by arrival number, like
    /// `terminated_flags`), the packed `(step << 8) | par` positions
    /// whose completion (CallDone or Timeout) was already delivered —
    /// cleared on termination. Dense slots replace the former
    /// `HashMap`: the hot-path duplicate check becomes one bounds-free
    /// index plus a scan of a few inline entries, no hashing.
    finished_calls: Vec<Vec<u16>>,
    // Monotonicity snapshots.
    last_event_time: SimTime,
    last_core_busy: SimDuration,
    last_accel_busy: SimDuration,
    last_activity_events: u64,
    last_dma_bytes: u64,
    last_atm_reads: u64,
    last_overflows: Vec<u64>,
    last_rejections: Vec<u64>,
    // Resilience: the auditor's own copy of each station's stall
    // window, recorded when the injector darkens a station and checked
    // against every PE start (independent of the machine's
    // availability bookkeeping, so a desync between the two shows up).
    dark_until: Vec<SimTime>,
}

impl Auditor {
    /// Creates an auditor for a run with `n_requests` possible arrivals
    /// and the given ATM contents (whose chains are checked here, once:
    /// the stored traces do not change during a run).
    pub fn new(n_requests: usize, atm: &Atm) -> Self {
        let mut aud = Auditor {
            checks: 0,
            violation_count: 0,
            violations: Vec::new(),
            admitted: 0,
            terminated: 0,
            measured_admitted: 0,
            measured_terminated: 0,
            terminated_flags: vec![false; n_requests],
            calls_started: 0,
            calls_ended: 0,
            finished_calls: vec![Vec::new(); n_requests],
            last_event_time: SimTime::ZERO,
            last_core_busy: SimDuration::ZERO,
            last_accel_busy: SimDuration::ZERO,
            last_activity_events: 0,
            last_dma_bytes: 0,
            last_atm_reads: 0,
            last_overflows: Vec::new(),
            last_rejections: Vec::new(),
            dark_until: Vec::new(),
        };
        aud.check_atm_chains(atm);
        aud
    }

    fn violation(&mut self, invariant: &'static str, at: SimTime, detail: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(Violation {
                invariant,
                at,
                detail,
            });
        }
    }

    fn check(
        &mut self,
        ok: bool,
        invariant: &'static str,
        at: SimTime,
        detail: impl FnOnce() -> String,
    ) {
        self.checks += 1;
        if !ok {
            self.violation(invariant, at, detail());
        }
    }

    // ----- event-loop hooks -----

    /// Before dispatching an event: simulated time must not run
    /// backwards (the event queue orders by time; `schedule_at` clamps
    /// past times, so a regression here means the engine broke).
    pub fn pre_event(&mut self, now: SimTime) {
        let last = self.last_event_time;
        self.check(now >= last, "time-monotonic", now, || {
            format!("event at {now} after event at {last}")
        });
        self.last_event_time = now;
    }

    /// After an event: SRAM queue bounds for one accelerator station.
    /// `overflow_count`/`rejected_count` are the station's lifetime
    /// counters (must be monotone).
    #[allow(clippy::too_many_arguments)]
    pub fn check_queue(
        &mut self,
        now: SimTime,
        station: usize,
        len: usize,
        capacity: usize,
        overflow_len: usize,
        overflow_capacity: usize,
        overflow_count: u64,
        rejected_count: u64,
    ) {
        self.check(len <= capacity, "queue-bound", now, || {
            format!("station {station}: SRAM occupancy {len} > capacity {capacity}")
        });
        self.check(
            overflow_len <= overflow_capacity,
            "overflow-bound",
            now,
            || {
                format!(
                    "station {station}: overflow occupancy {overflow_len} > capacity {overflow_capacity}"
                )
            },
        );
        // The overflow area is a spill path: it only holds entries
        // while the SRAM queue is full (an actual bounce happened).
        self.check(
            overflow_len == 0 || len == capacity,
            "overflow-implies-full",
            now,
            || {
                format!(
                    "station {station}: {overflow_len} overflowed entries while SRAM holds {len}/{capacity}"
                )
            },
        );
        if self.last_overflows.len() <= station {
            self.last_overflows.resize(station + 1, 0);
            self.last_rejections.resize(station + 1, 0);
        }
        let prev = self.last_overflows[station];
        self.check(overflow_count >= prev, "counter-monotonic", now, || {
            format!("station {station}: overflow count fell {prev} -> {overflow_count}")
        });
        self.last_overflows[station] = overflow_count;
        let prev = self.last_rejections[station];
        self.check(rejected_count >= prev, "counter-monotonic", now, || {
            format!("station {station}: rejection count fell {prev} -> {rejected_count}")
        });
        self.last_rejections[station] = rejected_count;
    }

    /// After an event: the machine-wide activity meters only grow.
    pub fn check_meters(
        &mut self,
        now: SimTime,
        core_busy: SimDuration,
        accel_busy: SimDuration,
        activity_events: u64,
        dma_bytes: u64,
        atm_reads: u64,
    ) {
        let prev = self.last_core_busy;
        self.check(core_busy >= prev, "energy-monotonic", now, || {
            format!("core busy time fell {prev} -> {core_busy}")
        });
        self.last_core_busy = core_busy;
        let prev = self.last_accel_busy;
        self.check(accel_busy >= prev, "energy-monotonic", now, || {
            format!("accel busy time fell {prev} -> {accel_busy}")
        });
        self.last_accel_busy = accel_busy;
        let prev = self.last_activity_events;
        self.check(activity_events >= prev, "energy-monotonic", now, || {
            format!("activity event count fell {prev} -> {activity_events}")
        });
        self.last_activity_events = activity_events;
        let prev = self.last_dma_bytes;
        self.check(dma_bytes >= prev, "counter-monotonic", now, || {
            format!("DMA byte count fell {prev} -> {dma_bytes}")
        });
        self.last_dma_bytes = dma_bytes;
        let prev = self.last_atm_reads;
        self.check(atm_reads >= prev, "counter-monotonic", now, || {
            format!("ATM read count fell {prev} -> {atm_reads}")
        });
        self.last_atm_reads = atm_reads;
    }

    // ----- lifecycle records -----

    /// A request was admitted (its `RequestState` created).
    pub fn record_admit(&mut self, now: SimTime, idx: u32, measured: bool) {
        self.admitted += 1;
        if measured {
            self.measured_admitted += 1;
        }
        // Externally-dispatched arrivals (the cluster layer) register
        // requests past the construction-time count; grow the dense
        // per-request tables so those admits are audited, not flagged.
        if idx as usize >= self.terminated_flags.len() {
            self.terminated_flags.resize(idx as usize + 1, false);
            self.finished_calls.resize(idx as usize + 1, Vec::new());
        }
        let fresh = self
            .terminated_flags
            .get(idx as usize)
            .map(|t| !t)
            .unwrap_or(false);
        self.check(fresh, "admit-once", now, || {
            format!("request {idx} admitted after terminating")
        });
    }

    /// A request terminated (completed, errored, or timed out).
    pub fn record_terminate(&mut self, now: SimTime, idx: u32, measured: bool) {
        self.terminated += 1;
        if measured {
            self.measured_terminated += 1;
        }
        let first = match self.terminated_flags.get_mut(idx as usize) {
            Some(flag) => !std::mem::replace(flag, true),
            None => false,
        };
        self.check(first, "terminate-once", now, || {
            format!("request {idx} terminated twice")
        });
        // The per-call finish log only needs to cover live requests;
        // stale events for this request are dropped by the machine's
        // liveness guards before they could re-finish a call.
        if let Some(seen) = self.finished_calls.get_mut(idx as usize) {
            seen.clear();
        }
    }

    /// A trace call acquired its per-tenant slot.
    pub fn record_call_start(&mut self, _now: SimTime) {
        self.calls_started += 1;
    }

    /// `n` trace calls released their per-tenant slots (`n > 1` when a
    /// terminating request cleans up still-in-flight calls).
    pub fn record_call_end(&mut self, _now: SimTime, n: u32) {
        self.calls_ended += n as u64;
    }

    /// One specific call of a request — identified by its `step`/`par`
    /// position — delivered its completion (CallDone or Timeout). Each
    /// position may finish at most once per request; a duplicate means
    /// a handler lost the call identity or a stale event slipped past
    /// the liveness guards.
    pub fn record_call_finished(&mut self, now: SimTime, req: u32, step: u8, par: u8) {
        let key = ((step as u16) << 8) | par as u16;
        if self.finished_calls.len() <= req as usize {
            // Requests beyond the declared arrival count (defensive —
            // the machine never issues them).
            self.finished_calls.resize(req as usize + 1, Vec::new());
        }
        let seen = &mut self.finished_calls[req as usize];
        let fresh = !seen.contains(&key);
        if fresh {
            seen.push(key);
        }
        self.check(fresh, "call-finished-once", now, || {
            format!("request {req} call (step {step}, par {par}) finished twice")
        });
    }

    // ----- resilience records -----

    /// The fault injector darkened `station` until `until`. Overlapping
    /// stalls keep the later end, matching the injector's merge rule.
    pub fn record_station_dark(&mut self, _now: SimTime, station: usize, until: SimTime) {
        if self.dark_until.len() <= station {
            self.dark_until.resize(station + 1, SimTime::ZERO);
        }
        if until > self.dark_until[station] {
            self.dark_until[station] = until;
        }
    }

    /// A PE on `station` started a job. Stalled-dark stations must not
    /// start work — their queues buffer until `StallEnd` wakes them.
    pub fn record_pe_start(&mut self, now: SimTime, station: usize) {
        let until = self
            .dark_until
            .get(station)
            .copied()
            .unwrap_or(SimTime::ZERO);
        self.check(now >= until, "dark-station-start", now, || {
            format!("station {station} started a PE while dark until {until}")
        });
    }

    /// The recovery layer retried a call; `attempt` is 1-based and must
    /// stay within the configured budget (the budget exhausting is the
    /// degrade path, never a further retry).
    pub fn record_retry(&mut self, now: SimTime, attempt: u32, max_retries: u32) {
        self.check(attempt <= max_retries, "retry-bounded", now, || {
            format!("retry attempt {attempt} exceeds budget {max_retries}")
        });
    }

    /// After the run drained (`live == 0`), the recovery layer may hold
    /// no retry bookkeeping: an `outstanding` entry means a call went
    /// into recovery and never came out (lost request).
    pub fn check_recovery_drained(&mut self, now: SimTime, live: u64, outstanding: u64) {
        self.check(
            live != 0 || outstanding == 0,
            "recovery-drained",
            now,
            || format!("machine drained but {outstanding} retry entries remain"),
        );
    }

    // ----- end of run -----

    /// Final conservation checks once the event loop drained.
    ///
    /// `offered`/`completed` are the sums of the per-service stats
    /// rows; `live` and `tenant_active` are the machine's idea of
    /// still-in-flight work.
    pub fn finish(
        &mut self,
        now: SimTime,
        live: u64,
        tenant_active: &[u32],
        offered: u64,
        completed: u64,
    ) {
        let (admitted, terminated) = (self.admitted, self.terminated);
        self.check(
            admitted == terminated + live,
            "request-conservation",
            now,
            || format!("admitted {admitted} != terminated {terminated} + live {live}"),
        );
        let measured_admitted = self.measured_admitted;
        self.check(measured_admitted == offered, "offered-row-sum", now, || {
            format!("measured admissions {measured_admitted} != sum of offered rows {offered}")
        });
        let measured_terminated = self.measured_terminated;
        self.check(
            measured_terminated == completed,
            "completed-row-sum",
            now,
            || {
                format!(
                    "measured terminations {measured_terminated} != sum of completed rows {completed}"
                )
            },
        );
        if live == 0 {
            // A drained machine holds no tenant slots and has matched
            // every call start with a call end.
            let held: u64 = tenant_active.iter().map(|&n| n as u64).sum();
            self.check(held == 0, "tenant-slot-leak", now, || {
                format!("machine drained but tenants hold {held} slots")
            });
            let (started, ended) = (self.calls_started, self.calls_ended);
            self.check(started == ended, "call-conservation", now, || {
                format!("calls started {started} != calls ended {ended}")
            });
        }
    }

    /// Consumes the auditor into its report.
    pub fn into_report(self) -> AuditReport {
        AuditReport {
            enabled: true,
            checks: self.checks,
            violation_count: self.violation_count,
            violations: self.violations,
        }
    }

    // ----- static ATM chain check -----

    /// Flags ATM chain cycles with no branch on them: a dispatcher
    /// following such a chain re-dispatches the same traces forever.
    /// Cycles *through* a branch are legitimate (retry loops resolved
    /// by payload data), so only branch-free cycles are violations.
    fn check_atm_chains(&mut self, atm: &Atm) {
        let n = atm.capacity();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut has_branch = vec![false; n];
        for (i, edge_list) in edges.iter_mut().enumerate() {
            let Some(trace) = atm.peek(AtmAddr(i as u16)) else {
                continue;
            };
            has_branch[i] = trace.branch_count() > 0;
            for slot in trace.slots() {
                if let Slot::NextTrace(a) = slot {
                    if (a.0 as usize) < n {
                        edge_list.push(a.0 as usize);
                    }
                }
            }
        }
        // Iterative coloring DFS; a back edge onto the gray path is a
        // cycle, violating termination iff no node on it has a branch.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; n];
        let mut path: Vec<usize> = Vec::new();
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = GRAY;
            path.push(start);
            while let Some(&(node, next)) = stack.last() {
                if next < edges[node].len() {
                    stack.last_mut().expect("non-empty").1 += 1;
                    let target = edges[node][next];
                    match color[target] {
                        WHITE => {
                            color[target] = GRAY;
                            path.push(target);
                            stack.push((target, 0));
                        }
                        GRAY => {
                            self.checks += 1;
                            let cycle_start = path
                                .iter()
                                .position(|&p| p == target)
                                .expect("gray is on path");
                            let cycle = &path[cycle_start..];
                            if !cycle.iter().any(|&p| has_branch[p]) {
                                let chain: Vec<String> = cycle
                                    .iter()
                                    .map(|&p| AtmAddr(p as u16).to_string())
                                    .collect();
                                self.violation(
                                    "atm-chain-termination",
                                    SimTime::ZERO,
                                    format!("branch-free ATM cycle: {}", chain.join(" -> ")),
                                );
                            }
                        }
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    path.pop();
                    stack.pop();
                }
            }
        }
        self.checks += 1; // the whole-ATM scan counts as one check
    }
}

// ----- checkpoint serialization (see docs/CHECKPOINT.md) -----

use accelflow_sim::snapshot::{SnapReader, SnapWriter, Snapshot, SnapshotError};

/// Every invariant identifier the auditor can record, in wire-tag
/// order. `Violation.invariant` is a `&'static str`, which cannot
/// round-trip through bytes directly, so snapshots intern it as an
/// index into this table; appending new invariants is wire-compatible,
/// reordering is not.
const INVARIANTS: [&str; 18] = [
    "time-monotonic",
    "queue-bound",
    "overflow-bound",
    "overflow-implies-full",
    "counter-monotonic",
    "energy-monotonic",
    "admit-once",
    "terminate-once",
    "call-finished-once",
    "dark-station-start",
    "retry-bounded",
    "recovery-drained",
    "request-conservation",
    "offered-row-sum",
    "completed-row-sum",
    "tenant-slot-leak",
    "call-conservation",
    "atm-chain-termination",
];

impl Snapshot for Violation {
    fn save(&self, w: &mut SnapWriter) {
        let tag = INVARIANTS
            .iter()
            .position(|&name| name == self.invariant)
            .expect("every recordable invariant is interned") as u8;
        w.u8(tag);
        self.at.save(w);
        self.detail.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let tag = r.u8()? as usize;
        let invariant = *INVARIANTS.get(tag).ok_or_else(|| {
            SnapshotError::Corrupt(format!("unknown invariant tag {tag}"))
        })?;
        Ok(Violation {
            invariant,
            at: SimTime::load(r)?,
            detail: String::load(r)?,
        })
    }
}

impl Snapshot for Auditor {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.checks);
        w.u64(self.violation_count);
        self.violations.save(w);
        w.u64(self.admitted);
        w.u64(self.terminated);
        w.u64(self.measured_admitted);
        w.u64(self.measured_terminated);
        self.terminated_flags.save(w);
        w.u64(self.calls_started);
        w.u64(self.calls_ended);
        self.finished_calls.save(w);
        self.last_event_time.save(w);
        self.last_core_busy.save(w);
        self.last_accel_busy.save(w);
        w.u64(self.last_activity_events);
        w.u64(self.last_dma_bytes);
        w.u64(self.last_atm_reads);
        self.last_overflows.save(w);
        self.last_rejections.save(w);
        self.dark_until.save(w);
    }
    /// Restores the mid-run bookkeeping directly — the constructor's
    /// one-time ATM chain check is *not* re-run, because its checks and
    /// any violations it found are already part of the serialized
    /// counters.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Auditor {
            checks: r.u64()?,
            violation_count: r.u64()?,
            violations: Vec::load(r)?,
            admitted: r.u64()?,
            terminated: r.u64()?,
            measured_admitted: r.u64()?,
            measured_terminated: r.u64()?,
            terminated_flags: Vec::load(r)?,
            calls_started: r.u64()?,
            calls_ended: r.u64()?,
            finished_calls: Vec::load(r)?,
            last_event_time: SimTime::load(r)?,
            last_core_busy: SimDuration::load(r)?,
            last_accel_busy: SimDuration::load(r)?,
            last_activity_events: r.u64()?,
            last_dma_bytes: r.u64()?,
            last_atm_reads: r.u64()?,
            last_overflows: Vec::load(r)?,
            last_rejections: Vec::load(r)?,
            dark_until: Vec::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_trace::cond::BranchCond;
    use accelflow_trace::ir::Trace;
    use accelflow_trace::kind::AccelKind;

    fn chain_trace(name: &str, next: AtmAddr) -> Trace {
        Trace::new(
            name,
            vec![Slot::Accel(AccelKind::Tcp), Slot::NextTrace(next)],
        )
    }

    #[test]
    fn branch_free_atm_cycle_is_flagged() {
        let mut atm = Atm::new(8);
        atm.store_at(AtmAddr(0), chain_trace("a", AtmAddr(1)));
        atm.store_at(AtmAddr(1), chain_trace("b", AtmAddr(0)));
        let aud = Auditor::new(0, &atm);
        let report = aud.into_report();
        assert_eq!(report.violation_count, 1);
        assert_eq!(report.violations[0].invariant, "atm-chain-termination");
        assert!(report.violations[0].detail.contains("atm:0x0000"));
    }

    #[test]
    fn atm_cycle_through_a_branch_is_allowed() {
        let mut atm = Atm::new(8);
        atm.store_at(AtmAddr(0), chain_trace("a", AtmAddr(1)));
        atm.store_at(
            AtmAddr(1),
            Trace::new(
                "b",
                vec![
                    Slot::Branch {
                        cond: BranchCond::Hit,
                        on_true: 1,
                        on_false: 2,
                    },
                    Slot::NextTrace(AtmAddr(0)),
                    Slot::ToCpu,
                ],
            ),
        );
        let aud = Auditor::new(0, &atm);
        assert!(aud.into_report().is_clean());
    }

    #[test]
    fn straight_chains_are_clean() {
        let mut atm = Atm::new(8);
        atm.store_at(AtmAddr(0), chain_trace("a", AtmAddr(1)));
        atm.store_at(AtmAddr(1), chain_trace("b", AtmAddr(2)));
        atm.store_at(
            AtmAddr(2),
            Trace::new("c", vec![Slot::Accel(AccelKind::Ser), Slot::ToCpu]),
        );
        assert!(Auditor::new(0, &atm).into_report().is_clean());
    }

    #[test]
    fn duplicate_call_finish_is_flagged_per_position() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(2, &atm);
        let t = SimTime::ZERO;
        aud.record_admit(t, 0, true);
        // Two parallel arms of the same step finish once each: clean.
        aud.record_call_finished(t, 0, 1, 0);
        aud.record_call_finished(t, 0, 1, 1);
        // The same arm finishing again is the lost-identity bug.
        aud.record_call_finished(t, 0, 1, 1);
        // Termination prunes the log; a fresh admission of the same
        // slot index starts from a clean slate.
        aud.record_terminate(t, 0, true);
        aud.record_admit(t, 1, true);
        aud.record_call_finished(t, 1, 1, 1);
        let report = aud.into_report();
        assert_eq!(report.violation_count, 1);
        assert_eq!(report.violations[0].invariant, "call-finished-once");
        assert!(report.violations[0].detail.contains("step 1, par 1"));
    }

    #[test]
    fn double_termination_is_flagged() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(2, &atm);
        let t = SimTime::ZERO;
        aud.record_admit(t, 0, true);
        aud.record_terminate(t, 0, true);
        aud.record_terminate(t, 0, true);
        let report = aud.into_report();
        assert_eq!(report.violation_count, 1);
        assert_eq!(report.violations[0].invariant, "terminate-once");
    }

    #[test]
    fn conservation_mismatch_is_flagged() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(4, &atm);
        let t = SimTime::ZERO;
        aud.record_admit(t, 0, true);
        aud.record_admit(t, 1, true);
        aud.record_terminate(t, 0, true);
        // One request vanished: admitted 2, terminated 1, live 0.
        aud.finish(t, 0, &[], 2, 1);
        let report = aud.into_report();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "request-conservation"));
    }

    #[test]
    fn tenant_slot_leak_is_flagged() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(1, &atm);
        let t = SimTime::ZERO;
        aud.record_admit(t, 0, false);
        aud.record_call_start(t);
        aud.record_terminate(t, 0, false);
        // Drained, but a tenant still holds a slot and the call never
        // ended.
        aud.finish(t, 0, &[0, 1], 0, 0);
        let report = aud.into_report();
        let kinds: Vec<_> = report.violations.iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"tenant-slot-leak"), "{kinds:?}");
        assert!(kinds.contains(&"call-conservation"), "{kinds:?}");
    }

    #[test]
    fn queue_bound_breach_is_flagged() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(0, &atm);
        let t = SimTime::ZERO;
        aud.check_queue(t, 0, 65, 64, 0, 256, 0, 0);
        aud.check_queue(t, 0, 64, 64, 3, 256, 3, 0); // legal spill
        aud.check_queue(t, 0, 10, 64, 1, 256, 3, 0); // spill while SRAM has room
        let report = aud.into_report();
        let kinds: Vec<_> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(kinds, vec!["queue-bound", "overflow-implies-full"]);
    }

    #[test]
    fn time_and_meter_regressions_are_flagged() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(0, &atm);
        let t1 = SimTime::ZERO + SimDuration::from_micros(10);
        let t0 = SimTime::ZERO;
        aud.pre_event(t1);
        aud.pre_event(t0); // time ran backwards
        aud.check_meters(
            t1,
            SimDuration::from_micros(5),
            SimDuration::ZERO,
            10,
            100,
            1,
        );
        aud.check_meters(
            t1,
            SimDuration::from_micros(4),
            SimDuration::ZERO,
            10,
            90,
            1,
        );
        let report = aud.into_report();
        let kinds: Vec<_> = report.violations.iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"time-monotonic"), "{kinds:?}");
        assert!(kinds.contains(&"energy-monotonic"), "{kinds:?}");
        assert!(kinds.contains(&"counter-monotonic"), "{kinds:?}");
    }

    #[test]
    fn dark_station_start_is_flagged() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(0, &atm);
        let t0 = SimTime::ZERO;
        let until = t0 + SimDuration::from_micros(50);
        aud.record_station_dark(t0, 2, until);
        // Overlapping shorter stall must not shrink the window.
        aud.record_station_dark(t0, 2, t0 + SimDuration::from_micros(10));
        aud.record_pe_start(t0 + SimDuration::from_micros(20), 2); // dark
        aud.record_pe_start(t0 + SimDuration::from_micros(20), 0); // other station fine
        aud.record_pe_start(until, 2); // boundary: window is half-open
        let report = aud.into_report();
        assert_eq!(report.violation_count, 1);
        assert_eq!(report.violations[0].invariant, "dark-station-start");
        assert!(report.violations[0].detail.contains("station 2"));
    }

    #[test]
    fn retry_budget_breach_is_flagged() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(0, &atm);
        let t = SimTime::ZERO;
        aud.record_retry(t, 1, 3);
        aud.record_retry(t, 3, 3); // at the budget: legal
        aud.record_retry(t, 4, 3); // past it: the degrade path was missed
        let report = aud.into_report();
        assert_eq!(report.violation_count, 1);
        assert_eq!(report.violations[0].invariant, "retry-bounded");
    }

    #[test]
    fn orphaned_retry_entries_are_flagged_only_when_drained() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(0, &atm);
        let t = SimTime::ZERO;
        aud.check_recovery_drained(t, 3, 2); // live work may hold entries
        aud.check_recovery_drained(t, 0, 0); // drained and clean
        aud.check_recovery_drained(t, 0, 2); // drained with strays: lost calls
        let report = aud.into_report();
        assert_eq!(report.violation_count, 1);
        assert_eq!(report.violations[0].invariant, "recovery-drained");
    }

    #[test]
    fn violation_recording_is_capped_but_counted() {
        let atm = Atm::new(1);
        let mut aud = Auditor::new(0, &atm);
        for _ in 0..100 {
            aud.check_queue(SimTime::ZERO, 0, 99, 64, 0, 256, 0, 0);
        }
        let report = aud.into_report();
        assert_eq!(report.violation_count, 100);
        assert_eq!(report.violations.len(), MAX_RECORDED);
        assert!(!report.is_clean());
    }
}
