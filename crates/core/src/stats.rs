//! Run reports: everything the evaluation section measures.
//!
//! Per service: latency histogram (P99/average, Figs 11/12/13/16/18–20),
//! execution-time breakdown by component (Fig 17) and by tax category
//! (Fig 1), deadline misses (Fig 19). Machine-wide: fallback/overflow/
//! timeout/page-fault counters (§VII-B6), glue-instruction accounting
//! (§VII-B2), accelerator utilization (§VII-B4), and the energy report
//! (§VII-B5).

use accelflow_arch::energy::EnergyReport;
use accelflow_sim::stats::Histogram;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

/// Where a request's wall-clock went (Fig 17's four components, plus
/// time waiting on remote responses).
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Running on CPU cores (app logic + software tax + fallbacks).
    pub cpu: SimDuration,
    /// Running on accelerator PEs.
    pub accel: SimDuration,
    /// Orchestration logic: dispatchers, manager occupancy, interrupt
    /// handling, submissions.
    pub orchestration: SimDuration,
    /// Moving data and signals: DMA, network, queue↔scratchpad,
    /// notifications.
    pub communication: SimDuration,
    /// Waiting on remote DB/RPC/HTTP responses.
    pub external: SimDuration,
}

impl Breakdown {
    /// Sum of the on-server components (excludes external waits).
    pub fn on_server(&self) -> SimDuration {
        self.cpu + self.accel + self.orchestration + self.communication
    }

    /// Orchestration share of on-server time (Fig 3 / Fig 17).
    pub fn orchestration_fraction(&self) -> f64 {
        let total = self.on_server().as_picos();
        if total == 0 {
            0.0
        } else {
            self.orchestration.as_picos() as f64 / total as f64
        }
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &Breakdown) {
        self.cpu += other.cpu;
        self.accel += other.accel;
        self.orchestration += other.orchestration;
        self.communication += other.communication;
        self.external += other.external;
    }
}

/// Per-service results.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Service name.
    pub name: String,
    /// End-to-end latency of completed requests.
    pub latency: Histogram,
    /// Requests offered (arrived after warmup).
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests that ended in an error path (exceptions, not-found).
    pub errors: u64,
    /// Requests finishing after their SLO deadline.
    pub deadline_misses: u64,
    /// Wall-clock attribution across completed requests.
    pub breakdown: Breakdown,
    /// CPU-equivalent tax time per accelerator kind (Fig 1's
    /// categories; measured on the resolved path regardless of where
    /// the op ran).
    pub tax_by_kind: [SimDuration; AccelKind::COUNT],
    /// App-logic CPU time (Fig 1's AppLogic).
    pub app_logic: SimDuration,
    /// Raw `(completion time, latency)` samples, recorded only when
    /// [`sample latencies`](crate::machine::MachineConfig) is enabled
    /// (for time-series diagnostics).
    pub samples: Vec<(SimTime, SimDuration)>,
}

impl ServiceStats {
    /// Creates empty stats for a service.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceStats {
            name: name.into(),
            latency: Histogram::new(),
            offered: 0,
            completed: 0,
            errors: 0,
            deadline_misses: 0,
            breakdown: Breakdown::default(),
            tax_by_kind: [SimDuration::ZERO; AccelKind::COUNT],
            app_logic: SimDuration::ZERO,
            samples: Vec::new(),
        }
    }

    /// P99 latency.
    pub fn p99(&self) -> SimDuration {
        self.latency.percentile_duration(99.0)
    }

    /// Mean latency.
    pub fn mean(&self) -> SimDuration {
        self.latency.mean_duration()
    }

    /// Fig 1's normalized breakdown: `(tax share per kind, app share)`,
    /// as fractions of total attributed time.
    pub fn fig1_shares(&self) -> ([f64; AccelKind::COUNT], f64) {
        let tax_total: u64 = self.tax_by_kind.iter().map(|d| d.as_picos()).sum();
        let total = tax_total + self.app_logic.as_picos();
        if total == 0 {
            return ([0.0; AccelKind::COUNT], 0.0);
        }
        let mut shares = [0.0; AccelKind::COUNT];
        for (i, d) in self.tax_by_kind.iter().enumerate() {
            shares[i] = d.as_picos() as f64 / total as f64;
        }
        (shares, self.app_logic.as_picos() as f64 / total as f64)
    }
}

/// Machine-wide counters and meters.
#[derive(Clone, Debug, Default)]
pub struct MachineTotals {
    /// Accelerator invocations that fell back to CPU execution.
    pub fallbacks: u64,
    /// Entries that landed in an overflow area.
    pub overflows: u64,
    /// Core-path `Enqueue` rejections (before retry/fallback).
    pub enqueue_rejections: u64,
    /// TCP input-queue timeouts (§IV-B).
    pub tcp_timeouts: u64,
    /// Accelerator page faults / exceptions handled by the OS.
    pub page_faults: u64,
    /// ATM reads by output dispatchers.
    pub atm_reads: u64,
    /// Total output-dispatcher glue instructions.
    pub dispatcher_instrs: u64,
    /// Output-dispatcher walks (for the §VII-B2 average).
    pub dispatches: u64,
    /// Jobs the centralized manager processed (RELIEF family).
    pub manager_jobs: u64,
    /// Manager busy time.
    pub manager_busy: SimDuration,
    /// Per-kind accelerator utilization at end of run.
    pub accel_utilization: [f64; AccelKind::COUNT],
    /// Per-kind jobs processed on accelerators.
    pub accel_jobs: [u64; AccelKind::COUNT],
    /// Per-kind TLB (hits, misses).
    pub tlb: [(u64, u64); AccelKind::COUNT],
    /// Scratchpad wipes due to tenant switches (§IV-D).
    pub tenant_wipes: u64,
    /// Trace initiations delayed by the per-tenant cap (§IV-D).
    pub tenant_throttled: u64,
    /// Past-time `schedule_at` calls the event queue clamped forward.
    /// Non-zero means some component computed a timestamp from stale
    /// state — a time-travel bug the clamp would otherwise hide.
    pub clamped_events: u64,
    /// DMA bytes moved.
    pub dma_bytes: u64,
    /// Energy breakdown over the run.
    pub energy: EnergyReport,
}

impl MachineTotals {
    /// Mean glue instructions per output-dispatcher walk (§VII-B2
    /// reports 18 on average).
    pub fn mean_glue_instructions(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.dispatcher_instrs as f64 / self.dispatches as f64
        }
    }
}

/// The result of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-service results, in workload order.
    pub per_service: Vec<ServiceStats>,
    /// Machine-wide counters.
    pub totals: MachineTotals,
    /// Simulated time covered by measurement (post-warmup).
    pub measured: SimDuration,
    /// The instant the run ended.
    pub ended_at: SimTime,
    /// Fault-injection and recovery counters (all zeros when injection
    /// was disabled); see `docs/RESILIENCE.md` and `docs/METRICS.md`.
    pub faults: crate::faults::FaultStats,
    /// Online-control counters: ingress admissions/rejections,
    /// SLO-window compliance, and autoscaler actions (all zeros when
    /// control was disabled); see `docs/WORKLOADS.md` and
    /// `docs/METRICS.md`.
    pub control: crate::control::ControlStats,
    /// Invariant-audit outcome (empty/clean when auditing was off).
    pub audit: crate::audit::AuditReport,
    /// Captured telemetry: component-keyed records, track labels, and
    /// windowed utilization samples (empty/inert when telemetry was
    /// off). Render with
    /// [`chrome_trace`](accelflow_sim::telemetry::TelemetryReport::chrome_trace)
    /// or
    /// [`component_breakdown`](accelflow_sim::telemetry::TelemetryReport::component_breakdown).
    pub telemetry: accelflow_sim::telemetry::TelemetryReport,
}

impl RunReport {
    /// All services' latencies merged.
    pub fn aggregate_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in &self.per_service {
            h.merge(&s.latency);
        }
        h
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.per_service.iter().map(|s| s.completed).sum()
    }

    /// Total offered requests.
    pub fn offered(&self) -> u64 {
        self.per_service.iter().map(|s| s.offered).sum()
    }

    /// Achieved throughput in requests/second over the measured window.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.measured.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed() as f64 / secs
        }
    }

    /// Completion ratio — drops below ~1.0 when the machine saturates.
    pub fn completion_ratio(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            1.0
        } else {
            self.completed() as f64 / offered as f64
        }
    }

    /// Machine-wide breakdown (sum over services).
    pub fn total_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for s in &self.per_service {
            b.merge(&s.breakdown);
        }
        b
    }

    /// Machine-wide average invocation rate of accelerators that fell
    /// back to the CPU, as a fraction of all accelerator invocations.
    pub fn fallback_fraction(&self) -> f64 {
        let jobs: u64 = self.totals.accel_jobs.iter().sum::<u64>() + self.totals.fallbacks;
        if jobs == 0 {
            0.0
        } else {
            self.totals.fallbacks as f64 / jobs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let b = Breakdown {
            cpu: SimDuration::from_micros(60),
            accel: SimDuration::from_micros(30),
            orchestration: SimDuration::from_micros(5),
            communication: SimDuration::from_micros(5),
            external: SimDuration::from_micros(100),
        };
        assert_eq!(b.on_server(), SimDuration::from_micros(100));
        assert!((b.orchestration_fraction() - 0.05).abs() < 1e-12);
        let mut c = Breakdown::default();
        c.merge(&b);
        c.merge(&b);
        assert_eq!(c.cpu, SimDuration::from_micros(120));
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = Breakdown::default();
        assert_eq!(b.orchestration_fraction(), 0.0);
    }

    #[test]
    fn fig1_shares_normalize() {
        let mut s = ServiceStats::new("x");
        s.tax_by_kind[AccelKind::Tcp.id() as usize] = SimDuration::from_micros(30);
        s.tax_by_kind[AccelKind::Ser.id() as usize] = SimDuration::from_micros(50);
        s.app_logic = SimDuration::from_micros(20);
        let (shares, app) = s.fig1_shares();
        assert!((shares[AccelKind::Tcp.id() as usize] - 0.3).abs() < 1e-12);
        assert!((shares[AccelKind::Ser.id() as usize] - 0.5).abs() < 1e-12);
        assert!((app - 0.2).abs() < 1e-12);
        let total: f64 = shares.iter().sum::<f64>() + app;
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates() {
        let mut a = ServiceStats::new("a");
        a.latency.record_duration(SimDuration::from_micros(100));
        a.completed = 1;
        a.offered = 1;
        let mut b = ServiceStats::new("b");
        b.latency.record_duration(SimDuration::from_micros(300));
        b.completed = 1;
        b.offered = 2;
        let report = RunReport {
            per_service: vec![a, b],
            totals: MachineTotals::default(),
            measured: SimDuration::from_millis(1),
            ended_at: SimTime::ZERO + SimDuration::from_millis(1),
            faults: crate::faults::FaultStats::default(),
            control: crate::control::ControlStats::default(),
            audit: crate::audit::AuditReport::disabled(),
            telemetry: accelflow_sim::telemetry::TelemetryReport::disabled(),
        };
        assert_eq!(report.completed(), 2);
        assert_eq!(report.offered(), 3);
        assert_eq!(report.aggregate_latency().count(), 2);
        assert!((report.throughput_rps() - 2000.0).abs() < 1e-9);
        assert!((report.completion_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn glue_average() {
        let mut t = MachineTotals::default();
        assert_eq!(t.mean_glue_instructions(), 0.0);
        t.dispatcher_instrs = 180;
        t.dispatches = 10;
        assert_eq!(t.mean_glue_instructions(), 18.0);
    }
}
