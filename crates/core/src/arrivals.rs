//! Open-loop arrival generation.
//!
//! The machine consumes a pre-generated, time-sorted [`Arrival`] list
//! rather than sampling arrivals inline: generating the list up front
//! makes common-random-number comparisons across policies trivial (run
//! the *same* arrivals under every design) and lets trace-driven or
//! bursty generators (see `accelflow-workloads`) feed the machine
//! without touching the event loop.

use accelflow_accel::queue::TenantId;
use accelflow_accel::timing::ServiceTimeModel;
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::templates::TraceLibrary;

use crate::request::{Program, ServiceId, ServiceSpec};

/// One request arrival: when, which service, and the sampled program.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Arrival instant.
    pub at: SimTime,
    /// The service invoked.
    pub service: ServiceId,
    /// The invoking tenant.
    pub tenant: TenantId,
    /// The sampled execution.
    pub program: Program,
}

/// Number of distinct payload arenas the runtime recycles buffers
/// through (RPC runtimes reuse message buffers, so accelerator TLB
/// entries stay useful across requests).
pub const BUFFER_POOL: u64 = 64;

/// Generates open-loop Poisson arrivals for a service mix.
///
/// `rps_per_service` is the offered load of *each* service.
pub fn poisson_arrivals(
    services: &[ServiceSpec],
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    rps_per_service: f64,
    duration: SimDuration,
    seed: u64,
) -> Vec<Arrival> {
    let mut master = SimRng::seed(seed);
    let mut arrivals = Vec::new();
    let mut counter = 0u64;
    for (idx, svc) in services.iter().enumerate() {
        let mut rng = master.fork(idx as u64);
        let mean_gap = 1e6 / rps_per_service; // µs
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_micros_f64(rng.exponential(mean_gap));
            if t - SimTime::ZERO >= duration {
                break;
            }
            counter += 1;
            // Buffers come from a recycled arena pool (RPC runtimes
            // reuse message buffers), so TLB entries stay useful
            // across requests.
            let buffer = (counter % BUFFER_POOL) << 24;
            arrivals.push(Arrival {
                at: t,
                service: ServiceId(idx),
                tenant: svc.tenant,
                program: svc.sample(lib, timing, &mut rng, buffer),
            });
        }
    }
    arrivals.sort_by_key(|a| a.at);
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_pool_addresses_stay_disjoint_from_call_offsets() {
        // Arena bases are multiples of 1<<24. Per-call offsets are
        // (step << 20) + (par << 16); services have well under 16
        // steps, so a request's buffers stay inside its own arena.
        let base = (BUFFER_POOL - 1) << 24;
        assert_eq!(base % (1 << 24), 0, "bases aligned");
        let max_realistic_offset = (15u64 << 20) + (15u64 << 16);
        assert!(max_realistic_offset < 1 << 24, "offsets stay in-arena");
    }
}
