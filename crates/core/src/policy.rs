//! The orchestration policies under evaluation (paper §III, §VI).
//!
//! Five server designs orchestrate the same nine accelerators (plus a
//! no-accelerator baseline and an idealized bound), and the Fig 13
//! ablation isolates AccelFlow's techniques one at a time:
//!
//! | policy | orchestration |
//! |---|---|
//! | `NonAcc` | every tax op runs on a CPU core |
//! | `CpuCentric` | a core invokes one accelerator at a time; completion interrupts the core |
//! | `Relief` | centralized HW manager, one shared queue for all 72 PEs |
//! | `ReliefPerTypeQ` | Fig 13 step 1: + a queue per accelerator type |
//! | `Direct` | Fig 13 step 2: + traces with direct accelerator-to-accelerator transfers; branches, transforms, and large payloads still bounce to the manager |
//! | `CntrFlow` | Fig 13 step 3: + branches resolved in output dispatchers |
//! | `AccelFlow` | the full design: + transforms and large payloads handled by dispatchers |
//! | `AccelFlowDeadline` | AccelFlow with the deadline-aware input-dispatcher policy (§IV-C) |
//! | `Cohort` | statically linked accelerator pairs communicate directly; everything else is orchestrated by cores through shared-memory software queues |
//! | `Ideal` | direct communication with zero orchestration cost (Fig 14's bound) |

use accelflow_accel::dispatcher::QueuePolicy;
use accelflow_trace::kind::AccelKind;

/// An orchestration policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// No accelerators: all tax operations execute on cores.
    NonAcc,
    /// Cores orchestrate accelerators one invocation at a time.
    CpuCentric,
    /// RELIEF-style centralized hardware manager with a single shared
    /// queue.
    Relief,
    /// RELIEF with per-accelerator-type queues (Fig 13 "PerAccTypeQ").
    ReliefPerTypeQ,
    /// Traces + direct transfers; control flow and transforms still go
    /// through the manager (Fig 13 "Direct").
    Direct,
    /// Direct + branch resolution in dispatchers (Fig 13 "CntrFlow").
    CntrFlow,
    /// The complete AccelFlow design.
    AccelFlow,
    /// AccelFlow with deadline-aware input scheduling (§IV-C).
    AccelFlowDeadline,
    /// Cohort-style static pair chaining with software queues.
    Cohort,
    /// Zero-overhead direct chaining (upper bound, Fig 14).
    Ideal,
}

impl Policy {
    /// The five architectures of Fig 11/12/14, in the paper's order.
    pub const HEADLINE: [Policy; 5] = [
        Policy::NonAcc,
        Policy::CpuCentric,
        Policy::Relief,
        Policy::Cohort,
        Policy::AccelFlow,
    ];

    /// The Fig 13 ablation ladder, in order of technique addition.
    pub const ABLATION: [Policy; 5] = [
        Policy::Relief,
        Policy::ReliefPerTypeQ,
        Policy::Direct,
        Policy::CntrFlow,
        Policy::AccelFlow,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Policy::NonAcc => "Non-acc",
            Policy::CpuCentric => "CPU-Centric",
            Policy::Relief => "RELIEF",
            Policy::ReliefPerTypeQ => "PerAccTypeQ",
            Policy::Direct => "Direct",
            Policy::CntrFlow => "CntrFlow",
            Policy::AccelFlow => "AccelFlow",
            Policy::AccelFlowDeadline => "AccelFlow+DL",
            Policy::Cohort => "Cohort",
            Policy::Ideal => "Ideal",
        }
    }

    /// Whether tax ops execute on accelerators at all.
    pub fn uses_accelerators(self) -> bool {
        !matches!(self, Policy::NonAcc)
    }

    /// Whether a centralized hardware manager mediates transfers.
    pub fn uses_manager(self) -> bool {
        matches!(
            self,
            Policy::Relief | Policy::ReliefPerTypeQ | Policy::Direct | Policy::CntrFlow
        )
    }

    /// Whether RELIEF's single shared queue (with its head-of-line
    /// blocking across accelerator types) is in force.
    pub fn single_shared_queue(self) -> bool {
        matches!(self, Policy::Relief)
    }

    /// Whether accelerator-to-accelerator transfers bypass both cores
    /// and the manager for plain (branch-free, transform-free) hops.
    pub fn direct_transfers(self) -> bool {
        matches!(
            self,
            Policy::Direct
                | Policy::CntrFlow
                | Policy::AccelFlow
                | Policy::AccelFlowDeadline
                | Policy::Ideal
        )
    }

    /// Whether output dispatchers resolve branches (vs. bouncing to the
    /// manager or core).
    pub fn branches_in_dispatcher(self) -> bool {
        matches!(
            self,
            Policy::CntrFlow | Policy::AccelFlow | Policy::AccelFlowDeadline | Policy::Ideal
        )
    }

    /// Whether output dispatchers perform data transformations and
    /// drive Memory-Pointer payloads themselves.
    pub fn transforms_in_dispatcher(self) -> bool {
        matches!(
            self,
            Policy::AccelFlow | Policy::AccelFlowDeadline | Policy::Ideal
        )
    }

    /// Whether orchestration costs are suppressed entirely (the Ideal
    /// bound of Fig 14: "communicate directly without incurring the
    /// overheads of branch resolution or data transformations").
    pub fn zero_orchestration(self) -> bool {
        matches!(self, Policy::Ideal)
    }

    /// Whether cores orchestrate every hop (interrupt-driven).
    pub fn core_orchestrated(self) -> bool {
        matches!(self, Policy::CpuCentric | Policy::Cohort)
    }

    /// The input-dispatcher scheduling policy this design uses.
    pub fn queue_policy(self) -> QueuePolicy {
        match self {
            Policy::AccelFlowDeadline => QueuePolicy::DeadlineAware,
            _ => QueuePolicy::Fifo,
        }
    }

    /// Cohort's statically linked ordered pairs: Cohort links "a few"
    /// accelerators that always go together — the TCP→Decr receive edge
    /// and the Encr→TCP send edge. Transfers matching a linked pair
    /// bypass the cores.
    pub fn cohort_links() -> [(AccelKind, AccelKind); 2] {
        use AccelKind::*;
        [(Tcp, Decr), (Encr, Tcp)]
    }

    /// Whether this ordered hop is covered by a Cohort static link.
    pub fn cohort_linked(from: AccelKind, to: AccelKind) -> bool {
        Self::cohort_links().contains(&(from, to))
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_ladder_is_monotone_in_capabilities() {
        // Each Fig 13 step adds a capability and keeps the previous ones.
        let ladder = Policy::ABLATION;
        let caps = |p: Policy| {
            [
                !p.single_shared_queue(),
                p.direct_transfers(),
                p.branches_in_dispatcher(),
                p.transforms_in_dispatcher(),
            ]
        };
        for w in ladder.windows(2) {
            let (a, b) = (caps(w[0]), caps(w[1]));
            for i in 0..a.len() {
                assert!(!a[i] || b[i], "{} → {} loses capability {i}", w[0], w[1]);
            }
            assert_ne!(a, b, "{} → {} adds nothing", w[0], w[1]);
        }
    }

    #[test]
    fn headline_policies_are_distinct_designs() {
        assert!(!Policy::NonAcc.uses_accelerators());
        assert!(Policy::CpuCentric.core_orchestrated());
        assert!(Policy::Relief.uses_manager());
        assert!(Policy::Relief.single_shared_queue());
        assert!(!Policy::ReliefPerTypeQ.single_shared_queue());
        assert!(Policy::Cohort.core_orchestrated());
        assert!(Policy::AccelFlow.direct_transfers());
        assert!(!Policy::AccelFlow.uses_manager());
        assert!(Policy::Ideal.zero_orchestration());
        assert!(!Policy::AccelFlow.zero_orchestration());
    }

    #[test]
    fn deadline_variant_changes_only_scheduling() {
        let a = Policy::AccelFlow;
        let b = Policy::AccelFlowDeadline;
        assert_eq!(a.direct_transfers(), b.direct_transfers());
        assert_eq!(a.branches_in_dispatcher(), b.branches_in_dispatcher());
        assert_ne!(a.queue_policy(), b.queue_policy());
    }

    #[test]
    fn cohort_links_cover_the_universal_adjacencies() {
        use AccelKind::*;
        assert!(Policy::cohort_linked(Tcp, Decr));
        assert!(Policy::cohort_linked(Encr, Tcp));
        assert!(!Policy::cohort_linked(Decr, Tcp), "links are ordered");
        assert!(!Policy::cohort_linked(Dser, Ldb));
    }

    #[test]
    fn names_are_unique() {
        let all = [
            Policy::NonAcc,
            Policy::CpuCentric,
            Policy::Relief,
            Policy::ReliefPerTypeQ,
            Policy::Direct,
            Policy::CntrFlow,
            Policy::AccelFlow,
            Policy::AccelFlowDeadline,
            Policy::Cohort,
            Policy::Ideal,
        ];
        let mut names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
