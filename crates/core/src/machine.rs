//! The machine model: a 36-core server with the nine-accelerator
//! ensemble, executing sampled request programs under any of the ten
//! orchestration policies (paper §III, §IV, §VI).
//!
//! The machine is a discrete-event [`Model`]. Requests arrive as
//! network messages; their programs interleave app-logic stages on the
//! core pool with trace calls over the accelerator stations. What
//! differs between policies is purely *how control and data move
//! between hops*:
//!
//! - **AccelFlow family** — output dispatchers walk the trace (glue
//!   instructions at the dispatcher clock), resolve branches, transform
//!   data, read the ATM, and move payloads accelerator-to-accelerator
//!   with the shared A-DMA engines. The ablation rungs bounce branches
//!   and transforms to the centralized manager instead.
//! - **RELIEF** — every hop transition passes through a single-server
//!   hardware manager (~1.5 µs occupancy per completion, §VII-A1); the
//!   base design also funnels all work through one shared queue with
//!   head-of-line blocking across accelerator types.
//! - **CPU-Centric** — every completion interrupts the originating
//!   core, which then submits the next invocation.
//! - **Cohort** — statically linked pairs hand off directly through
//!   software queues; everything else bounces through a core.
//! - **Non-acc** — tax ops run as CPU work on the core pool.
//! - **Ideal** — direct transfers with zero orchestration cost.

use std::collections::VecDeque;
use std::sync::Arc;

use accelflow_accel::accelerator::Accelerator;
use accelflow_accel::queue::{PushOutcome, QueueEntry, RequestId, TenantId};
use accelflow_accel::timing::ServiceTimeModel;
use accelflow_arch::cache::MemoryBus;
use accelflow_arch::config::ArchConfig;
use accelflow_arch::dma::DmaPool;
use accelflow_arch::energy::{EnergyMeter, EnergyModel};
use accelflow_arch::interconnect::Interconnect;
use accelflow_arch::tlb::ProcessId;
use accelflow_arch::topology::{ChipletLayout, Endpoint, UnitId};
use accelflow_sim::engine::{EventQueue, Model, Simulation};
use accelflow_sim::resource::ServerPool;
use accelflow_sim::rng::SimRng;
use accelflow_sim::telemetry::{CompId, Sampler, Telemetry, TelemetryReport};
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;
use accelflow_trace::templates::TraceLibrary;

use crate::policy::Policy;
use crate::request::{Program, SegmentEnd, ServiceId, ServiceSpec, Step, TraceCall};
use crate::stats::{MachineTotals, RunReport, ServiceStats};

/// Configuration of one simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Hardware parameters (Table III).
    pub arch: ArchConfig,
    /// Orchestration policy.
    pub policy: Policy,
    /// Number of chiplets: 1, 2 (default), 3, 4, or 6 (Fig 18).
    pub chiplets: usize,
    /// Max concurrent traces per tenant (§IV-D's anti-hoarding cap).
    pub tenant_cap: usize,
    /// Measurement starts after this much simulated time.
    pub warmup: SimDuration,
    /// TCP input-queue response timeout (§IV-B).
    pub tcp_timeout: SimDuration,
    /// Probability an accelerator invocation page-faults (§VII-B6).
    pub page_fault_prob: f64,
    /// Global accelerator speedup multiplier (§VII-C5).
    pub speedup_scale: f64,
    /// Overrides the input-dispatcher scheduling policy implied by
    /// `policy` (e.g. priority scheduling, §V-1).
    pub queue_policy_override: Option<accelflow_accel::dispatcher::QueuePolicy>,
    /// Accelerator instances per type (paper §IV-A: "one or more
    /// instances of all the accelerators"; a core whose Enqueue is
    /// rejected "retries with another accelerator of the same type").
    pub instances_per_accel: usize,
    /// Record raw (completion time, latency) samples per service for
    /// time-series diagnostics (costs memory; off by default).
    pub sample_latencies: bool,
    /// Run the invariant [`Auditor`](crate::audit::Auditor) alongside
    /// the event loop. Defaults to on in debug builds and under the
    /// `audit` cargo feature; costs a constant-factor slowdown.
    pub audit: bool,
    /// Capture structured telemetry (per-component spans, instants,
    /// counters and windowed utilization samples) for Chrome-trace
    /// export and latency breakdowns. Off by default — including in
    /// debug builds, unlike `audit` — because the record stream costs
    /// memory and time; the `telemetry` cargo feature flips the
    /// default on. See `docs/METRICS.md` for every emitted record.
    pub telemetry: bool,
    /// Telemetry ring capacity in records; on overflow the oldest
    /// records are dropped and counted in the report's
    /// `dropped` field (the tail of a run is kept).
    pub telemetry_capacity: usize,
    /// Sampling window for the telemetry time series (utilization,
    /// queue occupancy, tenant-slot pressure). Sampling piggybacks on
    /// event delivery, so it never perturbs the event sequence.
    pub telemetry_sample: SimDuration,
}

impl MachineConfig {
    /// Baseline configuration for a policy.
    pub fn new(policy: Policy) -> Self {
        MachineConfig {
            arch: ArchConfig::icelake(),
            policy,
            chiplets: 2,
            tenant_cap: 1024,
            warmup: SimDuration::from_millis(5),
            tcp_timeout: SimDuration::from_millis(20),
            page_fault_prob: 3e-6,
            speedup_scale: 1.0,
            queue_policy_override: None,
            instances_per_accel: 1,
            sample_latencies: false,
            audit: cfg!(any(debug_assertions, feature = "audit")),
            telemetry: cfg!(feature = "telemetry"),
            telemetry_capacity: 1 << 18,
            telemetry_sample: SimDuration::from_micros(50),
        }
    }

    /// The chiplet grouping of accelerator units for `self.chiplets`
    /// (Fig 18's organizations); unit IDs are [`AccelKind::id`]s.
    ///
    /// # Panics
    ///
    /// Panics if `chiplets` is not one of 1, 2, 3, 4, 6.
    pub fn chiplet_groups(&self) -> Vec<Vec<u8>> {
        use AccelKind::*;
        let ids = |kinds: &[AccelKind]| kinds.iter().map(|k| k.id()).collect::<Vec<_>>();
        match self.chiplets {
            1 => vec![ids(&[Ldb, Tcp, Encr, Decr, Rpc, Ser, Dser, Cmp, Dcmp])],
            2 => vec![
                ids(&[Ldb]),
                ids(&[Tcp, Encr, Decr, Rpc, Ser, Dser, Cmp, Dcmp]),
            ],
            3 => vec![
                ids(&[Ldb]),
                ids(&[Tcp, Encr, Decr]),
                ids(&[Rpc, Ser, Dser, Cmp, Dcmp]),
            ],
            4 => vec![
                ids(&[Ldb]),
                ids(&[Tcp, Encr, Decr]),
                ids(&[Rpc, Ser, Dser]),
                ids(&[Cmp, Dcmp]),
            ],
            6 => vec![
                ids(&[Ldb]),
                ids(&[Tcp]),
                ids(&[Encr, Decr]),
                ids(&[Rpc]),
                ids(&[Ser, Dser]),
                ids(&[Cmp, Dcmp]),
            ],
            n => panic!("unsupported chiplet count {n} (use 1, 2, 3, 4, or 6)"),
        }
    }
}

/// One request arrival: when, which service, and the sampled program.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Arrival instant.
    pub at: SimTime,
    /// The service invoked.
    pub service: ServiceId,
    /// The invoking tenant.
    pub tenant: TenantId,
    /// The sampled execution.
    pub program: Program,
}

/// Generates open-loop Poisson arrivals for a service mix.
///
/// `rps_per_service` is the offered load of *each* service.
pub fn poisson_arrivals(
    services: &[ServiceSpec],
    lib: &TraceLibrary,
    timing: &ServiceTimeModel,
    rps_per_service: f64,
    duration: SimDuration,
    seed: u64,
) -> Vec<Arrival> {
    let mut master = SimRng::seed(seed);
    let mut arrivals = Vec::new();
    let mut counter = 0u64;
    for (idx, svc) in services.iter().enumerate() {
        let mut rng = master.fork(idx as u64);
        let mean_gap = 1e6 / rps_per_service; // µs
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_micros_f64(rng.exponential(mean_gap));
            if t - SimTime::ZERO >= duration {
                break;
            }
            counter += 1;
            // Buffers come from a recycled arena pool (RPC runtimes
            // reuse message buffers), so TLB entries stay useful
            // across requests.
            let buffer = (counter % BUFFER_POOL) << 24;
            arrivals.push(Arrival {
                at: t,
                service: ServiceId(idx),
                tenant: svc.tenant,
                program: svc.sample(lib, timing, &mut rng, buffer),
            });
        }
    }
    arrivals.sort_by_key(|a| a.at);
    arrivals
}

/// Number of distinct payload arenas the runtime recycles buffers
/// through (RPC runtimes reuse message buffers, so accelerator TLB
/// entries stay useful across requests).
pub const BUFFER_POOL: u64 = 64;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[doc(hidden)]
pub struct CallAddr {
    req: u32,
    step: u8,
    par: u8,
    seg: u8,
    hop: u8,
}

impl CallAddr {
    fn tag(self) -> u64 {
        ((self.req as u64) << 32)
            | ((self.step as u64) << 24)
            | ((self.par as u64) << 16)
            | ((self.seg as u64) << 8)
            | self.hop as u64
    }

    fn from_tag(tag: u64) -> Self {
        CallAddr {
            req: (tag >> 32) as u32,
            step: (tag >> 24) as u8,
            par: (tag >> 16) as u8,
            seg: (tag >> 8) as u8,
            hop: tag as u8,
        }
    }
}

/// Machine events (an implementation detail exposed only because
/// [`Machine`] implements [`Model`]).
#[derive(Clone, Debug)]
#[doc(hidden)]
pub enum Ev {
    /// The next arrival (index into the arrival list) lands.
    Arrive(u32),
    /// Begin the request's current program step.
    StartStep(u32),
    /// An app-logic stage finished on a core.
    AppDone(u32),
    /// A payload landed in an accelerator's input queue.
    HopArrive(CallAddr),
    /// Retry a tenant-throttled trace initiation.
    HopArriveRetry(CallAddr),
    /// A remote response arrived under Non-acc (next segment runs on a
    /// core).
    ExternalArriveCpu(CallAddr),
    /// A PE finished computing a hop.
    PeDone {
        addr: CallAddr,
        accel: u8,
        pe: u8,
        busy_ps: u64,
    },
    /// Try to start queued work on an accelerator.
    TryStart(u8),
    /// A remote response arrived, triggering the chained segment.
    ExternalArrive(CallAddr),
    /// A trace call completed (final notification delivered).
    CallDone {
        req: u32,
        step: u8,
        par: u8,
        error: bool,
    },
    /// A CPU fallback finished executing the segment remainder.
    FallbackDone(CallAddr),
    /// A TCP response timeout fired (§IV-B).
    Timeout { req: u32, step: u8, par: u8 },
}

#[derive(Debug)]
struct RequestState {
    service: ServiceId,
    tenant: TenantId,
    arrival: SimTime,
    measured: bool,
    program: Program,
    step: usize,
    pending_calls: u32,
    /// Trace calls currently holding a per-tenant slot. Unlike
    /// `pending_calls` (which only counts the current step), this spans
    /// the whole request so termination can release slots still held by
    /// in-flight calls (e.g. siblings of a timed-out await).
    active_calls: u32,
    deadline: Option<SimTime>,
    done: bool,
    error: bool,
}

/// A job waiting in RELIEF's single shared queue.
#[derive(Clone, Debug)]
struct SharedJob {
    entry: QueueEntry,
    kind: AccelKind,
}

/// Telemetry capture state, boxed behind an `Option` so the disabled
/// hot path pays one `None` check per emission site.
struct TelState {
    sink: Telemetry,
    sampler: Sampler,
    /// Cumulative per-station busy picoseconds at the previous sample,
    /// differenced into windowed utilization.
    prev_busy: Vec<u64>,
    prev_at: SimTime,
}

/// The simulated server.
pub struct Machine {
    cfg: MachineConfig,
    timing: ServiceTimeModel,
    lib: TraceLibrary,
    net: Interconnect,
    dma: DmaPool,
    bus: MemoryBus,
    cores: ServerPool,
    manager: ServerPool,
    accels: Vec<Accelerator>,
    shared_queue: VecDeque<SharedJob>,
    requests: Vec<Option<RequestState>>,
    arrivals: Vec<Option<Arrival>>,
    stats: Vec<ServiceStats>,
    totals: MachineTotals,
    energy: EnergyMeter,
    rng: SimRng,
    /// In-flight call count per tenant, dense-indexed by `TenantId.0`
    /// (tenant ids are small sequential u16s, so a Vec lookup beats a
    /// HashMap probe in the dispatch inner loop). Grown on demand.
    tenant_active: Vec<u32>,
    warmup_end: SimTime,
    end: SimTime,
    app_factor: f64,
    live: u64,
    auditor: Option<crate::audit::Auditor>,
    tel: Option<Box<TelState>>,
}

impl Machine {
    /// Builds the machine for a workload of `service_names.len()`
    /// services.
    pub fn new(
        cfg: MachineConfig,
        service_names: Vec<String>,
        arrivals: Vec<Arrival>,
        end: SimTime,
        seed: u64,
    ) -> Self {
        cfg.arch.validate().expect("invalid architecture config");
        let mut timing = ServiceTimeModel::calibrated(cfg.arch.core_clock);
        timing.set_speedup_scale(cfg.speedup_scale);
        timing.set_tax_speed_factor(cfg.arch.generation.tax_factor());
        let app_factor = cfg.arch.generation.app_logic_factor();

        let layout = ChipletLayout::new(cfg.chiplet_groups(), AccelKind::COUNT as u8);
        let net = Interconnect::new(&cfg.arch, layout);
        let dma = DmaPool::new(&cfg.arch);
        let bus = MemoryBus::new(&cfg.arch);
        let cores = ServerPool::new(cfg.arch.cores);
        let manager = ServerPool::new(1);
        let queue_policy = cfg
            .queue_policy_override
            .unwrap_or_else(|| cfg.policy.queue_policy());
        let instances = cfg.instances_per_accel;
        assert!(
            (1..=16).contains(&instances),
            "instances_per_accel must be within 1..=16"
        );
        let accels: Vec<Accelerator> = AccelKind::ALL
            .iter()
            .flat_map(|&k| {
                // Instances of a kind share the kind's mesh placement.
                (0..instances).map(move |_| k)
            })
            .map(|k| Accelerator::new(k, UnitId(k.id()), &cfg.arch, queue_policy))
            .collect();
        let stats = service_names.iter().map(ServiceStats::new).collect();
        let energy = EnergyMeter::new(EnergyModel::mcpat_like(), cfg.arch.cores, AccelKind::COUNT);
        let requests = (0..arrivals.len()).map(|_| None).collect();
        let warmup_end = SimTime::ZERO + cfg.warmup;
        let lib = TraceLibrary::standard();
        let auditor = cfg
            .audit
            .then(|| crate::audit::Auditor::new(arrivals.len(), lib.atm()));
        let tel = cfg.telemetry.then(|| {
            let mut sink = Telemetry::new(cfg.telemetry_capacity);
            for (i, acc) in accels.iter().enumerate() {
                sink.set_label(
                    CompId::accelerator(i as u16),
                    format!("{}#{}", acc.kind().name(), i % instances),
                );
            }
            sink.set_label(CompId::MACHINE, "machine");
            sink.set_label(CompId::DMA, "A-DMA");
            sink.set_label(CompId::MANAGER, "manager");
            sink.set_label(CompId::ATM, "ATM");
            let mut columns = Vec::new();
            for kind in AccelKind::ALL {
                columns.push(format!("util%:{}", kind.name()));
            }
            for kind in AccelKind::ALL {
                columns.push(format!("queue:{}", kind.name()));
            }
            columns.push("busy_dma".into());
            columns.push("tenant_slots".into());
            columns.push("live_reqs".into());
            Box::new(TelState {
                sink,
                sampler: Sampler::new(cfg.telemetry_sample, columns),
                prev_busy: vec![0; accels.len()],
                prev_at: SimTime::ZERO,
            })
        });
        Machine {
            cfg,
            timing,
            lib,
            net,
            dma,
            bus,
            cores,
            manager,
            accels,
            shared_queue: VecDeque::new(),
            requests,
            arrivals: arrivals.into_iter().map(Some).collect(),
            stats,
            totals: MachineTotals::default(),
            energy,
            rng: SimRng::seed(seed ^ 0xACCE1F10),
            tenant_active: Vec::new(),
            warmup_end,
            end,
            app_factor,
            live: 0,
            auditor,
            tel,
        }
    }

    /// Convenience runner: Poisson arrivals at `rps_per_service` for
    /// each service over `duration`, then a drain window.
    pub fn run_workload(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        rps_per_service: f64,
        duration: SimDuration,
        seed: u64,
    ) -> RunReport {
        let timing = {
            let mut t = ServiceTimeModel::calibrated(cfg.arch.core_clock);
            t.set_speedup_scale(cfg.speedup_scale);
            t
        };
        let lib = TraceLibrary::standard();
        let arrivals = poisson_arrivals(services, &lib, &timing, rps_per_service, duration, seed);
        Self::run_arrivals(cfg, services, arrivals, duration, seed)
    }

    /// Runs a pre-generated arrival list (for bursty trace-driven loads
    /// and for common-random-number comparisons across policies).
    pub fn run_arrivals(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        arrivals: Vec<Arrival>,
        duration: SimDuration,
        seed: u64,
    ) -> RunReport {
        let names = services.iter().map(|s| s.name.clone()).collect();
        let end = SimTime::ZERO + duration;
        let machine = Machine::new(cfg.clone(), names, arrivals, end, seed);
        let mut sim = Simulation::new(machine);
        // Pre-reserve the event heap for the steady-state population:
        // each in-flight request contributes a handful of pending
        // events, bounded by the arrival backlog. Keeps the hot
        // schedule path allocation-free.
        let backlog = sim.model().arrivals.len().clamp(256, 16_384);
        sim.queue_mut().reserve(backlog);
        if !sim.model().arrivals.is_empty() {
            let first = sim.model().arrivals[0]
                .as_ref()
                .expect("arrival present")
                .at;
            sim.queue_mut().schedule_at(first, Ev::Arrive(0));
        }
        // Generous drain: stragglers get 30 ms past the arrival window.
        let drain = end + SimDuration::from_millis(30);
        sim.run_until(drain);
        let now = sim.now();
        let clamped = sim.queue_mut().clamped();
        let mut report = sim.into_model().into_report(now, end);
        report.totals.clamped_events = clamped;
        report
    }

    fn into_report(mut self, now: SimTime, end: SimTime) -> RunReport {
        let n = self.cfg.instances_per_accel;
        for (i, acc) in self.accels.iter().enumerate() {
            let kind = i / n;
            self.totals.accel_utilization[kind] += acc.utilization(now.max(end)) / n as f64;
            self.totals.accel_jobs[kind] += acc.processed();
            self.totals.tlb[kind].0 += acc.tlb().hits();
            self.totals.tlb[kind].1 += acc.tlb().misses();
            self.totals.overflows += acc.input().overflow_count();
            self.totals.enqueue_rejections += acc.input().rejected_count();
            self.totals.tenant_wipes += acc.tenant_wipes();
        }
        self.totals.manager_jobs = self.manager.jobs();
        self.totals.dma_bytes = self.dma.bytes_moved();
        self.totals.atm_reads = self.lib.atm().reads();
        self.totals.energy = self.energy.report(now.max(end));
        let audit = match self.auditor.take() {
            Some(mut aud) => {
                let offered: u64 = self.stats.iter().map(|s| s.offered).sum();
                let completed: u64 = self.stats.iter().map(|s| s.completed).sum();
                aud.finish(now, self.live, &self.tenant_active, offered, completed);
                aud.into_report()
            }
            None => crate::audit::AuditReport::disabled(),
        };
        if cfg!(debug_assertions) && !audit.is_clean() {
            panic!(
                "invariant audit failed ({} violations): {:#?}",
                audit.violation_count, audit.violations
            );
        }
        let telemetry = match self.tel.take() {
            Some(t) => {
                let t = *t;
                t.sink.into_report_with_samples(t.sampler)
            }
            None => TelemetryReport::disabled(),
        };
        RunReport {
            per_service: self.stats,
            totals: self.totals,
            measured: end.saturating_since(self.warmup_end),
            ended_at: now,
            audit,
            telemetry,
        }
    }

    // ----- helpers -----

    fn endpoint(kind: AccelKind) -> Endpoint {
        Endpoint::Unit(UnitId(kind.id()))
    }

    /// Flat station indices of a kind's instances.
    fn stations_of(&self, kind: AccelKind) -> std::ops::Range<usize> {
        let n = self.cfg.instances_per_accel;
        let base = kind.id() as usize * n;
        base..base + n
    }

    /// The least-backlogged station of a kind (hardware routes new work
    /// to the emptiest instance).
    fn least_loaded_station(&self, kind: AccelKind) -> usize {
        self.stations_of(kind)
            .min_by_key(|&i| self.accels[i].input().backlog())
            .expect("at least one instance")
    }

    fn req(&self, idx: u32) -> &RequestState {
        self.requests[idx as usize].as_ref().expect("request alive")
    }

    /// True when the request already terminated — either still parked
    /// with `done` set or freed entirely. Every handler reachable from
    /// a stale event (a response landing after a timeout killed the
    /// request) must check this before touching request state:
    /// termination frees the slot, so `req()` would panic.
    fn req_gone(&self, idx: u32) -> bool {
        self.requests[idx as usize].as_ref().is_none_or(|r| r.done)
    }

    fn req_mut(&mut self, idx: u32) -> &mut RequestState {
        self.requests[idx as usize].as_mut().expect("request alive")
    }

    fn call_of(program: &Program, step: u8, par: u8) -> &TraceCall {
        match &program.steps[step as usize] {
            Step::Call(c) => c,
            Step::Parallel(cs) => &cs[par as usize],
            Step::Cpu { .. } => panic!("addressed a CPU step as a call"),
        }
    }

    fn charge(&mut self, req: u32, f: impl FnOnce(&mut crate::stats::Breakdown)) {
        let (measured, svc) = {
            let r = self.req(req);
            (r.measured, r.service.0)
        };
        if measured {
            f(&mut self.stats[svc].breakdown);
        }
    }

    fn dispatcher_time(&self, instrs: u32) -> SimDuration {
        SimDuration::from_picos(self.cfg.arch.dispatcher_cycle.as_picos() * instrs as u64)
    }

    // ----- telemetry hooks -----

    #[inline]
    fn tel_span(
        &mut self,
        at: SimTime,
        comp: CompId,
        name: &'static str,
        dur: SimDuration,
        req: u32,
        arg: u64,
    ) {
        if let Some(t) = self.tel.as_mut() {
            t.sink.span(at, comp, name, dur, Some(req), arg);
        }
    }

    #[inline]
    fn tel_instant(&mut self, at: SimTime, comp: CompId, name: &'static str, req: u32) {
        if let Some(t) = self.tel.as_mut() {
            t.sink.instant(at, comp, name, Some(req));
        }
    }

    /// Captures one row of the telemetry time series when a sampling
    /// window has elapsed. Called from `handle` on event delivery (not
    /// from scheduled events), so enabling telemetry cannot change the
    /// model's event sequence — determinism is preserved bit-for-bit.
    fn sample_telemetry(&mut self, now: SimTime) {
        let Machine {
            tel,
            accels,
            dma,
            cfg,
            tenant_active,
            live,
            ..
        } = self;
        let Some(t) = tel.as_mut() else { return };
        if !t.sampler.due(now) {
            return;
        }
        let window = now.saturating_since(t.prev_at).as_picos();
        let instances = cfg.instances_per_accel;
        let mut values = Vec::with_capacity(t.sampler.columns().len());
        // Windowed per-kind PE utilization, in percent.
        for kind in 0..AccelKind::COUNT {
            let mut delta = 0u64;
            let mut pes = 0u64;
            let range = kind * instances..(kind + 1) * instances;
            for (acc, prev) in accels[range.clone()].iter().zip(&mut t.prev_busy[range]) {
                let busy = acc.busy_time().as_picos();
                delta += busy - *prev;
                *prev = busy;
                pes += acc.pe_count() as u64;
            }
            values.push((delta * 100).checked_div(window * pes).unwrap_or(0));
        }
        // Instantaneous per-kind input-queue occupancy (incl. overflow).
        for kind in 0..AccelKind::COUNT {
            let backlog: u64 = (kind * instances..(kind + 1) * instances)
                .map(|i| accels[i].input().backlog() as u64)
                .sum();
            values.push(backlog);
        }
        values.push(dma.busy_engines(now) as u64);
        values.push(tenant_active.iter().map(|&n| n as u64).sum());
        values.push(*live);
        // Mirror the headline series as counter records so the Chrome
        // timeline carries them too.
        let occupancy: u64 = values[AccelKind::COUNT..2 * AccelKind::COUNT].iter().sum();
        t.sink.counter(now, CompId::MACHINE, "live_reqs", *live);
        t.sink.counter(
            now,
            CompId::DMA,
            "busy_engines",
            values[2 * AccelKind::COUNT],
        );
        t.sink
            .counter(now, CompId::MACHINE, "queued_entries", occupancy);
        t.sampler.push_row(now, values);
        t.prev_at = now;
    }

    // ----- event handlers -----

    fn on_arrive(&mut self, now: SimTime, idx: u32, queue: &mut EventQueue<Ev>) {
        // Chain the next arrival.
        if (idx as usize + 1) < self.arrivals.len() {
            let at = self.arrivals[idx as usize + 1]
                .as_ref()
                .expect("arrival present")
                .at;
            queue.schedule_at(at, Ev::Arrive(idx + 1));
        }
        let arrival = self.arrivals[idx as usize]
            .take()
            .expect("arrival taken once");
        let measured = now >= self.warmup_end && now < self.end;
        let deadline = arrival.program.slo_slack.map(|slack| {
            let est = self.unloaded_estimate(&arrival.program);
            now + est * slack
        });
        if measured {
            self.stats[arrival.service.0].offered += 1;
        }
        self.requests[idx as usize] = Some(RequestState {
            service: arrival.service,
            tenant: arrival.tenant,
            arrival: now,
            measured,
            program: arrival.program,
            step: 0,
            pending_calls: 0,
            active_calls: 0,
            deadline,
            done: false,
            error: false,
        });
        self.live += 1;
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_admit(now, idx, measured);
        }
        self.tel_instant(now, CompId::MACHINE, "arrive", idx);
        queue.schedule(SimDuration::ZERO, Ev::StartStep(idx));
    }

    /// Unloaded execution estimate for SLO deadlines: accel compute +
    /// app cycles + external waits.
    fn unloaded_estimate(&self, program: &Program) -> SimDuration {
        let mut total = self.cfg.arch.cycles(program.app_cycles() / self.app_factor);
        for call in program.calls() {
            for seg in &call.segments {
                for hop in &seg.hops {
                    total += self.timing.accel_time(hop.kind, hop.in_bytes);
                }
                if let SegmentEnd::AwaitResponse { external } = seg.end {
                    total += external;
                }
            }
        }
        total
    }

    fn on_start_step(&mut self, now: SimTime, req: u32, queue: &mut EventQueue<Ev>) {
        let (step_idx, done) = {
            let r = self.req(req);
            (r.step, r.step >= r.program.steps.len())
        };
        if done {
            self.complete_request(now, req);
            return;
        }
        enum Plan {
            Cpu(f64),
            Calls(u8),
        }
        let plan = match &self.req(req).program.steps[step_idx] {
            Step::Cpu { cycles } => Plan::Cpu(*cycles),
            Step::Call(_) => Plan::Calls(1),
            Step::Parallel(cs) => Plan::Calls(cs.len() as u8),
        };
        match plan {
            Plan::Cpu(cycles) => {
                let service = self.cfg.arch.cycles(cycles / self.app_factor);
                let booking = self.cores.acquire(now, service);
                self.energy.add_core_busy(service);
                self.charge(req, |b| b.cpu += service);
                queue.schedule_at(booking.finish, Ev::AppDone(req));
            }
            Plan::Calls(n) => {
                self.req_mut(req).pending_calls = n as u32;
                for par in 0..n {
                    self.start_call(
                        now,
                        CallAddr {
                            req,
                            step: step_idx as u8,
                            par,
                            seg: 0,
                            hop: 0,
                        },
                        queue,
                    );
                }
            }
        }
    }

    fn on_app_done(&mut self, _now: SimTime, req: u32, queue: &mut EventQueue<Ev>) {
        self.req_mut(req).step += 1;
        queue.schedule(SimDuration::ZERO, Ev::StartStep(req));
    }

    fn start_call(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        // A throttled retry may land after a timeout terminated the
        // request; there is nothing left to start.
        if self.req_gone(addr.req) {
            return;
        }
        // Per-tenant trace cap (§IV-D): over-cap initiations are
        // throttled by retrying shortly (the VMM delays the Enqueue).
        let tenant = self.req(addr.req).tenant;
        let idx = tenant.0 as usize;
        let active = self.tenant_active.get(idx).copied().unwrap_or(0);
        if active as usize >= self.cfg.tenant_cap {
            self.totals.tenant_throttled += 1;
            self.tel_instant(now, CompId::MACHINE, "tenant_throttle", addr.req);
            queue.schedule(SimDuration::from_micros(5), Ev::HopArriveRetry(addr));
            return;
        }
        if idx >= self.tenant_active.len() {
            self.tenant_active.resize(idx + 1, 0);
        }
        self.tenant_active[idx] += 1;
        self.req_mut(addr.req).active_calls += 1;
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_call_start(now);
        }

        let entry_is_network = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            call.segments[0].entry_is_network
        };
        if self.cfg.policy == Policy::NonAcc {
            self.start_segment_on_cpu(now, addr, queue);
            return;
        }
        if entry_is_network {
            // The message lands at TCP directly; no core submission.
            queue.schedule(SimDuration::ZERO, Ev::HopArrive(addr));
        } else {
            // The core prepares and submits the trace (Enqueue + A-DMA
            // programming for AccelFlow; heavier software paths for the
            // baselines).
            let submit = match self.cfg.policy {
                Policy::AccelFlow
                | Policy::AccelFlowDeadline
                | Policy::Direct
                | Policy::CntrFlow => self.cfg.arch.cycles(self.cfg.arch.enqueue_cycles),
                Policy::Ideal => SimDuration::ZERO,
                Policy::Cohort => self.cfg.arch.cohort_queue_overhead,
                _ => self.cfg.arch.cpu_submit_overhead,
            };
            let booking = if submit.is_zero() {
                None
            } else {
                Some(self.cores.acquire(now, submit))
            };
            if let Some(b) = &booking {
                self.energy.add_core_busy(submit);
                self.charge(addr.req, |bd| bd.orchestration += submit);
                let _ = b;
            }
            let start = booking.map(|b| b.finish).unwrap_or(now);
            // DMA the payload from the core into the first accelerator.
            let (first_kind, bytes) = {
                let r = self.req(addr.req);
                let call = Self::call_of(&r.program, addr.step, addr.par);
                let hop = &call.segments[0].hops[0];
                (hop.kind, hop.in_bytes)
            };
            let booking = self.dma.transfer(
                start,
                &self.net,
                Endpoint::Cores,
                Self::endpoint(first_kind),
                bytes,
            );
            self.energy.add_dma_bytes(bytes);
            self.energy.add_noc_bytes(bytes);
            let comm = booking.finish.saturating_since(start);
            self.charge(addr.req, |bd| bd.communication += comm);
            self.tel_span(
                booking.start,
                CompId::DMA,
                "dma",
                booking.finish.saturating_since(booking.start),
                addr.req,
                bytes,
            );
            queue.schedule_at(booking.finish, Ev::HopArrive(addr));
        }
    }

    /// Non-acc path: the whole segment is CPU work.
    fn start_segment_on_cpu(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        // An external response may arrive after a timeout terminated
        // the request.
        if self.req_gone(addr.req) {
            return;
        }
        let work = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            seg.hops
                .iter()
                .map(|h| self.timing.cpu_time(h.kind, h.in_bytes))
                .sum::<SimDuration>()
        };
        let booking = self.cores.acquire(now, work);
        self.energy.add_core_busy(work);
        self.charge(addr.req, |b| b.cpu += work);
        queue.schedule_at(booking.finish, Ev::FallbackDone(addr));
    }

    fn on_hop_arrive(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        if self.req_gone(addr.req) {
            return; // e.g. a response arriving after a timeout
        }
        let (kind, entry) = self.make_entry(now, addr);
        if self.cfg.policy.single_shared_queue() {
            self.shared_queue.push_back(SharedJob { entry, kind });
            self.energy.add_queue_accesses(1);
            self.dispatch_shared(now, queue);
            return;
        }
        let from_core = addr.hop == 0 && addr.seg == 0 && {
            let r = self.req(addr.req);
            !Self::call_of(&r.program, addr.step, addr.par).segments[0].entry_is_network
        };
        let (station, outcome) = if from_core {
            // The Enqueue instruction errors on a full queue; the core
            // retries each instance of the type before falling back.
            let mut entry = Some(entry);
            let mut outcome = PushOutcome::Rejected;
            let mut station = self.stations_of(kind).start;
            for i in self.stations_of(kind) {
                match self.accels[i].admit_from_core(entry.take().expect("entry present")) {
                    Ok(()) => {
                        outcome = PushOutcome::Accepted;
                        station = i;
                        break;
                    }
                    Err(back) => entry = Some(back),
                }
            }
            (station, outcome)
        } else {
            let station = self.least_loaded_station(kind);
            (station, self.accels[station].admit_from_dispatcher(entry))
        };
        self.energy.add_queue_accesses(1);
        match outcome {
            PushOutcome::Accepted | PushOutcome::Overflowed => {
                queue.schedule(SimDuration::ZERO, Ev::TryStart(station as u8));
            }
            PushOutcome::Rejected => {
                // Starvation/deadlock escape (§IV-A): fall back to CPU
                // for the rest of the segment.
                self.totals.fallbacks += 1;
                self.tel_instant(now, CompId::MACHINE, "fallback", addr.req);
                self.fallback_segment(now, addr, queue);
            }
        }
    }

    fn make_entry(&self, now: SimTime, addr: CallAddr) -> (AccelKind, QueueEntry) {
        let r = self.req(addr.req);
        let call = Self::call_of(&r.program, addr.step, addr.par);
        let seg = &call.segments[addr.seg as usize];
        let hop = &seg.hops[addr.hop as usize];
        let entry = QueueEntry {
            request: RequestId(addr.req as u64),
            tenant: r.tenant,
            trace: Arc::clone(&seg.trace),
            pm: hop.pm,
            data_bytes: hop.in_bytes,
            flags: seg.flags,
            vaddr: call.vaddr + ((addr.seg as u64) << 12),
            deadline: r.deadline,
            priority: r.program.priority,
            enqueued_at: now,
            origin_core: 0,
            tag: addr.tag(),
        };
        (hop.kind, entry)
    }

    /// How far RELIEF's manager can look past the head of its shared
    /// queue for a runnable job. The manager schedules out of one
    /// queue but is not strictly FIFO-blocked (otherwise Fig 13's
    /// PerAccTypeQ step would be worth far more than the paper's 6.8%);
    /// a bounded scan window models its reordering ability.
    const SHARED_QUEUE_WINDOW: usize = 12;

    /// RELIEF base: one shared queue for all accelerator types, with
    /// bounded look-ahead (residual head-of-line blocking).
    fn dispatch_shared(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        loop {
            let pick = self
                .shared_queue
                .iter()
                .take(Self::SHARED_QUEUE_WINDOW)
                .position(|job| {
                    self.stations_of(job.kind)
                        .any(|i| self.accels[i].has_free_pe())
                });
            let Some(pos) = pick else { return };
            let job = self.shared_queue.remove(pos).expect("position exists");
            let idx = self
                .stations_of(job.kind)
                .find(|&i| self.accels[i].has_free_pe())
                .expect("checked a free PE exists");
            let admitted = self.accels[idx].admit_from_dispatcher(job.entry);
            debug_assert_ne!(
                admitted,
                PushOutcome::Rejected,
                "free-PE accel has queue space"
            );
            if let Some(started) = self.accels[idx].start_next(now) {
                self.begin_pe(now, idx, started, queue);
            }
        }
    }

    fn on_try_start(&mut self, now: SimTime, accel: u8, queue: &mut EventQueue<Ev>) {
        let idx = accel as usize;
        while let Some(started) = self.accels[idx].start_next(now) {
            self.begin_pe(now, idx, started, queue);
        }
    }

    fn begin_pe(
        &mut self,
        now: SimTime,
        accel_idx: usize,
        started: accelflow_accel::accelerator::StartedJob,
        queue: &mut EventQueue<Ev>,
    ) {
        let addr = CallAddr::from_tag(started.entry.tag);
        if self.req_gone(addr.req) {
            // Owner gave up (timeout); release the PE immediately.
            self.accels[accel_idx].complete(started.pe, SimDuration::ZERO);
            queue.schedule(SimDuration::ZERO, Ev::TryStart(accel_idx as u8));
            return;
        }
        let entry = &started.entry;
        let kind = self.accels[accel_idx].kind();
        let inline = entry.inline_bytes(self.cfg.arch.queue_entry_inline_bytes);
        let spilled = entry.spilled_bytes(self.cfg.arch.queue_entry_inline_bytes);

        // 1. Load inputs into the scratchpad.
        let mut load = self.cfg.arch.queue_to_scratchpad(inline);
        // 2. Memory-Pointer data comes through the coherent hierarchy.
        if spilled > 0 {
            load += self.cfg.arch.payload_access(spilled);
            let dram = spilled / 2; // coherent read, partially cached
            self.bus.stream(now, dram);
            // The Direct/CntrFlow ablation rungs bounce Memory-Pointer
            // payloads to the manager (the final AccelFlow rung moves
            // this into the dispatchers); RELIEF's own manager handles
            // data movement as part of its normal scheduling loop.
            if self.cfg.policy.uses_manager() && !self.cfg.policy.transforms_in_dispatcher() {
                // RELIEF handles Memory-Pointer data inside its normal
                // (pipelined) scheduling loop; in the Direct/CntrFlow
                // rungs the dispatcher must *fall back* to the manager,
                // which costs a full interrupt round.
                let occupancy = if self.cfg.policy.direct_transfers() {
                    self.cfg.arch.manager_fallback_time
                } else {
                    self.cfg.arch.manager_service_time
                };
                let b = self
                    .manager
                    .acquire(now + self.cfg.arch.manager_latency, occupancy);
                let wait = b.finish.saturating_since(now);
                self.charge(addr.req, |bd| bd.orchestration += wait);
                self.tel_span(b.start, CompId::MANAGER, "manager", occupancy, addr.req, 0);
                load += wait;
            }
        }
        // 3. Address translation through the accelerator TLB/IOMMU.
        let pid = ProcessId(entry.tenant.0 as u32);
        let (tlb_lat, _misses) =
            self.accels[accel_idx]
                .tlb_mut()
                .translate_range(pid, entry.vaddr, entry.data_bytes);
        // 4. Tenant isolation: wipe PE state between tenants (§IV-D).
        let wipe = if started.tenant_wipe {
            self.cfg
                .arch
                .queue_to_scratchpad(self.cfg.arch.scratchpad_bytes)
        } else {
            SimDuration::ZERO
        };
        // 5. The compute phase C/S.
        let compute = self.timing.accel_time(kind, entry.data_bytes);

        // Rare page fault: the accelerator stops and the OS handles it.
        let fault = if self.rng.chance(self.cfg.page_fault_prob) {
            self.totals.page_faults += 1;
            let b = self.cores.acquire(now, self.cfg.arch.exception_handling);
            self.energy.add_core_busy(self.cfg.arch.exception_handling);
            b.finish.saturating_since(now)
        } else {
            SimDuration::ZERO
        };

        let busy = load + tlb_lat + wipe + compute + fault;
        self.energy.add_accel_busy(busy);
        self.charge(addr.req, |b| {
            b.accel += compute;
            b.communication += load + tlb_lat;
            b.orchestration += wipe + fault;
        });
        let station = CompId::accelerator(accel_idx as u16);
        self.tel_span(
            now,
            station,
            "pe",
            busy,
            addr.req,
            started.queueing.as_picos(),
        );
        if started.tenant_wipe {
            self.tel_instant(now, station, "tenant_wipe", addr.req);
        }
        queue.schedule(
            busy,
            Ev::PeDone {
                addr,
                accel: accel_idx as u8,
                pe: started.pe as u8,
                busy_ps: busy.as_picos(),
            },
        );
    }

    fn on_pe_done(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        pe: u8,
        busy_ps: u64,
        queue: &mut EventQueue<Ev>,
    ) {
        self.accels[accel as usize].complete(pe as usize, SimDuration::from_picos(busy_ps));
        // Free PE: more queued work may start.
        if self.cfg.policy.single_shared_queue() {
            self.dispatch_shared(now, queue);
        }
        queue.schedule(SimDuration::ZERO, Ev::TryStart(accel));
        if self.req_gone(addr.req) {
            return;
        }
        self.after_hop(now, addr, accel, queue);
    }

    /// The policy-defining transition after a completed hop. `accel` is
    /// the station whose output dispatcher runs the transition (only
    /// telemetry attribution uses it).
    fn after_hop(&mut self, now: SimTime, addr: CallAddr, accel: u8, queue: &mut EventQueue<Ev>) {
        #[derive(Clone, Copy)]
        struct HopInfo {
            kind: AccelKind,
            out_bytes: u64,
            glue_instrs: u32,
            branches_after: u8,
            transform_after: bool,
            fork_after: bool,
            next_kind: Option<AccelKind>,
            end: SegmentEnd,
            has_next_segment: bool,
        }
        let info = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            let hop = &seg.hops[addr.hop as usize];
            let is_last = addr.hop as usize + 1 == seg.hops.len();
            HopInfo {
                kind: hop.kind,
                out_bytes: hop.out_bytes,
                glue_instrs: hop.glue_instrs,
                branches_after: hop.branches_after,
                transform_after: hop.transform_after,
                fork_after: hop.fork_after,
                next_kind: if is_last {
                    None
                } else {
                    Some(seg.hops[addr.hop as usize + 1].kind)
                },
                end: seg.end,
                has_next_segment: (addr.seg as usize + 1) < call.segments.len(),
            }
        };

        let policy = self.cfg.policy;
        let mut t = now;

        // --- Orchestration cost of the transition ---
        match policy {
            Policy::Ideal => {}
            Policy::AccelFlow | Policy::AccelFlowDeadline | Policy::Direct | Policy::CntrFlow => {
                // Output dispatcher executes the glue instructions.
                let td = self.dispatcher_time(info.glue_instrs);
                self.totals.dispatcher_instrs += info.glue_instrs as u64;
                self.totals.dispatches += 1;
                self.energy.add_dispatcher_instrs(info.glue_instrs as u64);
                self.charge(addr.req, |b| b.orchestration += td);
                self.tel_span(
                    t,
                    CompId::accelerator(accel as u16),
                    "glue",
                    td,
                    addr.req,
                    info.glue_instrs as u64,
                );
                t += td;
                // Ablation rungs bounce unresolved work to the manager.
                let needs_manager_branch =
                    info.branches_after > 0 && !policy.branches_in_dispatcher();
                let needs_manager_transform =
                    info.transform_after && !policy.transforms_in_dispatcher();
                if needs_manager_branch || needs_manager_transform {
                    let after_irq = t + self.cfg.arch.manager_latency;
                    let b = self
                        .manager
                        .acquire(after_irq, self.cfg.arch.manager_fallback_time);
                    let spent = b.finish.saturating_since(t);
                    self.charge(addr.req, |bd| bd.orchestration += spent);
                    self.tel_span(
                        b.start,
                        CompId::MANAGER,
                        "manager",
                        self.cfg.arch.manager_fallback_time,
                        addr.req,
                        0,
                    );
                    t = b.finish;
                }
            }
            Policy::Relief | Policy::ReliefPerTypeQ => {
                // Completion interrupts the manager: interrupt-delivery
                // latency plus serialized decision occupancy (§VII-A1).
                let after_irq = t + self.cfg.arch.manager_latency;
                let b = self
                    .manager
                    .acquire(after_irq, self.cfg.arch.manager_service_time);
                let spent = b.finish.saturating_since(t);
                self.charge(addr.req, |bd| bd.orchestration += spent);
                self.totals.manager_busy += self.cfg.arch.manager_service_time;
                self.tel_span(
                    b.start,
                    CompId::MANAGER,
                    "manager",
                    self.cfg.arch.manager_service_time,
                    addr.req,
                    0,
                );
                t = b.finish;
            }
            Policy::CpuCentric => {
                // Completion interrupts the originating core, which
                // then submits the next invocation.
                let overhead =
                    self.cfg.arch.cpu_interrupt_overhead + self.cfg.arch.cpu_submit_overhead;
                let b = self.cores.acquire(t, overhead);
                self.energy.add_core_busy(overhead);
                let spent = b.finish.saturating_since(t);
                self.charge(addr.req, |bd| bd.orchestration += spent);
                t = b.finish;
            }
            Policy::Cohort => {
                let linked = info
                    .next_kind
                    .map(|n| Policy::cohort_linked(info.kind, n))
                    .unwrap_or(false);
                if linked {
                    // Producer/consumer software queue in the LLC.
                    let hand = self.cfg.arch.cycles(2.0 * self.cfg.arch.llc_latency_cycles);
                    self.charge(addr.req, |bd| bd.orchestration += hand);
                    t += hand;
                } else {
                    // Unlinked hops fall back to core orchestration
                    // (Cohort "otherwise relies on the cores"): the
                    // core polls the software queue, runs the glue, and
                    // resubmits — interrupt-free but the same software
                    // path as CPU-Centric minus the interrupt entry.
                    let overhead =
                        self.cfg.arch.cohort_queue_overhead + self.cfg.arch.cpu_submit_overhead;
                    let b = self.cores.acquire(t, overhead);
                    self.energy.add_core_busy(overhead);
                    let spent = b.finish.saturating_since(t);
                    self.charge(addr.req, |bd| bd.orchestration += spent);
                    t = b.finish;
                }
            }
            Policy::NonAcc => unreachable!("Non-acc runs no accelerator hops"),
        }

        // --- Fork a result copy to the CPU (T6), in parallel ---
        if info.fork_after {
            let notify = self.cfg.arch.notification_latency();
            self.charge(addr.req, |b| b.communication += notify);
            self.energy.add_noc_bytes(info.out_bytes);
        }

        // --- Move the payload to its next station ---
        if let Some(next) = info.next_kind {
            let next_addr = CallAddr {
                hop: addr.hop + 1,
                ..addr
            };
            let from = Self::endpoint(info.kind);
            let to = Self::endpoint(next);
            let arrive = match policy {
                Policy::Ideal => t + self.net.transfer_time(from, to, info.out_bytes),
                Policy::CpuCentric | Policy::Cohort
                    if !Policy::cohort_linked(info.kind, next) || policy == Policy::CpuCentric =>
                {
                    // Data staged through the core's memory via the
                    // coherent hierarchy (these designs do not use the
                    // A-DMA engines): two network legs plus the cache
                    // access, pure latency on the request.
                    let legs = self
                        .net
                        .transfer_time(from, Endpoint::Cores, info.out_bytes)
                        + self.net.transfer_time(Endpoint::Cores, to, info.out_bytes)
                        + self.cfg.arch.payload_access(info.out_bytes);
                    self.bus.stream(t, info.out_bytes / 2);
                    self.energy.add_noc_bytes(2 * info.out_bytes);
                    self.charge(addr.req, |b| b.communication += legs);
                    queue.schedule_at(t + legs, Ev::HopArrive(next_addr));
                    return;
                }
                _ => {
                    let booking = self.dma.transfer(t, &self.net, from, to, info.out_bytes);
                    self.energy.add_dma_bytes(info.out_bytes);
                    self.energy.add_noc_bytes(info.out_bytes);
                    let comm = booking.finish.saturating_since(t);
                    self.charge(addr.req, |b| b.communication += comm);
                    self.tel_span(
                        booking.start,
                        CompId::DMA,
                        "dma",
                        booking.finish.saturating_since(booking.start),
                        addr.req,
                        info.out_bytes,
                    );
                    booking.finish
                }
            };
            let comm = arrive.saturating_since(t);
            if policy == Policy::Ideal {
                self.charge(addr.req, |b| b.communication += comm);
            }
            queue.schedule_at(arrive, Ev::HopArrive(next_addr));
            return;
        }

        // --- End of segment ---
        match info.end {
            SegmentEnd::ToCpu => {
                // DMA the result to memory and notify the core.
                let service = self.cfg.arch.payload_access(info.out_bytes)
                    + self
                        .net
                        .transfer_time(Self::endpoint(info.kind), Endpoint::Cores, 0);
                let booking = self.dma.transfer_with_service(t, service, info.out_bytes);
                self.bus.stream(t, info.out_bytes / 2);
                self.energy.add_dma_bytes(info.out_bytes);
                self.tel_span(
                    booking.start,
                    CompId::DMA,
                    "dma",
                    booking.finish.saturating_since(booking.start),
                    addr.req,
                    info.out_bytes,
                );
                let notify = self.cfg.arch.notification_latency();
                let done_at = booking.finish + notify;
                let comm = done_at.saturating_since(t);
                self.charge(addr.req, |b| b.communication += comm);
                let error = {
                    let r = self.req(addr.req);
                    let call = Self::call_of(&r.program, addr.step, addr.par);
                    call.segments[addr.seg as usize].trace.name() == "report_error"
                };
                queue.schedule_at(
                    done_at,
                    Ev::CallDone {
                        req: addr.req,
                        step: addr.step,
                        par: addr.par,
                        error,
                    },
                );
            }
            SegmentEnd::Continue => {
                debug_assert!(info.has_next_segment, "Continue requires a next segment");
                // Split subtrace: the dispatcher reads the ATM and
                // forwards to the next segment's first accelerator.
                self.totals.atm_reads += 1;
                let _ = self.lib.atm_mut().load(accelflow_trace::atm::AtmAddr(0));
                self.tel_instant(t, CompId::ATM, "atm_read", addr.req);
                let t2 = t + self.cfg.arch.atm_read_latency;
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                queue.schedule_at(t2, Ev::HopArrive(next_addr));
            }
            SegmentEnd::AwaitResponse { external } => {
                debug_assert!(
                    info.has_next_segment,
                    "AwaitResponse requires a next segment"
                );
                // AccelFlow: the TCP dispatcher pre-loads the response
                // trace from the ATM (§IV-B). Baselines: the core will
                // re-orchestrate when the response interrupt arrives.
                if policy.direct_transfers() && policy != Policy::Ideal {
                    self.totals.atm_reads += 1;
                    let _ = self.lib.atm_mut().load(accelflow_trace::atm::AtmAddr(0));
                    self.tel_instant(t, CompId::ATM, "atm_read", addr.req);
                }
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                self.charge(addr.req, |b| b.external += external);
                self.tel_span(
                    t,
                    CompId::MACHINE,
                    "external",
                    external.min(self.cfg.tcp_timeout),
                    addr.req,
                    0,
                );
                if external >= self.cfg.tcp_timeout {
                    queue.schedule_at(
                        t + self.cfg.tcp_timeout,
                        Ev::Timeout {
                            req: addr.req,
                            step: addr.step,
                            par: addr.par,
                        },
                    );
                } else {
                    queue.schedule_at(t + external, Ev::ExternalArrive(next_addr));
                }
            }
        }
    }

    fn on_external_arrive(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        if self.req_gone(addr.req) {
            return;
        }
        // Response messages re-enter through TCP. In the baselines the
        // core must notice and resubmit the processing chain.
        if self.cfg.policy.core_orchestrated() || self.cfg.policy.uses_manager() {
            let submit = self.cfg.arch.cpu_submit_overhead;
            let b = self.cores.acquire(now, submit);
            self.energy.add_core_busy(submit);
            let spent = b.finish.saturating_since(now);
            self.charge(addr.req, |bd| bd.orchestration += spent);
            queue.schedule_at(b.finish, Ev::HopArrive(addr));
        } else {
            queue.schedule(SimDuration::ZERO, Ev::HopArrive(addr));
        }
    }

    /// CPU fallback: execute the rest of the segment in software.
    fn fallback_segment(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        let work = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            seg.hops[addr.hop as usize..]
                .iter()
                .map(|h| self.timing.cpu_time(h.kind, h.in_bytes))
                .sum::<SimDuration>()
        };
        let booking = self.cores.acquire(now, work);
        self.energy.add_core_busy(work);
        self.charge(addr.req, |b| b.cpu += work);
        queue.schedule_at(booking.finish, Ev::FallbackDone(addr));
    }

    fn on_fallback_done(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        if self.req_gone(addr.req) {
            return;
        }
        let (end, has_next, is_error) = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            (
                seg.end,
                (addr.seg as usize + 1) < call.segments.len(),
                seg.trace.name() == "report_error",
            )
        };
        match end {
            SegmentEnd::ToCpu => {
                queue.schedule(
                    SimDuration::ZERO,
                    Ev::CallDone {
                        req: addr.req,
                        step: addr.step,
                        par: addr.par,
                        error: is_error,
                    },
                );
            }
            SegmentEnd::Continue => {
                debug_assert!(has_next);
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                if self.cfg.policy == Policy::NonAcc {
                    self.start_segment_on_cpu(now, next_addr, queue);
                } else {
                    queue.schedule(SimDuration::ZERO, Ev::HopArrive(next_addr));
                }
            }
            SegmentEnd::AwaitResponse { external } => {
                debug_assert!(has_next);
                self.charge(addr.req, |b| b.external += external);
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                if external >= self.cfg.tcp_timeout {
                    queue.schedule_at(
                        now + self.cfg.tcp_timeout,
                        Ev::Timeout {
                            req: addr.req,
                            step: addr.step,
                            par: addr.par,
                        },
                    );
                } else if self.cfg.policy == Policy::NonAcc {
                    queue.schedule_at(now + external, Ev::ExternalArriveCpu(next_addr));
                } else {
                    queue.schedule_at(now + external, Ev::ExternalArrive(next_addr));
                }
            }
        }
    }

    fn on_call_done(&mut self, now: SimTime, req: u32, error: bool, queue: &mut EventQueue<Ev>) {
        if self.req_gone(req) {
            return;
        }
        // The core picks up the user-level notification.
        let pickup = self.cfg.arch.cycles(self.cfg.arch.pickup_cycles);
        self.cores.acquire(now, pickup);
        self.energy.add_core_busy(pickup);
        self.charge(req, |b| b.cpu += pickup);

        let tenant = self.req(req).tenant;
        if let Some(n) = self.tenant_active.get_mut(tenant.0 as usize) {
            *n = n.saturating_sub(1);
        }
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_call_end(now, 1);
        }
        let r = self.req_mut(req);
        r.active_calls = r.active_calls.saturating_sub(1);
        if error {
            r.error = true;
        }
        r.pending_calls = r.pending_calls.saturating_sub(1);
        if r.pending_calls == 0 {
            r.step += 1;
            queue.schedule(SimDuration::ZERO, Ev::StartStep(req));
        }
    }

    fn on_timeout(&mut self, now: SimTime, req: u32) {
        if self.req_gone(req) {
            return;
        }
        self.totals.tcp_timeouts += 1;
        self.tel_instant(now, CompId::MACHINE, "timeout", req);
        // The core terminates the request (§IV-B).
        let handling = self.cfg.arch.cycles(self.cfg.arch.pickup_cycles);
        self.cores.acquire(now, handling);
        self.energy.add_core_busy(handling);
        self.req_mut(req).error = true;
        self.complete_request(now, req);
    }

    fn complete_request(&mut self, now: SimTime, req: u32) {
        let r = self.requests[req as usize].as_mut().expect("request alive");
        if r.done {
            return;
        }
        r.done = true;
        self.live -= 1;
        // A timeout can terminate the request while sibling calls are
        // still in flight; their per-tenant slots must be released here
        // or the tenant cap throttles forever on leaked slots (the
        // stale CallDone events are dropped by the `req_gone` guards).
        let leftover = std::mem::take(&mut r.active_calls);
        let tenant = r.tenant;
        let measured = r.measured;
        if leftover > 0 {
            if let Some(n) = self.tenant_active.get_mut(tenant.0 as usize) {
                *n = n.saturating_sub(leftover);
            }
        }
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_terminate(now, req, measured);
            if leftover > 0 {
                aud.record_call_end(now, leftover);
            }
        }
        self.tel_instant(now, CompId::MACHINE, "done", req);
        let r = self.requests[req as usize].as_mut().expect("request alive");
        let latency = now.saturating_since(r.arrival);
        if r.measured {
            let svc = r.service.0;
            let missed = r.deadline.map(|d| now > d).unwrap_or(false);
            let error = r.error;
            // Fig 1 attribution: CPU-equivalent tax per kind + app.
            let mut tax = [SimDuration::ZERO; AccelKind::COUNT];
            for call in r.program.calls() {
                for seg in &call.segments {
                    for hop in &seg.hops {
                        tax[hop.kind.id() as usize] += self.timing.cpu_time(hop.kind, hop.in_bytes);
                    }
                }
            }
            let app = self
                .cfg
                .arch
                .cycles(r.program.app_cycles() / self.app_factor);
            let stats = &mut self.stats[svc];
            stats.latency.record_duration(latency);
            if self.cfg.sample_latencies {
                stats.samples.push((now, latency));
            }
            stats.completed += 1;
            if missed {
                stats.deadline_misses += 1;
            }
            if error {
                stats.errors += 1;
            }
            for (i, d) in tax.iter().enumerate() {
                stats.tax_by_kind[i] += *d;
            }
            stats.app_logic += app;
        }
        // Free the program's memory early; long runs hold many requests.
        self.requests[req as usize] = None;
    }

    // ----- invariant audit hooks -----

    fn audit_pre_event(&mut self, now: SimTime) {
        if let Some(aud) = self.auditor.as_mut() {
            aud.pre_event(now);
        }
    }

    fn audit_post_event(&mut self, now: SimTime) {
        // Destructure for disjoint borrows: the auditor is mutated
        // while the hardware models are read.
        let Machine {
            auditor,
            accels,
            energy,
            dma,
            lib,
            ..
        } = self;
        let Some(aud) = auditor.as_mut() else { return };
        for (i, acc) in accels.iter().enumerate() {
            let q = acc.input();
            aud.check_queue(
                now,
                i,
                q.len(),
                q.capacity(),
                q.overflow_len(),
                q.overflow_capacity(),
                q.overflow_count(),
                q.rejected_count(),
            );
        }
        let (core_busy, accel_busy, events) = energy.activity();
        aud.check_meters(
            now,
            core_busy,
            accel_busy,
            events,
            dma.bytes_moved(),
            lib.atm().reads(),
        );
    }
}

impl Model for Machine {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        if self.tel.is_some() {
            self.sample_telemetry(now);
        }
        self.audit_pre_event(now);
        match event {
            Ev::Arrive(idx) => self.on_arrive(now, idx, queue),
            Ev::StartStep(req) => self.on_start_step(now, req, queue),
            Ev::AppDone(req) => self.on_app_done(now, req, queue),
            Ev::HopArrive(addr) => self.on_hop_arrive(now, addr, queue),
            Ev::HopArriveRetry(addr) => self.start_call(now, addr, queue),
            Ev::ExternalArriveCpu(addr) => self.start_segment_on_cpu(now, addr, queue),
            Ev::PeDone {
                addr,
                accel,
                pe,
                busy_ps,
            } => self.on_pe_done(now, addr, accel, pe, busy_ps, queue),
            Ev::TryStart(accel) => self.on_try_start(now, accel, queue),
            Ev::ExternalArrive(addr) => self.on_external_arrive(now, addr, queue),
            Ev::CallDone { req, error, .. } => self.on_call_done(now, req, error, queue),
            Ev::FallbackDone(addr) => self.on_fallback_done(now, addr, queue),
            Ev::Timeout { req, .. } => self.on_timeout(now, req),
        }
        self.audit_post_event(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CallSpec, CyclesDist, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn simple_service() -> ServiceSpec {
        ServiceSpec::new(
            "Simple",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(40_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn db_service() -> ServiceSpec {
        ServiceSpec::new(
            "WithDb",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T4)),
                StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 2]),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn quick_run(policy: Policy, rps: f64) -> RunReport {
        let mut cfg = MachineConfig::new(policy);
        cfg.warmup = SimDuration::from_millis(2);
        Machine::run_workload(
            &cfg,
            &[simple_service(), db_service()],
            rps,
            SimDuration::from_millis(30),
            11,
        )
    }

    #[test]
    fn light_load_completes_everything() {
        for policy in [
            Policy::AccelFlow,
            Policy::NonAcc,
            Policy::Relief,
            Policy::CpuCentric,
            Policy::Cohort,
            Policy::Ideal,
        ] {
            let r = quick_run(policy, 300.0);
            assert!(r.offered() > 10, "{policy}: offered {}", r.offered());
            assert!(
                r.completion_ratio() > 0.99,
                "{policy}: completion {}",
                r.completion_ratio()
            );
            let p99 = r.aggregate_latency().percentile_duration(99.0);
            assert!(p99 > SimDuration::ZERO, "{policy}");
            assert!(p99 < SimDuration::from_millis(5), "{policy}: p99 {p99}");
        }
    }

    #[test]
    fn policies_order_under_load() {
        // On a small, contended machine the paper's ordering holds:
        // AccelFlow < RELIEF < Non-acc (p99), with CPU-Centric well
        // above AccelFlow.
        let p99 = |policy| {
            let mut cfg = MachineConfig::new(policy);
            cfg.warmup = SimDuration::from_millis(2);
            cfg.arch.cores = 3;
            let r = Machine::run_workload(
                &cfg,
                &[simple_service(), db_service()],
                3_000.0,
                SimDuration::from_millis(30),
                11,
            );
            r.aggregate_latency().percentile(99.0)
        };
        let af = p99(Policy::AccelFlow);
        let relief = p99(Policy::Relief);
        let cpu = p99(Policy::CpuCentric);
        let non = p99(Policy::NonAcc);
        assert!(af < relief, "AccelFlow {af} vs RELIEF {relief}");
        assert!(af * 3 < cpu * 2, "AccelFlow {af} vs CPU-Centric {cpu}");
        // The Non-acc margin is the noisiest of the three on this tiny
        // 30 ms window (its p99 rides the overload knee): across seeds
        // the ratio ranges ~1.34–1.92×, so assert a 1.25× floor rather
        // than a point estimate.
        assert!(af * 5 < non * 4, "AccelFlow {af} vs Non-acc {non}");
    }

    #[test]
    fn ideal_is_a_lower_bound_for_accelflow() {
        let ideal = quick_run(Policy::Ideal, 2_000.0).aggregate_latency().mean();
        let af = quick_run(Policy::AccelFlow, 2_000.0)
            .aggregate_latency()
            .mean();
        assert!(ideal <= af, "ideal {ideal} accelflow {af}");
    }

    #[test]
    fn accelflow_orchestration_fraction_is_small() {
        let r = quick_run(Policy::AccelFlow, 500.0);
        let frac = r.total_breakdown().orchestration_fraction();
        assert!(frac < 0.10, "orchestration fraction {frac}");
        let relief = quick_run(Policy::Relief, 500.0);
        assert!(
            relief.total_breakdown().orchestration_fraction() > frac,
            "RELIEF must pay more orchestration"
        );
    }

    #[test]
    fn glue_instruction_average_is_plausible() {
        let r = quick_run(Policy::AccelFlow, 500.0);
        let avg = r.totals.mean_glue_instructions();
        // §VII-B2: average ~18 instructions per dispatcher operation.
        assert!((14.0..40.0).contains(&avg), "avg glue {avg}");
        assert!(r.totals.atm_reads > 0, "chains must read the ATM");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_run(Policy::AccelFlow, 1_000.0);
        let b = quick_run(Policy::AccelFlow, 1_000.0);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(
            a.aggregate_latency().percentile(99.0),
            b.aggregate_latency().percentile(99.0)
        );
        assert_eq!(a.totals.dispatcher_instrs, b.totals.dispatcher_instrs);
    }

    #[test]
    fn more_chiplets_cost_latency() {
        let run = |chiplets| {
            let mut cfg = MachineConfig::new(Policy::AccelFlow);
            cfg.warmup = SimDuration::from_millis(2);
            cfg.chiplets = chiplets;
            Machine::run_workload(
                &cfg,
                &[simple_service()],
                1_000.0,
                SimDuration::from_millis(30),
                5,
            )
            .aggregate_latency()
            .mean()
        };
        let two = run(2);
        let six = run(6);
        assert!(six > two, "6-chiplet {six} vs 2-chiplet {two}");
    }

    #[test]
    fn tenant_cap_throttles() {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.tenant_cap = 1;
        let r = Machine::run_workload(
            &cfg,
            &[db_service()],
            3_000.0,
            SimDuration::from_millis(20),
            3,
        );
        assert!(r.totals.tenant_throttled > 0, "cap of 1 must throttle");
        assert!(
            r.completion_ratio() > 0.9,
            "throttling must not lose requests"
        );
    }

    #[test]
    fn slo_deadlines_are_tracked() {
        let mut svc = simple_service();
        svc.slo_slack = Some(0.0001); // impossible deadline
        let mut cfg = MachineConfig::new(Policy::AccelFlowDeadline);
        cfg.warmup = SimDuration::from_millis(1);
        let r = Machine::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(20), 3);
        assert!(r.per_service[0].deadline_misses > 0);
        let mut svc = simple_service();
        svc.slo_slack = Some(1e6); // trivially met
        let r = Machine::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(20), 3);
        assert_eq!(r.per_service[0].deadline_misses, 0);
    }

    #[test]
    fn saturation_shows_in_completion_ratio() {
        // A 4-core Non-acc server cannot keep up with 20 kRPS/service.
        let mut cfg = MachineConfig::new(Policy::NonAcc);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.arch.cores = 2;
        let r = Machine::run_workload(
            &cfg,
            &[simple_service(), db_service()],
            40_000.0,
            SimDuration::from_millis(15),
            11,
        );
        assert!(
            r.completion_ratio() < 0.97,
            "ratio {}",
            r.completion_ratio()
        );
    }

    #[test]
    fn fig1_attribution_covers_all_categories() {
        let r = quick_run(Policy::NonAcc, 300.0);
        let s = &r.per_service[1]; // WithDb touches every accelerator
        let (shares, app) = s.fig1_shares();
        assert!(app > 0.0);
        let tax: f64 = shares.iter().sum();
        assert!(tax > 0.5, "tax dominates: {tax}");
        assert!(shares[AccelKind::Tcp.id() as usize] > 0.0);
        assert!(shares[AccelKind::Ser.id() as usize] > 0.0);
    }

    #[test]
    fn utilization_and_tlb_stats_populate() {
        let r = quick_run(Policy::AccelFlow, 2_000.0);
        let tcp = AccelKind::Tcp.id() as usize;
        assert!(r.totals.accel_utilization[tcp] > 0.0);
        assert!(r.totals.accel_jobs[tcp] > 0);
        let (hits, misses) = r.totals.tlb[tcp];
        assert!(hits + misses > 0);
        assert!(r.totals.energy.total_j > 0.0);
        assert!(r.totals.dma_bytes > 0);
    }

    #[test]
    fn timeouts_terminate_without_stale_event_panics() {
        // Regression: a TCP timeout terminates and *frees* the request
        // while sibling parallel calls are still in flight. Their
        // PeDone/HopArrive/CallDone events used to hit the freed slot
        // and panic on `expect("request alive")`, and the tenant slots
        // held by those siblings leaked — the latent path was
        // unreachable only because every ExternalSpec median sits far
        // below the default 20 ms timeout. A 10 µs timeout forces it.
        // Two *parallel* DB awaits race: the first arm's timeout frees
        // the request while the second arm's timeout (or response) is
        // still queued.
        let racing = ServiceSpec::new(
            "RacingAwaits",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T4); 2]),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        );
        for policy in [Policy::AccelFlow, Policy::NonAcc, Policy::CpuCentric] {
            let mut cfg = MachineConfig::new(policy);
            cfg.warmup = SimDuration::from_millis(1);
            cfg.tcp_timeout = SimDuration::from_micros(10);
            cfg.audit = true;
            let r = Machine::run_workload(
                &cfg,
                &[racing.clone(), db_service()],
                1_000.0,
                SimDuration::from_millis(20),
                7,
            );
            assert!(r.totals.tcp_timeouts > 0, "{policy}: timeouts must fire");
            assert!(
                r.per_service[0].errors > 0,
                "{policy}: timed-out requests error out"
            );
            assert!(r.audit.enabled);
            assert!(
                r.audit.is_clean(),
                "{policy}: audit violations {:?}",
                r.audit.violations
            );
        }
    }

    #[test]
    fn audit_runs_and_comes_back_clean() {
        let r = quick_run(Policy::AccelFlow, 1_000.0);
        assert!(r.audit.enabled, "debug builds audit by default");
        assert!(r.audit.checks > 1_000, "checks ran: {}", r.audit.checks);
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        // Opting out produces an inert report.
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.audit = false;
        let r = Machine::run_workload(
            &cfg,
            &[simple_service()],
            300.0,
            SimDuration::from_millis(10),
            3,
        );
        assert!(!r.audit.enabled);
        assert_eq!(r.audit.checks, 0);
    }

    #[test]
    fn tenant_slots_drain_after_timeouts_under_tight_cap() {
        // The leaked-slot variant of the timeout bug: with a tiny
        // tenant cap, leaked slots would throttle the tenant forever
        // and the audit's end-of-run tenant-slot check would trip.
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.tcp_timeout = SimDuration::from_micros(10);
        cfg.tenant_cap = 4;
        cfg.audit = true;
        let r = Machine::run_workload(
            &cfg,
            &[db_service()],
            2_000.0,
            SimDuration::from_millis(20),
            13,
        );
        assert!(r.totals.tcp_timeouts > 0);
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        assert!(
            r.completion_ratio() > 0.5,
            "leaked slots would starve the tenant: {}",
            r.completion_ratio()
        );
    }

    #[test]
    fn arrival_list_is_sorted_and_reusable() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
        let arr = poisson_arrivals(
            &[simple_service(), db_service()],
            &lib,
            &timing,
            1_000.0,
            SimDuration::from_millis(10),
            7,
        );
        assert!(arr.len() > 10);
        for w in arr.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Common random numbers: the same arrivals run under two
        // policies.
        let services = [simple_service(), db_service()];
        let cfg_a = MachineConfig::new(Policy::AccelFlow);
        let cfg_b = MachineConfig::new(Policy::Relief);
        let ra = Machine::run_arrivals(
            &cfg_a,
            &services,
            arr.clone(),
            SimDuration::from_millis(10),
            7,
        );
        let rb = Machine::run_arrivals(&cfg_b, &services, arr, SimDuration::from_millis(10), 7);
        assert_eq!(ra.offered(), rb.offered());
    }
}

#[cfg(test)]
mod instance_tests {
    use super::*;
    use crate::request::{CallSpec, CyclesDist, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn heavy_service() -> ServiceSpec {
        ServiceSpec::new(
            "Heavy",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn run_with_instances(instances: usize, pes: usize, rps: f64) -> RunReport {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.instances_per_accel = instances;
        cfg.arch.pes_per_accelerator = pes;
        Machine::run_workload(
            &cfg,
            &[heavy_service()],
            rps,
            SimDuration::from_millis(25),
            17,
        )
    }

    #[test]
    fn multiple_instances_complete_work() {
        let r = run_with_instances(3, 2, 2_000.0);
        assert!(r.completion_ratio() > 0.99, "{}", r.completion_ratio());
        // Jobs spread across instances of each kind (aggregated per
        // kind in the report).
        assert!(r.totals.accel_jobs[AccelKind::Tcp.id() as usize] > 0);
    }

    #[test]
    fn more_instances_reduce_queueing() {
        // One 1-PE instance saturates; three instances of the same
        // accelerator absorb the load.
        let one = run_with_instances(1, 1, 18_000.0);
        let three = run_with_instances(3, 1, 18_000.0);
        let m1 = one.aggregate_latency().mean();
        let m3 = three.aggregate_latency().mean();
        assert!(m3 < m1, "3 instances {m3} must beat 1 instance {m1}");
    }

    #[test]
    fn core_retries_across_instances_before_fallback() {
        // Tiny queues + several instances: the Enqueue retry loop finds
        // space on a sibling instance instead of falling back.
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.instances_per_accel = 4;
        cfg.arch.pes_per_accelerator = 1;
        cfg.arch.input_queue_entries = 1;
        cfg.arch.overflow_entries = 4;
        cfg.speedup_scale = 0.05;
        let r = Machine::run_workload(
            &cfg,
            &[heavy_service()],
            8_000.0,
            SimDuration::from_millis(15),
            5,
        );
        // Rejections happened (retries recorded) but work completed.
        assert!(r.completion_ratio() > 0.9, "{}", r.completion_ratio());
    }

    #[test]
    #[should_panic(expected = "instances_per_accel")]
    fn zero_instances_rejected() {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.instances_per_accel = 0;
        let _ = Machine::new(cfg, vec![], vec![], SimTime::ZERO, 1);
    }

    #[test]
    fn relief_shared_queue_spans_instances() {
        let mut cfg = MachineConfig::new(Policy::Relief);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.instances_per_accel = 2;
        let r = Machine::run_workload(
            &cfg,
            &[heavy_service()],
            2_000.0,
            SimDuration::from_millis(25),
            8,
        );
        assert!(r.completion_ratio() > 0.99);
        assert!(r.totals.manager_jobs > 0);
    }
}

#[cfg(test)]
mod addressing_tests {
    use super::*;

    #[test]
    fn call_addr_tag_roundtrips() {
        for (req, step, par, seg, hop) in [
            (0u32, 0u8, 0u8, 0u8, 0u8),
            (1, 2, 3, 4, 5),
            (u32::MAX, u8::MAX, u8::MAX, u8::MAX, u8::MAX),
            (123_456, 7, 0, 3, 11),
        ] {
            let addr = CallAddr {
                req,
                step,
                par,
                seg,
                hop,
            };
            assert_eq!(CallAddr::from_tag(addr.tag()), addr);
        }
    }

    #[test]
    fn chiplet_groups_partition_all_kinds() {
        for chiplets in [1usize, 2, 3, 4, 6] {
            let mut cfg = MachineConfig::new(Policy::AccelFlow);
            cfg.chiplets = chiplets;
            let groups = cfg.chiplet_groups();
            assert_eq!(groups.len(), chiplets);
            let mut all: Vec<u8> = groups.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..9).collect::<Vec<u8>>(), "{chiplets} chiplets");
            // LdB always rides with the cores (chiplet 0).
            let groups = cfg.chiplet_groups();
            assert!(groups[0].contains(&AccelKind::Ldb.id()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported chiplet count")]
    fn five_chiplets_rejected() {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.chiplets = 5;
        let _ = cfg.chiplet_groups();
    }

    #[test]
    fn buffer_pool_addresses_stay_disjoint_from_call_offsets() {
        // Arena bases are multiples of 1<<24. Per-call offsets are
        // (step << 20) + (par << 16); services have well under 16
        // steps, so a request's buffers stay inside its own arena.
        let base = (BUFFER_POOL - 1) << 24;
        assert_eq!(base % (1 << 24), 0, "bases aligned");
        let max_realistic_offset = (15u64 << 20) + (15u64 << 16);
        assert!(max_realistic_offset < 1 << 24, "offsets stay in-arena");
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;
    use crate::request::{CallSpec, CyclesDist, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn db_heavy() -> ServiceSpec {
        ServiceSpec::new(
            "DbHeavy",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T4)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn unloaded(policy: Policy) -> RunReport {
        let mut cfg = MachineConfig::new(policy);
        cfg.warmup = SimDuration::from_millis(1);
        Machine::run_workload(&cfg, &[db_heavy()], 300.0, SimDuration::from_millis(40), 23)
    }

    #[test]
    fn breakdown_components_populate_sanely() {
        let r = unloaded(Policy::AccelFlow);
        let b = r.total_breakdown();
        assert!(b.cpu > SimDuration::ZERO, "app logic ran");
        assert!(b.accel > SimDuration::ZERO, "accelerators ran");
        assert!(b.communication > SimDuration::ZERO, "data moved");
        assert!(b.external > SimDuration::ZERO, "the DB was consulted");
        // Unloaded AccelFlow: orchestration is a sliver (Fig 17).
        assert!(
            b.orchestration_fraction() < 0.05,
            "{}",
            b.orchestration_fraction()
        );
        // Wall-clock sanity: per-request on-server time is bounded by
        // per-request total latency.
        let per_req_server = b.on_server().as_micros_f64() / r.completed() as f64;
        let mean = r.aggregate_latency().mean_duration().as_micros_f64();
        assert!(
            per_req_server < mean * 1.05,
            "on-server {per_req_server} vs mean {mean}"
        );
    }

    #[test]
    fn manager_accounting_only_for_manager_policies() {
        assert_eq!(unloaded(Policy::AccelFlow).totals.manager_jobs, 0);
        assert_eq!(unloaded(Policy::CpuCentric).totals.manager_jobs, 0);
        assert!(unloaded(Policy::Relief).totals.manager_jobs > 0);
        assert!(
            unloaded(Policy::Direct).totals.manager_jobs > 0,
            "fallback bounces"
        );
    }

    #[test]
    fn dispatcher_accounting_only_for_trace_policies() {
        assert!(unloaded(Policy::AccelFlow).totals.dispatches > 0);
        assert!(
            unloaded(Policy::AccelFlow).totals.atm_reads > 0,
            "T4 chains"
        );
        assert_eq!(unloaded(Policy::Relief).totals.dispatches, 0);
        assert_eq!(unloaded(Policy::NonAcc).totals.dispatches, 0);
        assert_eq!(unloaded(Policy::NonAcc).totals.dma_bytes, 0);
    }

    #[test]
    fn ideal_pays_no_orchestration() {
        let r = unloaded(Policy::Ideal);
        // Ideal still submits from cores but skips dispatcher/manager
        // charges on the trace path.
        let b = r.total_breakdown();
        assert!(b.orchestration.as_micros_f64() / (r.completed() as f64) < 1.0);
    }

    #[test]
    fn tax_attribution_is_policy_independent() {
        // Fig 1 attribution measures the workload, not the machine:
        // identical arrivals must yield identical per-kind tax sums.
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
        let arrivals = poisson_arrivals(
            &[db_heavy()],
            &lib,
            &timing,
            300.0,
            SimDuration::from_millis(30),
            9,
        );
        let run = |policy| {
            let mut cfg = MachineConfig::new(policy);
            cfg.warmup = SimDuration::from_millis(1);
            Machine::run_arrivals(
                &cfg,
                &[db_heavy()],
                arrivals.clone(),
                SimDuration::from_millis(30),
                9,
            )
        };
        let a = run(Policy::AccelFlow);
        let b = run(Policy::NonAcc);
        assert_eq!(a.per_service[0].tax_by_kind, b.per_service[0].tax_by_kind);
        assert_eq!(a.per_service[0].app_logic, b.per_service[0].app_logic);
    }
}
