//! Cluster run results: per-node [`RunReport`]s plus fleet-level
//! health/placement counters, with aggregation helpers for the
//! cluster-scale figures (goodput and tail latency versus fleet size,
//! balancer, and fault rate).

use accelflow_sim::stats::Histogram;
use accelflow_sim::time::SimDuration;

use crate::stats::RunReport;

/// Keep-alive and relocation counters for one cluster run. All zeros
/// when keep-alive polling is disabled and every node stays healthy.
#[derive(Clone, Debug, Default)]
pub struct HealthReport {
    /// Keep-alive poll rounds executed.
    pub polls: u64,
    /// Healthy→suspended transitions observed across all nodes.
    pub suspensions: u64,
    /// Suspended→healthy transitions observed across all nodes.
    pub recoveries: u64,
    /// Arrivals re-routed away from their preferred node because it
    /// was suspended at dispatch time.
    pub relocations: u64,
    /// Arrivals dispatched to each node (preferred + relocated).
    pub dispatched: Vec<u64>,
}

/// The result of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Per-node machine reports, indexed by node id.
    pub per_node: Vec<RunReport>,
    /// Fleet health and placement counters.
    pub health: HealthReport,
    /// Events the shared outer kernel delivered (node events plus
    /// keep-alive ticks; excludes events the nodes handled internally).
    pub events: u64,
    /// Past-time schedules the outer kernel clamped forward. The
    /// dispatcher FIFO-clamps admission times itself, so non-zero here
    /// means a cluster-layer time-travel bug.
    pub clamped: u64,
}

impl ClusterReport {
    /// Total requests offered across the fleet (post-warmup arrivals).
    pub fn offered(&self) -> u64 {
        self.per_node.iter().map(|r| r.offered()).sum()
    }

    /// Total requests completed across the fleet.
    pub fn completed(&self) -> u64 {
        self.per_node.iter().map(|r| r.completed()).sum()
    }

    /// Aggregate goodput in requests/second over the measured window
    /// (the window is common to all nodes — one shared clock).
    pub fn goodput_rps(&self) -> f64 {
        let secs = self
            .per_node
            .first()
            .map_or(0.0, |r| r.measured.as_secs_f64());
        if secs == 0.0 {
            0.0
        } else {
            self.completed() as f64 / secs
        }
    }

    /// Fleet-wide completion ratio — drops below ~1.0 when any node
    /// saturates or work is lost to faults.
    pub fn completion_ratio(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            1.0
        } else {
            self.completed() as f64 / offered as f64
        }
    }

    /// Every node's completed-request latencies merged into one
    /// histogram (cluster-level tail percentiles).
    pub fn aggregate_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for node in &self.per_node {
            h.merge(&node.aggregate_latency());
        }
        h
    }

    /// Fleet-wide P99 latency.
    pub fn p99(&self) -> SimDuration {
        self.aggregate_latency().percentile_duration(99.0)
    }

    /// Every node's online-control counters summed (admissions,
    /// rejections, SLO windows, scaling actions). All zeros when
    /// control is disabled.
    pub fn control(&self) -> crate::control::ControlStats {
        let mut total = crate::control::ControlStats::default();
        for node in &self.per_node {
            total.absorb(&node.control);
        }
        total
    }

    /// Fleet-wide deadline misses (requests finishing past their SLO).
    pub fn deadline_misses(&self) -> u64 {
        self.per_node
            .iter()
            .flat_map(|r| &r.per_service)
            .map(|s| s.deadline_misses)
            .sum()
    }

    /// Largest/smallest per-node dispatch count ratio — 1.0 is a
    /// perfectly even spread. Returns 1.0 for a single node;
    /// `f64::INFINITY` when some node received nothing while another
    /// received work.
    pub fn dispatch_imbalance(&self) -> f64 {
        let max = self.health.dispatched.iter().copied().max().unwrap_or(0);
        let min = self.health.dispatched.iter().copied().min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{MachineTotals, ServiceStats};
    use accelflow_sim::time::SimTime;

    fn node_report(latencies_us: &[u64], offered: u64) -> RunReport {
        let mut s = ServiceStats::new("svc");
        for &us in latencies_us {
            s.latency.record_duration(SimDuration::from_micros(us));
        }
        s.completed = latencies_us.len() as u64;
        s.offered = offered;
        RunReport {
            per_service: vec![s],
            totals: MachineTotals::default(),
            measured: SimDuration::from_millis(2),
            ended_at: SimTime::ZERO + SimDuration::from_millis(2),
            faults: crate::faults::FaultStats::default(),
            control: crate::control::ControlStats::default(),
            audit: crate::audit::AuditReport::disabled(),
            telemetry: accelflow_sim::telemetry::TelemetryReport::disabled(),
        }
    }

    #[test]
    fn aggregates_span_nodes() {
        let report = ClusterReport {
            per_node: vec![node_report(&[100, 200], 3), node_report(&[400], 1)],
            health: HealthReport {
                dispatched: vec![3, 1],
                ..HealthReport::default()
            },
            events: 10,
            clamped: 0,
        };
        assert_eq!(report.offered(), 4);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.aggregate_latency().count(), 3);
        assert!((report.completion_ratio() - 0.75).abs() < 1e-12);
        // 3 completions over the 2 ms shared window.
        assert!((report.goodput_rps() - 1500.0).abs() < 1e-9);
        // The merged tail sees node 1's slow request.
        assert!(report.p99() >= SimDuration::from_micros(400));
        assert!((report.dispatch_imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_is_safe() {
        let report = ClusterReport {
            per_node: Vec::new(),
            health: HealthReport::default(),
            events: 0,
            clamped: 0,
        };
        assert_eq!(report.offered(), 0);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.goodput_rps(), 0.0);
        assert_eq!(report.completion_ratio(), 1.0);
        assert_eq!(report.dispatch_imbalance(), 1.0);
    }

    #[test]
    fn starved_node_reads_as_infinite_imbalance() {
        let report = ClusterReport {
            per_node: Vec::new(),
            health: HealthReport {
                dispatched: vec![5, 0],
                ..HealthReport::default()
            },
            events: 0,
            clamped: 0,
        };
        assert!(report.dispatch_imbalance().is_infinite());
    }
}
