//! Cluster-level checkpoint/restore and the resumable [`ClusterRun`]
//! handle — the fleet analog of
//! [`MachineRun`](crate::machine::MachineRun).
//!
//! A cluster snapshot nests every node's machine state (headerless,
//! via the crate-internal machine serializer) plus its scratch-queue
//! bookkeeping under ONE header, alongside the dispatcher's own
//! dynamics: the undispatched arrival backlog, the round-robin cursor,
//! the placement RNG, suspension flags, health counters, and the
//! shared outer event queue. Restoring rebuilds the fleet from the
//! same [`ClusterConfig`] and resumes byte-identically; the header's
//! configuration hash refuses anything else. Format details in
//! `docs/CHECKPOINT.md`.

use accelflow_sim::engine::{EventQueue, Simulation};
use accelflow_sim::rng::SimRng;
use accelflow_sim::snapshot::{
    check_header, fnv1a, write_header, SnapReader, SnapWriter, Snapshot, SnapshotError,
};
use accelflow_sim::time::{SimDuration, SimTime};

use crate::arrivals::Arrival;
use crate::machine::{Ev, Machine};
use crate::request::ServiceSpec;

use super::{
    balancer_for, CEv, Cluster, ClusterConfig, ClusterModel, ClusterReport, HealthReport,
    NodeSlot, DISPATCH_RNG_SALT,
};

/// Leading magic bytes of a cluster snapshot — distinct from the
/// machine magic so the two snapshot kinds can never be confused.
pub const CLUSTER_SNAPSHOT_MAGIC: [u8; 4] = *b"AFCS";

impl Snapshot for HealthReport {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.polls);
        w.u64(self.suspensions);
        w.u64(self.recoveries);
        w.u64(self.relocations);
        self.dispatched.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(HealthReport {
            polls: r.u64()?,
            suspensions: r.u64()?,
            recoveries: r.u64()?,
            relocations: r.u64()?,
            dispatched: Vec::load(r)?,
        })
    }
}

impl Snapshot for CEv {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            CEv::Node(node, ev) => {
                w.u8(0);
                w.u16(*node);
                ev.save(w);
            }
            CEv::KeepAlive => w.u8(1),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => CEv::Node(r.u16()?, Ev::load(r)?),
            1 => CEv::KeepAlive,
            other => {
                return Err(SnapshotError::Corrupt(format!("unknown CEv tag {other}")))
            }
        })
    }
}

impl Cluster {
    /// The configuration-identity hash carried in cluster snapshot
    /// headers: FNV-1a over the cluster config's `Debug` rendering plus
    /// the service names (the seed is excluded — every RNG stream
    /// position is serialized).
    pub fn config_hash(cfg: &ClusterConfig, service_names: &[String]) -> u64 {
        let mut buf = format!("{cfg:?}").into_bytes();
        for name in service_names {
            buf.push(0);
            buf.extend_from_slice(name.as_bytes());
        }
        fnv1a(&buf)
    }
}

/// A cluster run held open for stepwise control: run to an instant,
/// snapshot, resume, finish. [`Cluster::run_arrivals`] and friends are
/// one-shot wrappers over this, exactly as
/// [`Machine::run_arrivals`](crate::machine::Machine::run_arrivals)
/// wraps [`MachineRun`](crate::machine::MachineRun).
pub struct ClusterRun<F: FnMut(SimTime, u16, &Ev)> {
    sim: Simulation<ClusterModel<F>>,
    /// Arrival horizon (the measurement window end; excludes drain).
    end: SimTime,
    /// Configuration-identity hash, computed once at start/restore and
    /// stamped into every snapshot header.
    cfg_hash: u64,
}

impl<F: FnMut(SimTime, u16, &Ev)> ClusterRun<F> {
    /// Opens a fleet run over a pre-generated arrival list (the
    /// stepwise form of [`Cluster::run_arrivals_observed`]).
    ///
    /// # Panics
    ///
    /// Panics when `cfg.nodes` is zero, exceeds `u16::MAX`, or
    /// `cfg.weights` is non-empty with a length other than `cfg.nodes`.
    pub fn start(
        cfg: &ClusterConfig,
        services: &[ServiceSpec],
        arrivals: Vec<Arrival>,
        duration: SimDuration,
        seed: u64,
        observe: F,
    ) -> Self {
        assert!(cfg.nodes >= 1, "a cluster needs at least one node");
        assert!(
            cfg.nodes <= u16::MAX as usize,
            "node ids are u16: at most {} nodes",
            u16::MAX
        );
        let weights = if cfg.weights.is_empty() {
            vec![1.0; cfg.nodes]
        } else {
            assert_eq!(
                cfg.weights.len(),
                cfg.nodes,
                "weights must match the node count"
            );
            cfg.weights.clone()
        };

        let names: Vec<String> = services.iter().map(|s| s.name.clone()).collect();
        let cfg_hash = Cluster::config_hash(cfg, &names);
        let end = SimTime::ZERO + duration;
        let nodes: Vec<NodeSlot> = (0..cfg.nodes)
            .map(|i| NodeSlot {
                // Per-node seeds are consecutive so node 0 of a
                // one-node cluster draws the exact streams a bare
                // machine at `seed` would.
                machine: Machine::new(
                    cfg.node.clone(),
                    names.clone(),
                    Vec::new(),
                    end,
                    seed.wrapping_add(i as u64),
                ),
                scratch: EventQueue::with_capacity(256),
                suspended: false,
            })
            .collect();

        let mut pending = arrivals;
        pending.reverse();
        let model = ClusterModel {
            nodes,
            link: cfg.link,
            balancer: balancer_for(cfg.balancer),
            weights,
            rr_cursor: 0,
            rng: SimRng::seed(seed ^ DISPATCH_RNG_SALT),
            pending,
            keepalive: cfg.keepalive,
            suspend_dark_stations: cfg.suspend_dark_stations,
            health: HealthReport {
                dispatched: vec![0; cfg.nodes],
                ..HealthReport::default()
            },
            live_scratch: Vec::with_capacity(cfg.nodes),
            observe,
        };
        let mut sim = Simulation::new(model);

        // Seeding order mirrors a bare machine run: the first arrival,
        // then each node's fault-stream and autoscaler arming, then
        // (cluster-only) the first keep-alive tick.
        if let Some((at, target, local)) = sim.model_mut().dispatch_next(SimTime::ZERO) {
            sim.queue_mut()
                .schedule_at(at, CEv::Node(target, Ev::Arrive(local)));
        }
        for i in 0..cfg.nodes {
            let armed = sim.model_mut().nodes[i].machine.arm_initial_faults();
            for (at, class) in armed {
                sim.queue_mut()
                    .schedule_at(at, CEv::Node(i as u16, Ev::FaultInject(class)));
            }
            if let Some(at) = sim.model().nodes[i].machine.arm_autoscaler() {
                sim.queue_mut()
                    .schedule_at(at, CEv::Node(i as u16, Ev::ScaleTick));
            }
        }
        if let Some(tick) = cfg.keepalive {
            sim.queue_mut()
                .schedule_at(SimTime::ZERO + tick, CEv::KeepAlive);
        }
        ClusterRun { sim, end, cfg_hash }
    }

    /// Reopens a run from [`ClusterRun::snapshot`] bytes. Refuses
    /// snapshots whose magic, schema version, or configuration hash
    /// does not match.
    pub fn restore(
        cfg: &ClusterConfig,
        services: &[ServiceSpec],
        bytes: &[u8],
        observe: F,
    ) -> Result<Self, SnapshotError> {
        let names: Vec<String> = services.iter().map(|s| s.name.clone()).collect();
        let expected = Cluster::config_hash(cfg, &names);
        let mut r = SnapReader::new(bytes);
        check_header(&mut r, CLUSTER_SNAPSHOT_MAGIC, expected)?;
        let end = SimTime::load(&mut r)?;

        let node_count = r.seq_len()?;
        if node_count != cfg.nodes {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {node_count} nodes, config builds {}",
                cfg.nodes
            )));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let machine = Machine::restore_dynamic(&cfg.node, &names, &mut r)?;
            let scratch = EventQueue::load_snapshot(&mut r)?;
            let suspended = r.bool()?;
            nodes.push(NodeSlot {
                machine,
                scratch,
                suspended,
            });
        }

        let rr_cursor = r.usize()?;
        let rng = Snapshot::load(&mut r)?;
        let pending: Vec<Arrival> = Snapshot::load(&mut r)?;
        let health: HealthReport = Snapshot::load(&mut r)?;
        if health.dispatched.len() != cfg.nodes {
            return Err(SnapshotError::Corrupt(format!(
                "dispatch counters cover {} nodes, config builds {}",
                health.dispatched.len(),
                cfg.nodes
            )));
        }
        let outer = EventQueue::load_snapshot(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the outer event queue",
                bytes.len() - r.position()
            )));
        }

        let weights = if cfg.weights.is_empty() {
            vec![1.0; cfg.nodes]
        } else {
            cfg.weights.clone()
        };
        let model = ClusterModel {
            nodes,
            link: cfg.link,
            balancer: balancer_for(cfg.balancer),
            weights,
            rr_cursor,
            rng,
            pending,
            keepalive: cfg.keepalive,
            suspend_dark_stations: cfg.suspend_dark_stations,
            health,
            live_scratch: Vec::with_capacity(cfg.nodes),
            observe,
        };
        Ok(ClusterRun {
            sim: Simulation::from_parts(model, outer),
            end,
            cfg_hash: expected,
        })
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Delivers every event strictly before `t`.
    pub fn run_to(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Takes a versioned snapshot of the whole fleet and its pending
    /// events. The run is not disturbed and may keep going.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let cfg_hash = self.cfg_hash;
        let (model, outer) = self.sim.parts_mut();
        let mut w = SnapWriter::new();
        write_header(&mut w, CLUSTER_SNAPSHOT_MAGIC, cfg_hash);
        self.end.save(&mut w);
        w.usize(model.nodes.len());
        for node in &mut model.nodes {
            node.machine.save_dynamic(&mut w);
            node.scratch.save_snapshot(&mut w);
            w.bool(node.suspended);
        }
        w.usize(model.rr_cursor);
        model.rng.save(&mut w);
        model.pending.save(&mut w);
        model.health.save(&mut w);
        outer.save_snapshot(&mut w);
        w.into_bytes()
    }

    /// Runs through the drain window past the horizon and extracts the
    /// fleet report.
    pub fn finish(mut self) -> ClusterReport {
        let drain = self.end + SimDuration::from_millis(30);
        self.sim.run_until(drain);
        let now = self.sim.now();
        let events = self.sim.queue_mut().delivered();
        let clamped = self.sim.queue_mut().clamped();
        let model = self.sim.into_model();
        let health = model.health;
        let per_node = model
            .nodes
            .into_iter()
            .map(|slot| {
                let node_clamped = slot.scratch.clamped();
                let mut report = slot.machine.into_run_report(now, self.end);
                report.totals.clamped_events = node_clamped;
                report
            })
            .collect();
        ClusterReport {
            per_node,
            health,
            events,
            clamped,
        }
    }
}
