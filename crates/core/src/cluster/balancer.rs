//! Cluster-level placement strategies.
//!
//! Mirrors the [`Orchestrator`](crate::machine::orchestrator) pattern
//! one level up: every fleet design the cluster evaluates differs only
//! in *where the front-end dispatcher sends the next request*, so that
//! seam is one stateless strategy object per [`BalancerKind`],
//! consulted once per dispatched arrival. All mutable placement state
//! (the round-robin cursor, the dispatcher's private RNG stream) lives
//! in the cluster and is lent to the strategy through a
//! [`PlacementView`] for the duration of one decision.
//!
//! # Contract
//!
//! * Implementations are zero-sized and `'static`; construction goes
//!   through [`balancer_for`], the single site mapping kind to
//!   behavior.
//! * [`Balancer::pick`] is consulted with *every* node visible,
//!   healthy or not; health-based relocation is the cluster's job
//!   (uniform across strategies), so a strategy stays a pure
//!   preference function.
//! * Decisions must be deterministic in `(view, arrival)`: the only
//!   randomness allowed is the view's seeded RNG stream, which is
//!   isolated from every workload stream (same discipline as fault
//!   injection), so placement never perturbs per-node event streams.

use accelflow_sim::rng::SimRng;

use crate::arrivals::Arrival;

/// The placement strategies the cluster front-end can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BalancerKind {
    /// Rotate through nodes in index order.
    RoundRobin,
    /// Draw a node from the configured weight distribution.
    WeightedRandom,
    /// Send to the node with the fewest in-flight requests.
    LeastLoaded,
    /// Pin each service to a home node (keeps that node's accelerator
    /// scratchpads and TLBs warm for the service's traces).
    LocalityAware,
}

impl BalancerKind {
    /// Every strategy, in sweep order.
    pub const ALL: [BalancerKind; 4] = [
        BalancerKind::RoundRobin,
        BalancerKind::WeightedRandom,
        BalancerKind::LeastLoaded,
        BalancerKind::LocalityAware,
    ];

    /// Short stable identifier (tables, CI output).
    pub fn name(self) -> &'static str {
        match self {
            BalancerKind::RoundRobin => "round_robin",
            BalancerKind::WeightedRandom => "weighted_random",
            BalancerKind::LeastLoaded => "least_loaded",
            BalancerKind::LocalityAware => "locality",
        }
    }
}

impl std::fmt::Display for BalancerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The cluster state a strategy may consult for one placement
/// decision. Borrowed fields stay owned by the cluster model; a
/// strategy holds nothing across decisions.
pub struct PlacementView<'a> {
    /// In-flight request count per node, indexed by node id.
    pub live: &'a [u64],
    /// Dispatch weight per node (same length as `live`; uniform when
    /// the config left weights empty).
    pub weights: &'a [f64],
    /// Round-robin cursor: index of the most recently picked node.
    pub rr_cursor: &'a mut usize,
    /// The dispatcher's private seeded stream (never shared with
    /// workload or fault RNGs).
    pub rng: &'a mut SimRng,
}

impl PlacementView<'_> {
    /// Number of nodes in the cluster (never zero).
    pub fn nodes(&self) -> usize {
        self.live.len()
    }
}

/// One placement strategy. See the module docs for the contract.
pub trait Balancer: Sync {
    /// The kind this strategy implements.
    fn kind(&self) -> BalancerKind;

    /// Preferred node for `arrival`. Must return an index below
    /// `view.nodes()`; ties and health are resolved by the cluster.
    fn pick(&self, view: &mut PlacementView<'_>, arrival: &Arrival) -> usize;
}

struct RoundRobin;
struct WeightedRandom;
struct LeastLoaded;
struct LocalityAware;

impl Balancer for RoundRobin {
    fn kind(&self) -> BalancerKind {
        BalancerKind::RoundRobin
    }
    fn pick(&self, view: &mut PlacementView<'_>, _arrival: &Arrival) -> usize {
        *view.rr_cursor = (*view.rr_cursor + 1) % view.nodes();
        *view.rr_cursor
    }
}

impl Balancer for WeightedRandom {
    fn kind(&self) -> BalancerKind {
        BalancerKind::WeightedRandom
    }
    fn pick(&self, view: &mut PlacementView<'_>, _arrival: &Arrival) -> usize {
        view.rng.weighted_index(view.weights)
    }
}

impl Balancer for LeastLoaded {
    fn kind(&self) -> BalancerKind {
        BalancerKind::LeastLoaded
    }
    fn pick(&self, view: &mut PlacementView<'_>, _arrival: &Arrival) -> usize {
        // min_by_key keeps the first minimum: ties break to the lowest
        // node index, deterministically.
        view.live
            .iter()
            .enumerate()
            .min_by_key(|&(_, &live)| live)
            .map(|(i, _)| i)
            .expect("cluster has at least one node")
    }
}

impl Balancer for LocalityAware {
    fn kind(&self) -> BalancerKind {
        BalancerKind::LocalityAware
    }
    fn pick(&self, view: &mut PlacementView<'_>, arrival: &Arrival) -> usize {
        arrival.service.0 % view.nodes()
    }
}

/// Maps a kind to its strategy object — the one construction site.
pub fn balancer_for(kind: BalancerKind) -> &'static dyn Balancer {
    match kind {
        BalancerKind::RoundRobin => &RoundRobin,
        BalancerKind::WeightedRandom => &WeightedRandom,
        BalancerKind::LeastLoaded => &LeastLoaded,
        BalancerKind::LocalityAware => &LocalityAware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Program, ServiceId};
    use accelflow_accel::queue::TenantId;
    use accelflow_sim::time::SimTime;

    fn arrival(service: usize) -> Arrival {
        Arrival {
            at: SimTime::ZERO,
            service: ServiceId(service),
            tenant: TenantId(0),
            program: Program {
                steps: Vec::new(),
                slo_slack: None,
                priority: 0,
            },
        }
    }

    fn view<'a>(
        live: &'a [u64],
        weights: &'a [f64],
        cursor: &'a mut usize,
        rng: &'a mut SimRng,
    ) -> PlacementView<'a> {
        PlacementView {
            live,
            weights,
            rr_cursor: cursor,
            rng,
        }
    }

    #[test]
    fn construction_site_agrees_with_kind() {
        for kind in BalancerKind::ALL {
            assert_eq!(balancer_for(kind).kind(), kind);
        }
    }

    #[test]
    fn round_robin_cycles_all_nodes() {
        let b = balancer_for(BalancerKind::RoundRobin);
        let live = [0u64; 3];
        let weights = [1.0; 3];
        let (mut cursor, mut rng) = (0usize, SimRng::seed(1));
        let picks: Vec<usize> = (0..6)
            .map(|_| {
                b.pick(
                    &mut view(&live, &weights, &mut cursor, &mut rng),
                    &arrival(0),
                )
            })
            .collect();
        assert_eq!(picks, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_picks_minimum_and_breaks_ties_low() {
        let b = balancer_for(BalancerKind::LeastLoaded);
        let weights = [1.0; 4];
        let (mut cursor, mut rng) = (0usize, SimRng::seed(1));
        let live = [5u64, 2, 7, 2];
        let pick = b.pick(
            &mut view(&live, &weights, &mut cursor, &mut rng),
            &arrival(0),
        );
        assert_eq!(pick, 1, "first minimum wins the tie");
    }

    #[test]
    fn locality_pins_services_to_home_nodes() {
        let b = balancer_for(BalancerKind::LocalityAware);
        let live = [0u64; 3];
        let weights = [1.0; 3];
        let (mut cursor, mut rng) = (0usize, SimRng::seed(1));
        for svc in 0..9 {
            let pick = b.pick(
                &mut view(&live, &weights, &mut cursor, &mut rng),
                &arrival(svc),
            );
            assert_eq!(pick, svc % 3, "service {svc} must stay on its home node");
        }
    }

    #[test]
    fn weighted_random_respects_zero_weights_and_seed() {
        let b = balancer_for(BalancerKind::WeightedRandom);
        let live = [0u64; 3];
        let weights = [1.0, 0.0, 3.0];
        let (mut cursor, mut rng) = (0usize, SimRng::seed(7));
        let mut counts = [0u32; 3];
        for _ in 0..2000 {
            counts[b.pick(
                &mut view(&live, &weights, &mut cursor, &mut rng),
                &arrival(0),
            )] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight node must never be picked");
        assert!(
            counts[2] > counts[0] * 2,
            "weight-3 node must dominate: {counts:?}"
        );
        // Same seed, same picks: the stream is deterministic.
        let (mut c2, mut rng2) = (0usize, SimRng::seed(7));
        let first = b.pick(&mut view(&live, &weights, &mut c2, &mut rng2), &arrival(0));
        let (mut c3, mut rng3) = (0usize, SimRng::seed(7));
        assert_eq!(
            first,
            b.pick(&mut view(&live, &weights, &mut c3, &mut rng3), &arrival(0))
        );
    }
}
