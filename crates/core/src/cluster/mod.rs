//! Cluster-scale orchestration: a fleet of [`Machine`]s behind a
//! two-level orchestrator.
//!
//! The paper evaluates one 36-core server; microservices run on
//! fleets. This module composes N per-node machines under a single
//! *front-end dispatcher* that places every arriving request on a node
//! (a pluggable [`Balancer`] strategy), models the inter-node network
//! ([`NodeLink`]), and keep-alive-polls node health so work is
//! relocated away from fault-suspended nodes — the cluster-level
//! mirror of the per-machine sibling re-dispatch in
//! [`crate::faults`].
//!
//! # One shared kernel, not N simulations
//!
//! The whole fleet is ONE discrete-event [`Model`]: a
//! [`ClusterModel`](self) whose event type wraps each node's
//! [`Ev`] with its node id, plus a keep-alive tick. Every node event
//! flows through the one shared outer [`EventQueue`], so cross-node
//! causality (dispatch, relocation, health) needs no clock
//! synchronization protocol — there is only one clock.
//!
//! Each node keeps a private *scratch* [`EventQueue`] whose only job
//! is to satisfy [`Machine::handle`]'s signature: before a node event
//! is forwarded, the scratch clock is [`sync_to`] the outer clock;
//! after the handler returns, everything it scheduled is
//! [`drain_pending`]ed into the outer queue, tagged with the node id.
//! Within one handler call the drain yields events in exactly the
//! `(time, insertion order)` sequence the machine's own kernel would
//! have used, and re-sequencing a sorted batch into the outer queue
//! preserves that order; across calls, batches stay contiguous. A
//! one-node cluster over a [`NodeLink::zero`] link is therefore
//! **byte-identical** to a bare [`Machine`] run — the golden
//! differential tests pin this.
//!
//! # Admission chain
//!
//! The front end holds the global arrival list and dispatches lazily:
//! arrival *k+1* is placed only when arrival *k* is delivered. Each
//! dispatch consults the balancer over all nodes, walks to the next
//! healthy node when the preferred one is suspended (counted as a
//! relocation, paying [`NodeLink::relocation_extra_hops`]), pushes the
//! payload onto the chosen machine with
//! `Machine::push_external_arrival`, and schedules its
//! [`Ev::Arrive`] at `max(arrival.at + link delay, now)` — FIFO
//! dispatch-queue semantics, so relocated arrivals paying extra hops
//! never time-travel.
//!
//! # Determinism
//!
//! Per-node machines are seeded `seed + node_id`; the dispatcher's own
//! randomness (weighted-random placement) draws from a private stream
//! salted off the run seed, so placement decisions never perturb any
//! node's event stream and runs are byte-deterministic at any host
//! thread count. See `docs/CLUSTER.md`.
//!
//! [`sync_to`]: EventQueue::sync_to
//! [`drain_pending`]: EventQueue::drain_pending

mod balancer;
mod report;
mod snapshot;

pub use balancer::{balancer_for, Balancer, BalancerKind, PlacementView};
pub use report::{ClusterReport, HealthReport};
pub use snapshot::{ClusterRun, CLUSTER_SNAPSHOT_MAGIC};

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_sim::engine::{EventQueue, Model};
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::templates::TraceLibrary;

use crate::arrivals::{poisson_arrivals, Arrival};
use crate::machine::{Ev, Machine, MachineConfig};
use crate::request::ServiceSpec;

/// Salt for the dispatcher's private RNG stream — distinct from the
/// machine workload salt so cluster placement draws can never collide
/// with any node's event randomness.
const DISPATCH_RNG_SALT: u64 = 0xBA1A_4CE5;

/// The inter-node network: per-hop switch latency plus payload
/// serialization, the two first-order terms of a datacenter fabric.
#[derive(Clone, Copy, Debug)]
pub struct NodeLink {
    /// One-way latency per switch hop.
    pub hop_latency: SimDuration,
    /// Serialization cost per payload byte (80 ps/B ≈ 100 Gb/s).
    pub ps_per_byte: u64,
    /// Bytes on the wire per dispatched request (envelope + payload).
    pub request_bytes: u64,
    /// Extra hops a relocated arrival pays on top of the direct path
    /// (the detour through the dispatcher's fallback route).
    pub relocation_extra_hops: u32,
}

impl NodeLink {
    /// A free network: zero latency, zero serialization. A one-node
    /// cluster over this link is byte-identical to a bare machine.
    pub fn zero() -> Self {
        NodeLink {
            hop_latency: SimDuration::ZERO,
            ps_per_byte: 0,
            request_bytes: 0,
            relocation_extra_hops: 0,
        }
    }

    /// Typical intra-datacenter numbers: ~2 µs per switch hop,
    /// 100 Gb/s links (80 ps/byte), a 1 KiB request envelope, and a
    /// two-hop detour for relocated work.
    pub fn datacenter() -> Self {
        NodeLink {
            hop_latency: SimDuration::from_micros(2),
            ps_per_byte: 80,
            request_bytes: 1024,
            relocation_extra_hops: 2,
        }
    }

    /// Wire delay for a dispatch crossing `hops` switch hops.
    pub fn delay(&self, hops: u32) -> SimDuration {
        SimDuration::from_picos(
            self.hop_latency.as_picos() * hops as u64 + self.ps_per_byte * self.request_bytes,
        )
    }
}

/// Configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Fleet size (≥ 1).
    pub nodes: usize,
    /// Per-node machine configuration (every node is identical
    /// hardware; seeds differ, so fault draws and service times
    /// diverge per node).
    pub node: MachineConfig,
    /// The inter-node network model.
    pub link: NodeLink,
    /// Placement strategy for the front-end dispatcher.
    pub balancer: BalancerKind,
    /// Dispatch weight per node for weighted-random placement. Empty
    /// means uniform; otherwise the length must equal `nodes`.
    pub weights: Vec<f64>,
    /// Keep-alive health-poll period; `None` disables polling (nodes
    /// are never suspended and no relocation happens).
    pub keepalive: Option<SimDuration>,
    /// A node is suspended while at least this many of its accelerator
    /// stations sit inside fault-stall windows (clamped to ≥ 1).
    pub suspend_dark_stations: usize,
}

impl ClusterConfig {
    /// A cluster of `nodes` identical machines over a datacenter link,
    /// round-robin placement, keep-alive polling off.
    pub fn new(nodes: usize, node: MachineConfig) -> Self {
        ClusterConfig {
            nodes,
            node,
            link: NodeLink::datacenter(),
            balancer: BalancerKind::RoundRobin,
            weights: Vec::new(),
            keepalive: None,
            suspend_dark_stations: 1,
        }
    }
}

/// Cluster events: a node's machine event tagged with its node id, or
/// the fleet-wide keep-alive tick. Module-private — the outer kernel's
/// vocabulary is an implementation detail.
#[derive(Clone, Debug)]
enum CEv {
    /// Deliver a machine event to node `.0`.
    Node(u16, Ev),
    /// Poll every node's health and re-arm the next tick.
    KeepAlive,
}

/// One node: its machine plus the persistent scratch queue adapting
/// [`Machine::handle`] to the shared outer kernel.
struct NodeSlot {
    machine: Machine,
    scratch: EventQueue<Ev>,
    /// Set by the keep-alive poll while the node looks dark; the
    /// dispatcher routes around suspended nodes.
    suspended: bool,
}

/// The fleet as one discrete-event model. See the module docs.
struct ClusterModel<F> {
    nodes: Vec<NodeSlot>,
    link: NodeLink,
    balancer: &'static dyn Balancer,
    weights: Vec<f64>,
    rr_cursor: usize,
    rng: SimRng,
    /// Undispatched arrivals, reversed so the admission chain pops the
    /// earliest next (same discipline as the machine's own list).
    pending: Vec<Arrival>,
    keepalive: Option<SimDuration>,
    suspend_dark_stations: usize,
    health: HealthReport,
    /// Reused buffer for the per-decision live-load snapshot.
    live_scratch: Vec<u64>,
    observe: F,
}

impl<F> ClusterModel<F> {
    /// Places the next pending arrival: consult the balancer, route
    /// around suspended nodes, push the payload onto the target
    /// machine. Returns the event for the caller to schedule into the
    /// outer queue — `None` once the arrival list is exhausted.
    fn dispatch_next(&mut self, now: SimTime) -> Option<(SimTime, u16, u32)> {
        let arrival = self.pending.pop()?;
        self.live_scratch.clear();
        self.live_scratch
            .extend(self.nodes.iter().map(|n| n.machine.live_requests()));
        let balancer = self.balancer;
        let preferred = {
            let mut view = PlacementView {
                live: &self.live_scratch,
                weights: &self.weights,
                rr_cursor: &mut self.rr_cursor,
                rng: &mut self.rng,
            };
            balancer.pick(&mut view, &arrival)
        };
        debug_assert!(preferred < self.nodes.len(), "balancer picked {preferred}");
        let (target, hops) = if self.nodes[preferred].suspended {
            // Walk forward from the preferred node to the next healthy
            // one; if the whole fleet is dark, the preferred node keeps
            // the work (it will queue behind the stall).
            let healthy = (1..self.nodes.len())
                .map(|d| (preferred + d) % self.nodes.len())
                .find(|&i| !self.nodes[i].suspended);
            match healthy {
                Some(t) => {
                    self.health.relocations += 1;
                    (t, 1 + self.link.relocation_extra_hops)
                }
                None => (preferred, 1),
            }
        } else {
            (preferred, 1)
        };
        // FIFO dispatch-queue semantics: the wire delay is paid from
        // the arrival instant, but admission never precedes the
        // dispatch decision itself.
        let at = (arrival.at + self.link.delay(hops)).max(now);
        self.health.dispatched[target] += 1;
        let local = self.nodes[target].machine.push_external_arrival(arrival);
        Some((at, target as u16, local))
    }

    /// Keep-alive round: re-arm the next tick, then poll every node's
    /// dark-station count against the suspension threshold.
    fn on_keepalive(&mut self, now: SimTime, outer: &mut EventQueue<CEv>) {
        self.health.polls += 1;
        let tick = self
            .keepalive
            .expect("keep-alive tick fired with polling disabled");
        outer.schedule_at(now + tick, CEv::KeepAlive);
        let threshold = self.suspend_dark_stations.max(1);
        for node in &mut self.nodes {
            let unhealthy = node.machine.dark_stations(now) >= threshold;
            if unhealthy != node.suspended {
                node.suspended = unhealthy;
                if unhealthy {
                    self.health.suspensions += 1;
                } else {
                    self.health.recoveries += 1;
                }
            }
        }
    }
}

impl<F: FnMut(SimTime, u16, &Ev)> Model for ClusterModel<F> {
    type Event = CEv;

    fn handle(&mut self, now: SimTime, event: CEv, outer: &mut EventQueue<CEv>) {
        match event {
            CEv::Node(i, ev) => {
                (self.observe)(now, i, &ev);
                let is_arrive = matches!(ev, Ev::Arrive(_));
                let node = &mut self.nodes[i as usize];
                node.scratch.sync_to(now);
                node.machine.handle(now, ev, &mut node.scratch);
                // Chain the global admission sequence BEFORE draining:
                // a bare machine's on_arrive schedules the next Arrive
                // first and its own follow-ons after, and the
                // differential tests pin that exact sequence.
                if is_arrive {
                    if let Some((at, target, local)) = self.dispatch_next(now) {
                        outer.schedule_at(at, CEv::Node(target, Ev::Arrive(local)));
                    }
                }
                let node = &mut self.nodes[i as usize];
                node.scratch
                    .drain_pending(|at, ev| outer.schedule_at(at, CEv::Node(i, ev)));
            }
            CEv::KeepAlive => self.on_keepalive(now, outer),
        }
    }
}

/// Entry points for cluster runs (the fleet-level analog of
/// [`Machine::run_workload`] and friends).
pub struct Cluster;

impl Cluster {
    /// Convenience runner: one Poisson arrival stream at
    /// `rps_per_service` for each service, placed across the fleet.
    ///
    /// ```
    /// use accelflow_core::cluster::{Cluster, ClusterConfig};
    /// use accelflow_core::machine::MachineConfig;
    /// use accelflow_core::policy::Policy;
    /// use accelflow_core::request::{CallSpec, ServiceSpec, StageSpec};
    /// use accelflow_sim::time::SimDuration;
    /// use accelflow_trace::templates::TemplateId;
    ///
    /// let svc = ServiceSpec::new(
    ///     "Ping",
    ///     vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
    /// );
    /// let mut node = MachineConfig::new(Policy::AccelFlow);
    /// node.warmup = SimDuration::from_millis(1);
    /// let cfg = ClusterConfig::new(2, node);
    /// let report =
    ///     Cluster::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(5), 7);
    /// assert!(report.offered() > 0);
    /// assert!(report.completion_ratio() > 0.99);
    /// ```
    pub fn run_workload(
        cfg: &ClusterConfig,
        services: &[ServiceSpec],
        rps_per_service: f64,
        duration: SimDuration,
        seed: u64,
    ) -> ClusterReport {
        let timing = {
            let mut t = ServiceTimeModel::calibrated(cfg.node.arch.core_clock);
            t.set_speedup_scale(cfg.node.speedup_scale);
            t
        };
        let lib = TraceLibrary::standard();
        let arrivals = poisson_arrivals(services, &lib, &timing, rps_per_service, duration, seed);
        Self::run_arrivals(cfg, services, arrivals, duration, seed)
    }

    /// Runs a pre-generated arrival list through the fleet.
    pub fn run_arrivals(
        cfg: &ClusterConfig,
        services: &[ServiceSpec],
        arrivals: Vec<Arrival>,
        duration: SimDuration,
        seed: u64,
    ) -> ClusterReport {
        Self::run_arrivals_observed(cfg, services, arrivals, duration, seed, |_, _, _| {})
    }

    /// [`Cluster::run_arrivals`] with a per-node event observer:
    /// `observe(now, node, event)` fires for every delivered node
    /// event, in delivery order, before the node handles it. Read-only
    /// — this anchors the cluster↔machine differential tests the same
    /// way [`Machine::run_arrivals_observed`] anchors the golden
    /// snapshots.
    ///
    /// One-shot wrapper over [`ClusterRun`]; hold the run open instead
    /// when you need mid-run checkpoints.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.nodes` is zero or `cfg.weights` is non-empty
    /// with a length other than `cfg.nodes`.
    pub fn run_arrivals_observed(
        cfg: &ClusterConfig,
        services: &[ServiceSpec],
        arrivals: Vec<Arrival>,
        duration: SimDuration,
        seed: u64,
        observe: impl FnMut(SimTime, u16, &Ev),
    ) -> ClusterReport {
        ClusterRun::start(cfg, services, arrivals, duration, seed, observe).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::request::{CallSpec, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn ping() -> ServiceSpec {
        ServiceSpec::new("Ping", vec![StageSpec::Call(CallSpec::new(TemplateId::T1))])
    }

    fn node_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.audit = true;
        cfg
    }

    #[test]
    fn link_delay_components() {
        let zero = NodeLink::zero();
        assert_eq!(zero.delay(1), SimDuration::ZERO);
        assert_eq!(zero.delay(4), SimDuration::ZERO);
        let dc = NodeLink::datacenter();
        let one = dc.delay(1);
        let three = dc.delay(3);
        // Serialization is paid once; hops scale linearly.
        assert_eq!(
            three.as_picos() - one.as_picos(),
            2 * dc.hop_latency.as_picos()
        );
        assert!(one > dc.hop_latency, "serialization term must be non-zero");
    }

    #[test]
    fn fleet_completes_offered_load() {
        let cfg = ClusterConfig::new(3, node_cfg());
        let report = Cluster::run_workload(&cfg, &[ping()], 600.0, SimDuration::from_millis(5), 7);
        assert!(report.offered() > 0);
        assert!(report.completion_ratio() > 0.99, "{report:?}");
        assert_eq!(report.clamped, 0, "cluster layer must never time-travel");
        // Round-robin spreads a uniform stream near-evenly.
        assert!(report.dispatch_imbalance() < 1.5);
        // Every dispatched arrival is accounted to some node.
        let dispatched: u64 = report.health.dispatched.iter().sum();
        let admitted: u64 = report
            .per_node
            .iter()
            .flat_map(|r| &r.per_service)
            .map(|s| s.offered)
            .sum();
        assert!(dispatched >= admitted, "{dispatched} < {admitted}");
        for node in &report.per_node {
            assert!(node.audit.is_clean(), "{:?}", node.audit);
        }
    }

    #[test]
    fn every_balancer_runs_and_dispatches_everything() {
        for kind in BalancerKind::ALL {
            let mut cfg = ClusterConfig::new(4, node_cfg());
            cfg.balancer = kind;
            let report =
                Cluster::run_workload(&cfg, &[ping()], 400.0, SimDuration::from_millis(4), 9);
            assert!(report.completed() > 0, "{kind} completed nothing");
            assert_eq!(report.health.relocations, 0, "no faults, no relocation");
        }
    }

    #[test]
    fn keepalive_polls_at_the_configured_period() {
        let mut cfg = ClusterConfig::new(2, node_cfg());
        cfg.keepalive = Some(SimDuration::from_micros(500));
        let report = Cluster::run_workload(&cfg, &[ping()], 200.0, SimDuration::from_millis(4), 5);
        // 4 ms window + 30 ms drain at 0.5 ms/tick: the poll count lands
        // in the mid-tens; pin the order of magnitude, not the exact
        // count (the final tick races the drain deadline).
        assert!(
            (30..=80).contains(&report.health.polls),
            "polls = {}",
            report.health.polls
        );
        assert_eq!(report.health.suspensions, 0, "no faults, no suspensions");
    }

    #[test]
    fn per_node_control_arms_and_aggregates() {
        let mut node = node_cfg();
        node.instances_per_accel = 4;
        node.control.rate_limit = Some(crate::control::RateLimit {
            tokens_per_sec: 20_000.0,
            burst: 4.0,
        });
        node.control.autoscaler = Some(crate::control::AutoscalerConfig::static_at(2));
        let cfg = ClusterConfig::new(3, node);
        let report =
            Cluster::run_workload(&cfg, &[ping()], 150_000.0, SimDuration::from_millis(4), 21);
        let control = report.control();
        // Each node's ingress throttles independently...
        assert!(report.per_node.iter().all(|n| n.control.rate_limited > 0));
        // ...and the fleet view sums them.
        assert_eq!(
            control.rate_limited,
            report.per_node.iter().map(|n| n.control.rate_limited).sum()
        );
        assert!(control.admitted > 0);
        // The per-node tick chains ran (armed through the outer kernel).
        assert!(control.scaler_samples > 0, "{control:?}");
        assert!(control.scaler_dark_time > SimDuration::ZERO);
        for node in &report.per_node {
            assert!(node.audit.is_clean(), "{:?}", node.audit);
        }
    }

    #[test]
    #[should_panic(expected = "weights must match the node count")]
    fn mismatched_weights_are_rejected() {
        let mut cfg = ClusterConfig::new(3, node_cfg());
        cfg.weights = vec![1.0, 2.0];
        let _ = Cluster::run_workload(&cfg, &[ping()], 100.0, SimDuration::from_millis(2), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_is_rejected() {
        let cfg = ClusterConfig::new(0, node_cfg());
        let _ = Cluster::run_workload(&cfg, &[ping()], 100.0, SimDuration::from_millis(2), 1);
    }
}
