//! Deterministic fault injection: the fault model and its knobs.
//!
//! The machine models the happy path plus a single timeout escape
//! hatch; real hardware hiccups. This module defines the seeded fault
//! injector the machine runs when any [`FaultConfig`] rate is nonzero:
//! five fault classes, each a Poisson process scheduled through the
//! ordinary event kernel, drawn from an RNG stream *isolated* from the
//! workload streams so that
//!
//! 1. same seed ⇒ byte-identical runs (fault times, targets, and
//!    durations included), and
//! 2. all rates zero ⇒ the event stream is bit-identical to a build
//!    without the injector (zero draws, zero events — enforced against
//!    the committed golden hashes in `tests/golden_events.rs`).
//!
//! The classes (see `docs/RESILIENCE.md` for the full model):
//!
//! | class | effect |
//! |---|---|
//! | [`FaultClass::AccelStall`] | a station's PEs go dark for a drawn duration; in-flight jobs fail |
//! | [`FaultClass::DmaError`] | the next A-DMA transfer delivers a corrupt payload |
//! | [`FaultClass::TlbShootdown`] | every accelerator TLB is invalidated at once |
//! | [`FaultClass::QueueDrop`] | one SRAM input-queue entry is lost |
//! | [`FaultClass::AtmMiss`] | the next synchronous ATM read misses and refetches |
//!
//! Recovery (bounded retry with exponential backoff, sibling
//! re-dispatch around dark stations, CPU degradation when retries
//! exhaust) lives in the machine's `resilience` handler module; every
//! decision is counted here in [`FaultStats`].
//!
//! # Example
//!
//! A faulty run stays conservation-clean under the invariant auditor,
//! and every injection/recovery decision is counted:
//!
//! ```
//! use accelflow_core::faults::FaultConfig;
//! use accelflow_core::machine::{Machine, MachineConfig};
//! use accelflow_core::policy::Policy;
//! use accelflow_core::request::{CallSpec, ServiceSpec, StageSpec};
//! use accelflow_sim::time::SimDuration;
//! use accelflow_trace::templates::TemplateId;
//!
//! let mut cfg = MachineConfig::new(Policy::AccelFlow);
//! cfg.warmup = SimDuration::from_millis(1);
//! cfg.audit = true;
//! cfg.faults = FaultConfig::uniform(20.0); // ~20 faults/ms per class
//! let svc = ServiceSpec::new(
//!     "Ping",
//!     vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
//! );
//! let report =
//!     Machine::run_workload(&cfg, &[svc], 2_000.0, SimDuration::from_millis(4), 7);
//! assert!(report.audit.is_clean(), "no request lost or double-completed");
//! assert!(report.faults.injected() > 0);
//! ```

use accelflow_arch::availability::AvailabilitySet;
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::SimDuration;

/// Salt folded into the machine seed for the injector's private RNG
/// stream, so fault draws never perturb the workload streams.
const FAULT_STREAM_SALT: u64 = 0xFA01_75EE_D000_0001;

/// Ceiling on a drawn inter-fault gap (one simulated hour): keeps the
/// picosecond conversion of an extreme exponential tail from
/// overflowing while staying far past any realistic run length.
const MAX_GAP_PS: f64 = 3.6e15;

/// Ceiling on an exponential-backoff delay, so a deep retry chain
/// cannot push a re-dispatch past the drain window.
const MAX_BACKOFF: SimDuration = SimDuration::from_millis(1);

/// One of the injectable fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A whole accelerator station's PEs go dark for a drawn duration
    /// (microcode assist, thermal trip, transient hang); jobs running
    /// there fail and recover.
    AccelStall,
    /// The next A-DMA transfer delivers a corrupt payload, which is
    /// discarded at the destination.
    DmaError,
    /// A TLB shootdown storm: every accelerator TLB is invalidated at
    /// once; subsequent translations pay the IOMMU walk again.
    TlbShootdown,
    /// One occupied SRAM input-queue entry is lost (bit flip, dropped
    /// credit) before it ever reaches a PE.
    QueueDrop,
    /// The next synchronous ATM read misses its cached trace and
    /// refetches from memory, paying [`FaultConfig::atm_miss_penalty`].
    AtmMiss,
}

impl FaultClass {
    /// Every class, in injection-scheduling order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::AccelStall,
        FaultClass::DmaError,
        FaultClass::TlbShootdown,
        FaultClass::QueueDrop,
        FaultClass::AtmMiss,
    ];

    /// Short stable identifier (telemetry, tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::AccelStall => "accel_stall",
            FaultClass::DmaError => "dma_error",
            FaultClass::TlbShootdown => "tlb_shootdown",
            FaultClass::QueueDrop => "queue_drop",
            FaultClass::AtmMiss => "atm_miss",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fault-injection knobs, part of
/// [`MachineConfig`](crate::machine::MachineConfig). The default is
/// fully disabled (all rates zero): the machine then creates no
/// injector state, draws nothing, and schedules nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Mean [`AccelStall`](FaultClass::AccelStall) injections per
    /// simulated millisecond (Poisson).
    pub stall_rate_per_ms: f64,
    /// Mean [`DmaError`](FaultClass::DmaError) injections per ms.
    pub dma_error_rate_per_ms: f64,
    /// Mean [`TlbShootdown`](FaultClass::TlbShootdown) injections per ms.
    pub tlb_shootdown_rate_per_ms: f64,
    /// Mean [`QueueDrop`](FaultClass::QueueDrop) injections per ms.
    pub queue_drop_rate_per_ms: f64,
    /// Mean [`AtmMiss`](FaultClass::AtmMiss) injections per ms.
    pub atm_miss_rate_per_ms: f64,
    /// Mean dark duration of one accelerator stall (exponential draw).
    pub stall_duration: SimDuration,
    /// Extra latency of an ATM read whose cached trace was missed (the
    /// refetch from memory).
    pub atm_miss_penalty: SimDuration,
    /// Recovery retries per call position before degrading the rest of
    /// the segment to the CPU fallback.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt (exponential backoff,
    /// capped at 1 ms).
    pub backoff_base: SimDuration,
    /// Extra salt folded into the injector's RNG stream, for running
    /// distinct fault realizations against one workload seed.
    pub seed_salt: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            stall_rate_per_ms: 0.0,
            dma_error_rate_per_ms: 0.0,
            tlb_shootdown_rate_per_ms: 0.0,
            queue_drop_rate_per_ms: 0.0,
            atm_miss_rate_per_ms: 0.0,
            stall_duration: SimDuration::from_micros(50),
            atm_miss_penalty: SimDuration::from_nanos(500),
            max_retries: 3,
            backoff_base: SimDuration::from_micros(2),
            seed_salt: 0,
        }
    }
}

impl FaultConfig {
    /// All classes disabled (the default).
    pub fn disabled() -> Self {
        FaultConfig::default()
    }

    /// Every class at the same `rate_per_ms` (handy for sweeps; zero
    /// yields a disabled config).
    pub fn uniform(rate_per_ms: f64) -> Self {
        FaultConfig {
            stall_rate_per_ms: rate_per_ms,
            dma_error_rate_per_ms: rate_per_ms,
            tlb_shootdown_rate_per_ms: rate_per_ms,
            queue_drop_rate_per_ms: rate_per_ms,
            atm_miss_rate_per_ms: rate_per_ms,
            ..FaultConfig::default()
        }
    }

    /// Only `class` enabled, at `rate_per_ms` (per-class degradation
    /// curves).
    pub fn only(class: FaultClass, rate_per_ms: f64) -> Self {
        let mut cfg = FaultConfig::default();
        *cfg.rate_of_mut(class) = rate_per_ms;
        cfg
    }

    /// The configured rate of one class, in injections per ms.
    pub fn rate_of(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::AccelStall => self.stall_rate_per_ms,
            FaultClass::DmaError => self.dma_error_rate_per_ms,
            FaultClass::TlbShootdown => self.tlb_shootdown_rate_per_ms,
            FaultClass::QueueDrop => self.queue_drop_rate_per_ms,
            FaultClass::AtmMiss => self.atm_miss_rate_per_ms,
        }
    }

    fn rate_of_mut(&mut self, class: FaultClass) -> &mut f64 {
        match class {
            FaultClass::AccelStall => &mut self.stall_rate_per_ms,
            FaultClass::DmaError => &mut self.dma_error_rate_per_ms,
            FaultClass::TlbShootdown => &mut self.tlb_shootdown_rate_per_ms,
            FaultClass::QueueDrop => &mut self.queue_drop_rate_per_ms,
            FaultClass::AtmMiss => &mut self.atm_miss_rate_per_ms,
        }
    }

    /// Whether any class can fire. `false` means the machine builds no
    /// injector at all — the no-faults hot path is untouched.
    pub fn enabled(&self) -> bool {
        FaultClass::ALL.iter().any(|&c| self.rate_of(c) > 0.0)
    }

    /// Backoff before retry number `attempt + 1` (zero-based):
    /// `backoff_base << attempt`, capped at 1 ms.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        let shifted = self
            .backoff_base
            .as_picos()
            .saturating_mul(1u64 << attempt.min(20));
        SimDuration::from_picos(shifted).min(MAX_BACKOFF)
    }
}

/// Fault-injection and recovery counters, part of
/// [`RunReport`](crate::stats::RunReport). All zeros when injection was
/// disabled. `docs/METRICS.md` documents every field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Accelerator stalls injected.
    pub stalls: u64,
    /// Cumulative station dark time across all stalls (overlapping
    /// windows counted once).
    pub stall_dark_time: SimDuration,
    /// In-flight PE jobs failed by stalls (each routes to recovery).
    pub jobs_failed: u64,
    /// A-DMA transfer errors injected (armed; each fails the next
    /// transfer).
    pub dma_errors: u64,
    /// TLB shootdown storms injected.
    pub tlb_shootdowns: u64,
    /// TLB entries invalidated by shootdowns, summed over stations.
    pub tlb_entries_flushed: u64,
    /// SRAM queue entries dropped.
    pub queue_drops: u64,
    /// ATM fetch misses injected (armed; each slows the next
    /// synchronous read).
    pub atm_misses: u64,
    /// Armed ATM misses actually consumed by a read (the rest were
    /// still pending when the run drained).
    pub atm_refetches: u64,
    /// Recovery retries issued (bounded per call position by
    /// [`FaultConfig::max_retries`]).
    pub retries: u64,
    /// Total backoff delay inserted ahead of retries.
    pub backoff_time: SimDuration,
    /// Admissions routed to a sibling instance because the preferred
    /// station was dark.
    pub redispatches: u64,
    /// Calls degraded to the CPU fallback after exhausting retries.
    pub degraded: u64,
}

impl FaultStats {
    /// Total faults injected across every class.
    pub fn injected(&self) -> u64 {
        self.stalls + self.dma_errors + self.tlb_shootdowns + self.queue_drops + self.atm_misses
    }

    /// Total recovery decisions taken (retries plus degradations).
    pub fn recovery_actions(&self) -> u64 {
        self.retries + self.degraded
    }
}

/// Live injector state, boxed behind an `Option` in the machine so the
/// disabled hot path pays one `None` check.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) cfg: FaultConfig,
    /// The injector's private stream; never shared with workload RNGs.
    pub(crate) rng: SimRng,
    /// Per-station dark windows (stall class).
    pub(crate) avail: AvailabilitySet,
    /// Flat `[station][pe]` poison flags: jobs running when a stall
    /// hit; their `PeDone` routes to recovery instead of `after_hop`.
    poisoned: Vec<bool>,
    pes_per_station: usize,
    /// Armed DMA errors, consumed by the next A-DMA transfer.
    pub(crate) pending_dma_errors: u32,
    /// Armed ATM misses, consumed by the next synchronous ATM read.
    pub(crate) pending_atm_misses: u32,
    /// Retry attempts per call-position tag ([`CallAddr::tag`]); pruned
    /// on degrade and at request termination. A flat `(tag, attempts)`
    /// list rather than a `HashMap`: pruning runs on *every* request
    /// termination, and the live set is bounded by in-flight faulted
    /// calls (typically zero to a handful), so a linear scan over a few
    /// contiguous pairs beats hashing — and costs nothing when empty.
    ///
    /// [`CallAddr::tag`]: crate::request::CallAddr
    pub(crate) retries: Vec<(u64, u32)>,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    /// Builds injector state for `stations` stations of
    /// `pes_per_station` PEs each.
    pub(crate) fn new(
        cfg: FaultConfig,
        seed: u64,
        stations: usize,
        pes_per_station: usize,
    ) -> FaultState {
        let rng = SimRng::seed(seed ^ FAULT_STREAM_SALT ^ cfg.seed_salt);
        FaultState {
            cfg,
            rng,
            avail: AvailabilitySet::new(stations),
            poisoned: vec![false; stations * pes_per_station],
            pes_per_station,
            pending_dma_errors: 0,
            pending_atm_misses: 0,
            retries: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Draws the gap to the class's next injection; `None` when the
    /// class is disabled (and then nothing was drawn).
    pub(crate) fn draw_gap(&mut self, class: FaultClass) -> Option<SimDuration> {
        let rate = self.cfg.rate_of(class);
        if rate <= 0.0 {
            return None;
        }
        // rate is per millisecond; 1 ms = 1e9 ps.
        let gap_ps = self.rng.exponential(1e9 / rate).min(MAX_GAP_PS);
        Some(SimDuration::from_picos(gap_ps as u64).max(SimDuration::from_picos(1)))
    }

    /// Marks the job on `(station, pe)` as failed by a stall.
    pub(crate) fn poison(&mut self, station: usize, pe: usize) {
        self.poisoned[station * self.pes_per_station + pe] = true;
    }

    /// Clears and returns the poison flag for `(station, pe)`; called
    /// at every `PeDone` so flags never outlive their job.
    pub(crate) fn take_poisoned(&mut self, station: usize, pe: usize) -> bool {
        std::mem::take(&mut self.poisoned[station * self.pes_per_station + pe])
    }
}

// ----- checkpoint serialization (see docs/CHECKPOINT.md) -----

use accelflow_sim::snapshot::{SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for FaultClass {
    fn save(&self, w: &mut SnapWriter) {
        // Stable one-byte tags, independent of declaration order.
        w.u8(match self {
            FaultClass::AccelStall => 0,
            FaultClass::DmaError => 1,
            FaultClass::TlbShootdown => 2,
            FaultClass::QueueDrop => 3,
            FaultClass::AtmMiss => 4,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => FaultClass::AccelStall,
            1 => FaultClass::DmaError,
            2 => FaultClass::TlbShootdown,
            3 => FaultClass::QueueDrop,
            4 => FaultClass::AtmMiss,
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown FaultClass tag {other}"
                )))
            }
        })
    }
}

impl Snapshot for FaultConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.stall_rate_per_ms);
        w.f64(self.dma_error_rate_per_ms);
        w.f64(self.tlb_shootdown_rate_per_ms);
        w.f64(self.queue_drop_rate_per_ms);
        w.f64(self.atm_miss_rate_per_ms);
        self.stall_duration.save(w);
        self.atm_miss_penalty.save(w);
        w.u32(self.max_retries);
        self.backoff_base.save(w);
        w.u64(self.seed_salt);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultConfig {
            stall_rate_per_ms: r.f64()?,
            dma_error_rate_per_ms: r.f64()?,
            tlb_shootdown_rate_per_ms: r.f64()?,
            queue_drop_rate_per_ms: r.f64()?,
            atm_miss_rate_per_ms: r.f64()?,
            stall_duration: SimDuration::load(r)?,
            atm_miss_penalty: SimDuration::load(r)?,
            max_retries: r.u32()?,
            backoff_base: SimDuration::load(r)?,
            seed_salt: r.u64()?,
        })
    }
}

impl Snapshot for FaultStats {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.stalls);
        self.stall_dark_time.save(w);
        w.u64(self.jobs_failed);
        w.u64(self.dma_errors);
        w.u64(self.tlb_shootdowns);
        w.u64(self.tlb_entries_flushed);
        w.u64(self.queue_drops);
        w.u64(self.atm_misses);
        w.u64(self.atm_refetches);
        w.u64(self.retries);
        self.backoff_time.save(w);
        w.u64(self.redispatches);
        w.u64(self.degraded);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultStats {
            stalls: r.u64()?,
            stall_dark_time: SimDuration::load(r)?,
            jobs_failed: r.u64()?,
            dma_errors: r.u64()?,
            tlb_shootdowns: r.u64()?,
            tlb_entries_flushed: r.u64()?,
            queue_drops: r.u64()?,
            atm_misses: r.u64()?,
            atm_refetches: r.u64()?,
            retries: r.u64()?,
            backoff_time: SimDuration::load(r)?,
            redispatches: r.u64()?,
            degraded: r.u64()?,
        })
    }
}

impl Snapshot for FaultState {
    /// The injector round-trips whole — config, the private RNG stream
    /// position, dark windows, poison flags, armed errors, and retry
    /// bookkeeping — so a restored run replays the exact same fault
    /// realization the straight run would have produced.
    fn save(&self, w: &mut SnapWriter) {
        self.cfg.save(w);
        self.rng.save(w);
        self.avail.save(w);
        self.poisoned.save(w);
        w.usize(self.pes_per_station);
        w.u32(self.pending_dma_errors);
        w.u32(self.pending_atm_misses);
        self.retries.save(w);
        self.stats.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let cfg = FaultConfig::load(r)?;
        let rng = SimRng::load(r)?;
        let avail = AvailabilitySet::load(r)?;
        let poisoned = Vec::<bool>::load(r)?;
        let pes_per_station = r.usize()?;
        if pes_per_station == 0 || poisoned.len() % pes_per_station != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "poison table of {} flags not divisible into stations of {} PEs",
                poisoned.len(),
                pes_per_station
            )));
        }
        Ok(FaultState {
            cfg,
            rng,
            avail,
            poisoned,
            pes_per_station,
            pending_dma_errors: r.u32()?,
            pending_atm_misses: r.u32()?,
            retries: Vec::load(r)?,
            stats: FaultStats::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg, FaultConfig::disabled());
        assert!(!FaultConfig::uniform(0.0).enabled());
        assert!(FaultConfig::uniform(0.1).enabled());
        for class in FaultClass::ALL {
            let only = FaultConfig::only(class, 2.0);
            assert!(only.enabled());
            assert_eq!(only.rate_of(class), 2.0);
            let others: f64 = FaultClass::ALL
                .iter()
                .filter(|&&c| c != class)
                .map(|&c| only.rate_of(c))
                .sum();
            assert_eq!(others, 0.0);
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = FaultConfig::default();
        assert_eq!(cfg.backoff_after(0), SimDuration::from_micros(2));
        assert_eq!(cfg.backoff_after(1), SimDuration::from_micros(4));
        assert_eq!(cfg.backoff_after(2), SimDuration::from_micros(8));
        assert_eq!(cfg.backoff_after(63), MAX_BACKOFF);
    }

    #[test]
    fn gap_draws_are_deterministic_and_rate_sensitive() {
        let mk = || FaultState::new(FaultConfig::uniform(5.0), 42, 9, 8);
        let (mut a, mut b) = (mk(), mk());
        for class in FaultClass::ALL {
            assert_eq!(a.draw_gap(class), b.draw_gap(class));
        }
        // A disabled class draws nothing at all: the stream position of
        // a subsequent enabled draw is unchanged.
        let mut only = FaultState::new(FaultConfig::only(FaultClass::DmaError, 5.0), 42, 9, 8);
        let mut full = FaultState::new(FaultConfig::uniform(5.0), 42, 9, 8);
        assert_eq!(only.draw_gap(FaultClass::AccelStall), None);
        assert_eq!(
            only.draw_gap(FaultClass::DmaError),
            full.draw_gap(FaultClass::AccelStall),
            "skipped classes must not consume RNG state"
        );
    }

    #[test]
    fn seed_salt_shifts_the_stream() {
        let mut base = FaultState::new(FaultConfig::uniform(5.0), 42, 9, 8);
        let mut salted = FaultState::new(
            FaultConfig {
                seed_salt: 1,
                ..FaultConfig::uniform(5.0)
            },
            42,
            9,
            8,
        );
        assert_ne!(
            base.draw_gap(FaultClass::AccelStall),
            salted.draw_gap(FaultClass::AccelStall)
        );
    }

    #[test]
    fn poison_flags_are_taken_once() {
        let mut f = FaultState::new(FaultConfig::uniform(1.0), 1, 3, 4);
        f.poison(2, 3);
        assert!(!f.take_poisoned(2, 2));
        assert!(f.take_poisoned(2, 3));
        assert!(!f.take_poisoned(2, 3), "flag cleared on take");
    }

    #[test]
    fn stats_roll_up() {
        let s = FaultStats {
            stalls: 1,
            dma_errors: 2,
            tlb_shootdowns: 3,
            queue_drops: 4,
            atm_misses: 5,
            retries: 6,
            degraded: 7,
            ..FaultStats::default()
        };
        assert_eq!(s.injected(), 15);
        assert_eq!(s.recovery_actions(), 13);
        assert_eq!(FaultStats::default().injected(), 0);
    }
}
