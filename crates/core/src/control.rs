//! Online traffic control: ingress admission, per-tenant rate
//! limiting, SLO-window tracking, and the telemetry-feedback
//! autoscaler.
//!
//! Open-loop traffic (see `accelflow-workloads::openloop` and
//! `docs/WORKLOADS.md`) keeps offering load no matter how congested
//! the machine gets, so a production server needs *control*: shed or
//! throttle work it cannot serve, and resize itself to the work it
//! can. This module defines the knobs ([`ControlConfig`], part of
//! [`MachineConfig`](crate::machine::MachineConfig)) and the counters
//! ([`ControlStats`], part of [`RunReport`](crate::stats::RunReport))
//! for three mechanisms, all enforced at request ingress or on a
//! periodic scale tick:
//!
//! | mechanism | knob | effect |
//! |---|---|---|
//! | per-tenant rate limiting | [`ControlConfig::rate_limit`] | token bucket per tenant; an empty bucket rejects the arrival |
//! | admission control | [`ControlConfig::max_live`] | arrivals beyond a live-request ceiling are shed |
//! | autoscaling | [`ControlConfig::autoscaler`] | periodic ticks light/darken accelerator stations from windowed utilization |
//! | SLO windows | [`ControlConfig::slo`] | completions are bucketed into fixed windows; a window is *met* when ≥99% beat the target |
//!
//! The autoscaler composes two existing subsystems: the PR 3
//! [`Sampler`] holds its windowed per-kind utilization signal, and the PR 5 darkness machinery (the
//! `station_available` gate and the [`StallEnd`] wake path) is its
//! actuator — a darkened station stops accepting work exactly like a
//! fault-stalled one, and relighting wakes the station's queues
//! through the same event.
//!
//! Like fault injection, the whole subsystem is **disabled by
//! default** and free when off: the machine builds no control state,
//! draws no randomness (control is entirely deterministic — it never
//! draws any), and emits a bit-identical event stream, enforced
//! against the committed golden hashes in `tests/golden_events.rs`.
//!
//! [`StallEnd`]: crate::machine::Ev
//! [`Sampler`]: accelflow_sim::telemetry::Sampler
//!
//! # Example
//!
//! A tight per-tenant budget rejects most of an aggressive open-loop
//! stream while the run stays audit-clean:
//!
//! ```
//! use accelflow_core::control::{ControlConfig, RateLimit};
//! use accelflow_core::machine::{Machine, MachineConfig};
//! use accelflow_core::policy::Policy;
//! use accelflow_core::request::{CallSpec, ServiceSpec, StageSpec};
//! use accelflow_sim::time::SimDuration;
//! use accelflow_trace::templates::TemplateId;
//!
//! let mut cfg = MachineConfig::new(Policy::AccelFlow);
//! cfg.warmup = SimDuration::from_millis(1);
//! cfg.audit = true;
//! cfg.control.rate_limit = Some(RateLimit {
//!     tokens_per_sec: 10_000.0, // well under the 100k rps offered
//!     burst: 4.0,
//! });
//! let svc = ServiceSpec::new(
//!     "Ping",
//!     vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
//! );
//! let report =
//!     Machine::run_workload(&cfg, &[svc], 100_000.0, SimDuration::from_millis(4), 7);
//! assert!(report.audit.is_clean());
//! assert!(report.control.rate_limited > 0);
//! assert!(report.control.admitted > 0);
//! ```

use accelflow_sim::telemetry::Sampler;
use accelflow_sim::time::{SimDuration, SimTime};

/// Per-tenant token-bucket rate limit, enforced at request ingress.
///
/// Each tenant owns a bucket holding up to `burst` tokens, refilled
/// continuously at `tokens_per_sec`; an arrival spends one token or is
/// rejected (counted in [`ControlStats::rate_limited`]). Buckets start
/// full, so a tenant's first `burst` arrivals always pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Sustained per-tenant admission rate (tokens per second).
    pub tokens_per_sec: f64,
    /// Bucket depth: the largest burst admitted at once.
    pub burst: f64,
}

/// Autoscaler knobs: a periodic tick reads windowed per-kind PE
/// utilization and lights or darkens one station per kind per tick.
///
/// With `adaptive` false this is **static provisioning**: the fleet
/// runs with `initial_lit` stations per kind forever — the baseline an
/// adaptive run is compared against in `stats_openloop`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoscalerConfig {
    /// Tick period (also the utilization sampling window).
    pub interval: SimDuration,
    /// Stations of each kind lit at start, clamped to
    /// `1..=instances_per_accel`.
    pub initial_lit: usize,
    /// React to the signal. When false the lit set never changes.
    pub adaptive: bool,
    /// Light one more station of a kind when its windowed utilization
    /// (fraction of lit-PE capacity) exceeds this.
    pub light_above: f64,
    /// Darken one station of a kind when utilization falls below this
    /// (never below one lit station, and only a station whose input
    /// queue is empty — darkening never strands queued work).
    pub darken_below: f64,
}

impl AutoscalerConfig {
    /// Reasonable reactive defaults: 100 µs ticks, start at one lit
    /// station per kind, scale up past 55% utilization, down under 15%.
    pub fn reactive() -> Self {
        AutoscalerConfig {
            interval: SimDuration::from_micros(100),
            initial_lit: 1,
            adaptive: true,
            light_above: 0.55,
            darken_below: 0.15,
        }
    }

    /// Static provisioning at `lit` stations per kind: same ticks and
    /// signal, no actuation.
    pub fn static_at(lit: usize) -> Self {
        AutoscalerConfig {
            interval: SimDuration::from_micros(100),
            initial_lit: lit,
            adaptive: false,
            light_above: f64::INFINITY,
            darken_below: 0.0,
        }
    }
}

/// SLO-window tracking: completed (measured) requests are bucketed
/// into consecutive `window`-long intervals starting at warmup end; a
/// window is **met** when at least 99% of its completions finish
/// within `p99_target`. Windows with no completions are not counted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloTarget {
    /// Window length.
    pub window: SimDuration,
    /// The per-request latency target (the "P99 ≤ target" criterion).
    pub p99_target: SimDuration,
}

/// Online-control knobs, part of
/// [`MachineConfig`](crate::machine::MachineConfig). The default is
/// fully disabled: the machine then builds no control state, the hot
/// path pays one `None` check, and the event stream is bit-identical
/// to a build without the subsystem.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlConfig {
    /// Per-tenant token-bucket rate limiting at ingress.
    pub rate_limit: Option<RateLimit>,
    /// Admission ceiling: arrivals while this many requests are live
    /// are shed (counted in [`ControlStats::shed`]).
    pub max_live: Option<u64>,
    /// Telemetry-feedback station autoscaling.
    pub autoscaler: Option<AutoscalerConfig>,
    /// SLO-window compliance tracking.
    pub slo: Option<SloTarget>,
}

impl ControlConfig {
    /// The all-off default (no state, no cost, golden streams intact).
    pub fn disabled() -> Self {
        ControlConfig::default()
    }

    /// True when any mechanism is configured.
    pub fn enabled(&self) -> bool {
        self.rate_limit.is_some()
            || self.max_live.is_some()
            || self.autoscaler.is_some()
            || self.slo.is_some()
    }
}

/// Control counters reported in [`RunReport`](crate::stats::RunReport)
/// (all zeros when control is disabled). Ingress counters cover the
/// measurement window only, matching `offered`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlStats {
    /// Arrivals admitted past every ingress check.
    pub admitted: u64,
    /// Arrivals rejected by a tenant's empty token bucket.
    pub rate_limited: u64,
    /// Arrivals shed by the live-request admission ceiling.
    pub shed: u64,
    /// SLO windows observed (windows with ≥1 completion).
    pub slo_windows: u64,
    /// SLO windows where ≥99% of completions beat the target.
    pub slo_windows_met: u64,
    /// Stations relit by the autoscaler.
    pub scale_ups: u64,
    /// Stations darkened by the autoscaler.
    pub scale_downs: u64,
    /// Autoscaler ticks taken (rows in its utilization signal).
    pub scaler_samples: u64,
    /// Total station-time spent scaler-dark (per-station dark windows
    /// summed; initial-dark stations meter from time zero).
    pub scaler_dark_time: SimDuration,
}

impl ControlStats {
    /// All ingress rejections (rate-limited plus shed).
    pub fn rejected(&self) -> u64 {
        self.rate_limited + self.shed
    }

    /// Fraction of observed SLO windows met; 1.0 when no window was
    /// observed (an idle run violates nothing).
    pub fn slo_compliance(&self) -> f64 {
        if self.slo_windows == 0 {
            1.0
        } else {
            self.slo_windows_met as f64 / self.slo_windows as f64
        }
    }

    /// Accumulates another node's counters (cluster aggregation).
    pub fn absorb(&mut self, other: &ControlStats) {
        self.admitted += other.admitted;
        self.rate_limited += other.rate_limited;
        self.shed += other.shed;
        self.slo_windows += other.slo_windows;
        self.slo_windows_met += other.slo_windows_met;
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
        self.scaler_samples += other.scaler_samples;
        self.scaler_dark_time += other.scaler_dark_time;
    }
}

/// One tenant's token bucket.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TokenBucket {
    pub(crate) tokens: f64,
    pub(crate) refilled_at: SimTime,
}

/// Live control state, boxed behind an `Option` on the machine (the
/// [`FaultState`](crate::faults::FaultState) pattern): `None` when
/// [`ControlConfig`] is disabled, so the hot path pays one branch.
pub(crate) struct ControlState {
    pub(crate) cfg: ControlConfig,
    /// Token buckets dense-indexed by `TenantId.0`, grown on demand.
    pub(crate) buckets: Vec<TokenBucket>,
    /// Per-station lit flags; empty when no autoscaler is configured
    /// (every station then reads as lit).
    pub(crate) lit: Vec<bool>,
    /// When each currently-dark station went dark.
    pub(crate) dark_since: Vec<Option<SimTime>>,
    /// Cumulative per-station busy picoseconds at the previous tick,
    /// differenced into the windowed utilization signal.
    pub(crate) prev_busy: Vec<u64>,
    pub(crate) prev_tick: SimTime,
    /// The PR 3 sampler holding the per-kind utilization signal the
    /// scaling decisions read (one row per tick, `util%:<kind>`
    /// columns).
    pub(crate) signal: Sampler,
    /// Current SLO window: start, completions, completions over target.
    pub(crate) window_start: SimTime,
    pub(crate) window_total: u64,
    pub(crate) window_over: u64,
    pub(crate) stats: ControlStats,
}

impl ControlState {
    pub(crate) fn new(
        cfg: ControlConfig,
        stations: usize,
        instances_per_kind: usize,
        kind_names: &[&'static str],
        warmup_end: SimTime,
    ) -> Self {
        let (lit, dark_since) = match cfg.autoscaler {
            Some(auto) => {
                let keep = auto.initial_lit.clamp(1, instances_per_kind);
                let lit: Vec<bool> = (0..stations)
                    .map(|i| i % instances_per_kind < keep)
                    .collect();
                let dark_since = lit.iter().map(|&l| (!l).then_some(SimTime::ZERO)).collect();
                (lit, dark_since)
            }
            None => (Vec::new(), Vec::new()),
        };
        let columns = kind_names.iter().map(|k| format!("util%:{k}")).collect();
        let interval = cfg
            .autoscaler
            .map(|a| a.interval)
            .unwrap_or(SimDuration::from_millis(1));
        ControlState {
            cfg,
            buckets: Vec::new(),
            lit,
            dark_since,
            prev_busy: vec![0; stations],
            prev_tick: SimTime::ZERO,
            signal: Sampler::new(interval, columns),
            window_start: warmup_end,
            window_total: 0,
            window_over: 0,
            stats: ControlStats::default(),
        }
    }

    /// Whether the scaler may be holding stations dark (the
    /// darkness-aware dispatch paths only scan when this is true).
    #[inline]
    pub(crate) fn scaler_active(&self) -> bool {
        !self.lit.is_empty()
    }

    /// Whether `station` is lit (always true without an autoscaler).
    #[inline]
    pub(crate) fn station_lit(&self, station: usize) -> bool {
        self.lit.is_empty() || self.lit[station]
    }

    /// Spends one token from `tenant`'s bucket, refilling it first.
    /// Returns false (and leaves the bucket untouched) when the bucket
    /// is empty.
    pub(crate) fn take_token(&mut self, tenant: usize, now: SimTime) -> bool {
        let Some(rl) = self.cfg.rate_limit else {
            return true;
        };
        if tenant >= self.buckets.len() {
            self.buckets.resize(
                tenant + 1,
                TokenBucket {
                    tokens: rl.burst,
                    refilled_at: SimTime::ZERO,
                },
            );
        }
        let b = &mut self.buckets[tenant];
        let dt = now.saturating_since(b.refilled_at).as_secs_f64();
        b.tokens = (b.tokens + dt * rl.tokens_per_sec).min(rl.burst);
        b.refilled_at = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Buckets one measured completion into the current SLO window,
    /// finalizing any windows that elapsed since the last completion.
    pub(crate) fn observe_completion(&mut self, now: SimTime, latency: SimDuration) {
        let Some(slo) = self.cfg.slo else { return };
        while now >= self.window_start + slo.window {
            self.finalize_window();
            self.window_start += slo.window;
        }
        self.window_total += 1;
        if latency > slo.p99_target {
            self.window_over += 1;
        }
    }

    /// Closes the current window: a window with completions counts,
    /// and is met when over-target completions stay within 1%.
    fn finalize_window(&mut self) {
        if self.window_total == 0 {
            return;
        }
        self.stats.slo_windows += 1;
        if self.window_over * 100 <= self.window_total {
            self.stats.slo_windows_met += 1;
        }
        self.window_total = 0;
        self.window_over = 0;
    }

    /// End-of-run bookkeeping: close the trailing SLO window and meter
    /// still-dark stations through `now`.
    pub(crate) fn finalize(&mut self, now: SimTime) {
        self.finalize_window();
        for since in self.dark_since.iter_mut() {
            if let Some(at) = since.take() {
                self.stats.scaler_dark_time += now.saturating_since(at);
            }
        }
        self.stats.scaler_samples = self.signal.rows().len() as u64;
    }
}

// ----- checkpoint serialization (see docs/CHECKPOINT.md) -----

use accelflow_sim::snapshot::{SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for RateLimit {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.tokens_per_sec);
        w.f64(self.burst);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RateLimit {
            tokens_per_sec: r.f64()?,
            burst: r.f64()?,
        })
    }
}

impl Snapshot for AutoscalerConfig {
    fn save(&self, w: &mut SnapWriter) {
        self.interval.save(w);
        w.usize(self.initial_lit);
        w.bool(self.adaptive);
        w.f64(self.light_above);
        w.f64(self.darken_below);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(AutoscalerConfig {
            interval: SimDuration::load(r)?,
            initial_lit: r.usize()?,
            adaptive: r.bool()?,
            light_above: r.f64()?,
            darken_below: r.f64()?,
        })
    }
}

impl Snapshot for SloTarget {
    fn save(&self, w: &mut SnapWriter) {
        self.window.save(w);
        self.p99_target.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SloTarget {
            window: SimDuration::load(r)?,
            p99_target: SimDuration::load(r)?,
        })
    }
}

impl Snapshot for ControlConfig {
    fn save(&self, w: &mut SnapWriter) {
        self.rate_limit.save(w);
        self.max_live.save(w);
        self.autoscaler.save(w);
        self.slo.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ControlConfig {
            rate_limit: Option::load(r)?,
            max_live: Option::load(r)?,
            autoscaler: Option::load(r)?,
            slo: Option::load(r)?,
        })
    }
}

impl Snapshot for ControlStats {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.admitted);
        w.u64(self.rate_limited);
        w.u64(self.shed);
        w.u64(self.slo_windows);
        w.u64(self.slo_windows_met);
        w.u64(self.scale_ups);
        w.u64(self.scale_downs);
        w.u64(self.scaler_samples);
        self.scaler_dark_time.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ControlStats {
            admitted: r.u64()?,
            rate_limited: r.u64()?,
            shed: r.u64()?,
            slo_windows: r.u64()?,
            slo_windows_met: r.u64()?,
            scale_ups: r.u64()?,
            scale_downs: r.u64()?,
            scaler_samples: r.u64()?,
            scaler_dark_time: SimDuration::load(r)?,
        })
    }
}

impl Snapshot for TokenBucket {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.tokens);
        self.refilled_at.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TokenBucket {
            tokens: r.f64()?,
            refilled_at: SimTime::load(r)?,
        })
    }
}

impl Snapshot for ControlState {
    /// Control is deterministic (no RNG), so round-tripping the buckets,
    /// lit set, windowed signal, and the open SLO window is everything a
    /// restored run needs to keep making identical decisions.
    fn save(&self, w: &mut SnapWriter) {
        self.cfg.save(w);
        self.buckets.save(w);
        self.lit.save(w);
        self.dark_since.save(w);
        self.prev_busy.save(w);
        self.prev_tick.save(w);
        self.signal.save(w);
        self.window_start.save(w);
        w.u64(self.window_total);
        w.u64(self.window_over);
        self.stats.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let state = ControlState {
            cfg: ControlConfig::load(r)?,
            buckets: Vec::load(r)?,
            lit: Vec::load(r)?,
            dark_since: Vec::load(r)?,
            prev_busy: Vec::load(r)?,
            prev_tick: SimTime::load(r)?,
            signal: Sampler::load(r)?,
            window_start: SimTime::load(r)?,
            window_total: r.u64()?,
            window_over: r.u64()?,
            stats: ControlStats::load(r)?,
        };
        if state.lit.len() != state.dark_since.len() {
            return Err(SnapshotError::Corrupt(format!(
                "lit set of {} stations with {} dark-since entries",
                state.lit.len(),
                state.dark_since.len()
            )));
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inert() {
        assert!(!ControlConfig::disabled().enabled());
        let mut cfg = ControlConfig::disabled();
        cfg.max_live = Some(10);
        assert!(cfg.enabled());
    }

    fn state(cfg: ControlConfig) -> ControlState {
        ControlState::new(cfg, 6, 3, &["a", "b"], SimTime::ZERO)
    }

    #[test]
    fn token_bucket_refills_at_rate() {
        let mut c = state(ControlConfig {
            rate_limit: Some(RateLimit {
                tokens_per_sec: 1_000.0,
                burst: 2.0,
            }),
            ..ControlConfig::default()
        });
        let t0 = SimTime::ZERO;
        // Burst of 2 passes, the third is dry.
        assert!(c.take_token(0, t0));
        assert!(c.take_token(0, t0));
        assert!(!c.take_token(0, t0));
        // 1 ms at 1000 tokens/s refills one token.
        let t1 = t0 + SimDuration::from_millis(1);
        assert!(c.take_token(0, t1));
        assert!(!c.take_token(0, t1));
        // Tenants are independent.
        assert!(c.take_token(7, t0));
    }

    #[test]
    fn slo_windows_count_and_skip_empty() {
        let mut c = state(ControlConfig {
            slo: Some(SloTarget {
                window: SimDuration::from_millis(1),
                p99_target: SimDuration::from_micros(100),
            }),
            ..ControlConfig::default()
        });
        let ms = SimDuration::from_millis(1);
        // Window 0: 3 fast completions -> met.
        for _ in 0..3 {
            c.observe_completion(SimTime::ZERO + SimDuration::from_micros(100), ms / 100);
        }
        // Windows 1..4 empty; window 5: one slow completion -> missed.
        c.observe_completion(SimTime::ZERO + ms * 5 + ms / 2, ms);
        c.finalize(SimTime::ZERO + ms * 6);
        assert_eq!(c.stats.slo_windows, 2, "empty windows are not counted");
        assert_eq!(c.stats.slo_windows_met, 1);
        assert!((c.stats.slo_compliance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn initial_lit_set_and_dark_metering() {
        let mut c = state(ControlConfig {
            autoscaler: Some(AutoscalerConfig {
                initial_lit: 2,
                ..AutoscalerConfig::reactive()
            }),
            ..ControlConfig::default()
        });
        // 2 kinds × 3 instances: stations 0,1,3,4 lit; 2,5 dark.
        assert!(c.scaler_active());
        for i in [0usize, 1, 3, 4] {
            assert!(c.station_lit(i), "station {i}");
        }
        for i in [2usize, 5] {
            assert!(!c.station_lit(i), "station {i}");
        }
        c.finalize(SimTime::ZERO + SimDuration::from_micros(10));
        assert_eq!(
            c.stats.scaler_dark_time,
            SimDuration::from_micros(20),
            "two stations dark from t=0"
        );
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = ControlStats {
            admitted: 5,
            rate_limited: 1,
            shed: 2,
            slo_windows: 4,
            slo_windows_met: 3,
            ..ControlStats::default()
        };
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.admitted, 10);
        assert_eq!(a.rejected(), 6);
        assert!((a.slo_compliance() - 0.75).abs() < 1e-12);
    }
}
