//! Payload movement: core→accelerator submission, the inter-hop
//! transition after a PE completes, and external-response re-entry.
//!
//! [`MachineCtx::after_hop`] is the policy-defining moment of the
//! model: the completed hop's output must reach its next station (or
//! the originating core). The *orchestration cost* of the transition
//! and the *transfer mechanism* both come from the policy's
//! [`Orchestrator`](super::Orchestrator) — dispatcher glue + A-DMA for
//! the AccelFlow family, manager interrupts for RELIEF, core
//! staging for CPU-Centric/Cohort, nothing for Ideal.

use accelflow_arch::topology::Endpoint;
use accelflow_sim::engine::EventQueue;
use accelflow_sim::telemetry::CompId;
use accelflow_sim::time::{SimDuration, SimTime};

use crate::request::{CallAddr, SegmentEnd};

use super::{Ev, HopInfo, MachineCtx, TransferMode};

impl MachineCtx {
    /// Core-side submission of a fresh trace call (non-Non-acc
    /// policies): the policy's submit cost on a core, then a DMA of the
    /// payload into the first accelerator — unless the call enters as a
    /// network message, which lands at TCP directly.
    pub(crate) fn submit_call(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        let entry_is_network = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            call.segments[0].entry_is_network
        };
        if entry_is_network {
            // The message lands at TCP directly; no core submission.
            queue.schedule(SimDuration::ZERO, Ev::HopArrive(addr));
        } else {
            // The core prepares and submits the trace (Enqueue + A-DMA
            // programming for AccelFlow; heavier software paths for the
            // baselines).
            let submit = self.orch.submit_cost(&self.cfg.arch);
            let booking = if submit.is_zero() {
                None
            } else {
                Some(self.cores.acquire(now, submit))
            };
            if let Some(b) = &booking {
                self.energy.add_core_busy(submit);
                self.charge(addr.req, |bd| bd.orchestration += submit);
                let _ = b;
            }
            let start = booking.map(|b| b.finish).unwrap_or(now);
            // DMA the payload from the core into the first accelerator.
            let (first_kind, bytes) = {
                let r = self.req(addr.req);
                let call = Self::call_of(&r.program, addr.step, addr.par);
                let hop = &call.segments[0].hops[0];
                (hop.kind, hop.in_bytes)
            };
            let booking = self.dma.transfer(
                start,
                &self.net,
                Endpoint::Cores,
                Self::endpoint(first_kind),
                bytes,
            );
            self.energy.add_dma_bytes(bytes);
            self.energy.add_noc_bytes(bytes);
            let comm = booking.finish.saturating_since(start);
            self.charge(addr.req, |bd| bd.communication += comm);
            self.tel_span(
                booking.start,
                CompId::DMA,
                "dma",
                booking.finish.saturating_since(booking.start),
                addr.req,
                bytes,
            );
            if self.dma_transfer_faulted(booking.finish, addr, queue) {
                return;
            }
            queue.schedule_at(booking.finish, Ev::HopArrive(addr));
        }
    }

    /// The policy-defining transition after a completed hop. `accel` is
    /// the station whose output dispatcher runs the transition (only
    /// telemetry attribution uses it).
    pub(crate) fn after_hop(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        queue: &mut EventQueue<Ev>,
    ) {
        let info = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            let hop = &seg.hops[addr.hop as usize];
            let is_last = addr.hop as usize + 1 == seg.hops.len();
            HopInfo {
                kind: hop.kind,
                out_bytes: hop.out_bytes,
                glue_instrs: hop.glue_instrs,
                branches_after: hop.branches_after,
                transform_after: hop.transform_after,
                fork_after: hop.fork_after,
                next_kind: if is_last {
                    None
                } else {
                    Some(seg.hops[addr.hop as usize + 1].kind)
                },
                end: seg.end,
                has_next_segment: (addr.seg as usize + 1) < call.segments.len(),
            }
        };

        // --- Orchestration cost of the transition ---
        let orch = self.orch;
        let t = orch.hop_transition(self, now, addr, accel, &info);

        // --- Fork a result copy to the CPU (T6), in parallel ---
        if info.fork_after {
            let notify = self.cfg.arch.notification_latency();
            self.charge(addr.req, |b| b.communication += notify);
            self.energy.add_noc_bytes(info.out_bytes);
        }

        // --- Move the payload to its next station ---
        if let Some(next) = info.next_kind {
            let next_addr = CallAddr {
                hop: addr.hop + 1,
                ..addr
            };
            let from = Self::endpoint(info.kind);
            let to = Self::endpoint(next);
            match orch.transfer_mode(info.kind, next) {
                TransferMode::Instant => {
                    // Zero-cost orchestration bound: only the raw
                    // interconnect latency, no engine occupancy.
                    let arrive = t + self.net.transfer_time(from, to, info.out_bytes);
                    let comm = arrive.saturating_since(t);
                    self.charge(addr.req, |b| b.communication += comm);
                    queue.schedule_at(arrive, Ev::HopArrive(next_addr));
                }
                TransferMode::StagedViaCore => {
                    // Data staged through the core's memory via the
                    // coherent hierarchy (these designs do not use the
                    // A-DMA engines): two network legs plus the cache
                    // access, pure latency on the request.
                    let legs = self
                        .net
                        .transfer_time(from, Endpoint::Cores, info.out_bytes)
                        + self.net.transfer_time(Endpoint::Cores, to, info.out_bytes)
                        + self.cfg.arch.payload_access(info.out_bytes);
                    self.bus.stream(t, info.out_bytes / 2);
                    self.energy.add_noc_bytes(2 * info.out_bytes);
                    self.charge(addr.req, |b| b.communication += legs);
                    queue.schedule_at(t + legs, Ev::HopArrive(next_addr));
                }
                TransferMode::Dma => {
                    let booking = self.dma.transfer(t, &self.net, from, to, info.out_bytes);
                    self.energy.add_dma_bytes(info.out_bytes);
                    self.energy.add_noc_bytes(info.out_bytes);
                    let comm = booking.finish.saturating_since(t);
                    self.charge(addr.req, |b| b.communication += comm);
                    self.tel_span(
                        booking.start,
                        CompId::DMA,
                        "dma",
                        booking.finish.saturating_since(booking.start),
                        addr.req,
                        info.out_bytes,
                    );
                    if self.dma_transfer_faulted(booking.finish, next_addr, queue) {
                        return;
                    }
                    queue.schedule_at(booking.finish, Ev::HopArrive(next_addr));
                }
            }
            return;
        }

        // --- End of segment ---
        match info.end {
            SegmentEnd::ToCpu => {
                // DMA the result to memory and notify the core.
                let service = self.cfg.arch.payload_access(info.out_bytes)
                    + self
                        .net
                        .transfer_time(Self::endpoint(info.kind), Endpoint::Cores, 0);
                let booking = self.dma.transfer_with_service(t, service, info.out_bytes);
                self.bus.stream(t, info.out_bytes / 2);
                self.energy.add_dma_bytes(info.out_bytes);
                self.tel_span(
                    booking.start,
                    CompId::DMA,
                    "dma",
                    booking.finish.saturating_since(booking.start),
                    addr.req,
                    info.out_bytes,
                );
                let notify = self.cfg.arch.notification_latency();
                let done_at = booking.finish + notify;
                let comm = done_at.saturating_since(t);
                self.charge(addr.req, |b| b.communication += comm);
                // A corrupt result delivery re-runs the hop instead of
                // completing the call.
                if self.dma_transfer_faulted(done_at, addr, queue) {
                    return;
                }
                let error = {
                    let r = self.req(addr.req);
                    let call = Self::call_of(&r.program, addr.step, addr.par);
                    call.segments[addr.seg as usize].trace.name() == "report_error"
                };
                queue.schedule_at(
                    done_at,
                    Ev::CallDone {
                        req: addr.req,
                        step: addr.step,
                        par: addr.par,
                        error,
                    },
                );
            }
            SegmentEnd::Continue => {
                debug_assert!(info.has_next_segment, "Continue requires a next segment");
                // Split subtrace: the dispatcher reads the ATM and
                // forwards to the next segment's first accelerator.
                self.totals.atm_reads += 1;
                let _ = self.lib.atm_mut().load(accelflow_trace::atm::AtmAddr(0));
                self.tel_instant(t, CompId::ATM, "atm_read", addr.req);
                let t2 = t + self.cfg.arch.atm_read_latency + self.atm_read_penalty(t, addr);
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                queue.schedule_at(t2, Ev::HopArrive(next_addr));
            }
            SegmentEnd::AwaitResponse { external } => {
                debug_assert!(
                    info.has_next_segment,
                    "AwaitResponse requires a next segment"
                );
                // AccelFlow: the TCP dispatcher pre-loads the response
                // trace from the ATM (§IV-B). Baselines: the core will
                // re-orchestrate when the response interrupt arrives.
                if orch.preloads_response_trace() {
                    self.totals.atm_reads += 1;
                    let _ = self.lib.atm_mut().load(accelflow_trace::atm::AtmAddr(0));
                    self.tel_instant(t, CompId::ATM, "atm_read", addr.req);
                }
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                self.charge(addr.req, |b| b.external += external);
                self.tel_span(
                    t,
                    CompId::MACHINE,
                    "external",
                    external.min(self.cfg.tcp_timeout),
                    addr.req,
                    0,
                );
                if external >= self.cfg.tcp_timeout {
                    queue.schedule_at(
                        t + self.cfg.tcp_timeout,
                        Ev::Timeout {
                            req: addr.req,
                            step: addr.step,
                            par: addr.par,
                        },
                    );
                } else {
                    queue.schedule_at(t + external, Ev::ExternalArrive(next_addr));
                }
            }
        }
    }

    pub(crate) fn on_external_arrive(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.req_gone(addr.req) {
            return;
        }
        // Response messages re-enter through TCP. In the baselines the
        // core must notice and resubmit the processing chain.
        if self.orch.resubmits_external_response() {
            let submit = self.cfg.arch.cpu_submit_overhead;
            let b = self.cores.acquire(now, submit);
            self.energy.add_core_busy(submit);
            let spent = b.finish.saturating_since(now);
            self.charge(addr.req, |bd| bd.orchestration += spent);
            queue.schedule_at(b.finish, Ev::HopArrive(addr));
        } else {
            queue.schedule(SimDuration::ZERO, Ev::HopArrive(addr));
        }
    }
}
