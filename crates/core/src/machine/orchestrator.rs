//! The per-policy orchestration strategy.
//!
//! Every design point the paper evaluates (Fig 11/13/14) differs from
//! the others only in *who coordinates* inter-accelerator transitions
//! and *how payloads move* — the accelerators, queues, DMA engines,
//! and interconnect are identical. [`Orchestrator`] captures exactly
//! that seam: one stateless strategy object per [`Policy`] variant,
//! consulted by the machine at every decision the policies disagree
//! on. The simulation state itself stays in
//! [`MachineCtx`]; strategies borrow it mutably for
//! the duration of one decision and hold nothing across events, which
//! keeps the event stream bit-for-bit identical to the pre-trait
//! monolith (enforced by `tests/golden_events.rs`).
//!
//! # Contract
//!
//! * Implementations are zero-sized and `'static`; construction goes
//!   through [`orchestrator_for`], the single site that maps `Policy`
//!   to behavior.
//! * [`Orchestrator::hop_transition`] may occupy resources (cores,
//!   the manager) and charge latency, and returns the time at which
//!   the payload is ready to move.
//! * Predicate methods (`cpu_only`, `single_shared_queue`, …) must be
//!   pure: same answer every call, no state.

use accelflow_accel::dispatcher::QueuePolicy;
use accelflow_arch::config::ArchConfig;
use accelflow_sim::telemetry::CompId;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use crate::policy::Policy;
use crate::request::{CallAddr, SegmentEnd};

use super::MachineCtx;

/// How a payload moves between two accelerator stations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferMode {
    /// Raw interconnect latency only — the Ideal bound.
    Instant,
    /// Staged through the core's memory hierarchy (two network legs
    /// plus a cache access); designs without A-DMA engines.
    StagedViaCore,
    /// An A-DMA engine moves the payload station-to-station.
    Dma,
}

/// Snapshot of the completed hop handed to
/// [`Orchestrator::hop_transition`]: everything a strategy may need
/// without re-borrowing the request table.
#[derive(Clone, Copy)]
pub struct HopInfo {
    pub(crate) kind: AccelKind,
    pub(crate) out_bytes: u64,
    pub(crate) glue_instrs: u32,
    pub(crate) branches_after: u8,
    pub(crate) transform_after: bool,
    pub(crate) fork_after: bool,
    pub(crate) next_kind: Option<AccelKind>,
    pub(crate) end: SegmentEnd,
    pub(crate) has_next_segment: bool,
}

/// One design point's coordination strategy. See the module docs for
/// the contract; see `DESIGN.md` §3 for the policy-by-policy values.
pub trait Orchestrator: Sync {
    /// The policy this strategy implements.
    fn policy(&self) -> Policy;

    /// Scheduling discipline of the accelerator input queues.
    fn queue_policy(&self) -> QueuePolicy {
        QueuePolicy::Fifo
    }

    /// Whole segments run on cores; no accelerator is ever touched.
    fn cpu_only(&self) -> bool {
        false
    }

    /// All accelerator types share one queue drained by the manager
    /// (RELIEF base design).
    fn single_shared_queue(&self) -> bool {
        false
    }

    /// Core-side cost of submitting a fresh trace call.
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration;

    /// Manager occupancy paid when a queue entry's Memory-Pointer
    /// payload spills past the inline bytes; `None` when the design
    /// handles spills without the manager.
    fn spill_manager_occupancy(&self, _arch: &ArchConfig) -> Option<SimDuration> {
        None
    }

    /// The orchestration cost of the transition after a completed hop.
    /// May occupy resources and charge latency; returns when the
    /// payload is ready to move on.
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        info: &HopInfo,
    ) -> SimTime;

    /// How the payload travels from `from` to `to`.
    fn transfer_mode(&self, _from: AccelKind, _to: AccelKind) -> TransferMode {
        TransferMode::Dma
    }

    /// The TCP dispatcher pre-loads the response trace from the ATM at
    /// an `AwaitResponse` boundary (§IV-B) instead of leaving it to
    /// the core.
    fn preloads_response_trace(&self) -> bool {
        false
    }

    /// A core must notice and resubmit when an external response
    /// re-enters through TCP (the AccelFlow family re-dispatches in
    /// hardware instead).
    fn resubmits_external_response(&self) -> bool {
        true
    }

    /// A failed trace hop is re-issued by software on a core (paying
    /// the submit overhead per retry). The direct-transfer family
    /// re-issues from the hardware front-end instead — retries cost
    /// only the backoff delay. Consulted by the fault-recovery path;
    /// see `docs/RESILIENCE.md`.
    fn recovery_via_core(&self) -> bool {
        true
    }
}

/// Maps a policy to its strategy object — the one construction site.
pub fn orchestrator_for(policy: Policy) -> &'static dyn Orchestrator {
    match policy {
        Policy::NonAcc => &NonAccOrch,
        Policy::CpuCentric => &CpuCentricOrch,
        Policy::Relief => &ReliefOrch,
        Policy::ReliefPerTypeQ => &ReliefPerTypeQOrch,
        Policy::Direct => &DirectOrch,
        Policy::CntrFlow => &CntrFlowOrch,
        Policy::AccelFlow => &AccelFlowOrch,
        Policy::AccelFlowDeadline => &AccelFlowDeadlineOrch,
        Policy::Cohort => &CohortOrch,
        Policy::Ideal => &IdealOrch,
    }
}

// ----- shared transition helpers -----

/// Output-dispatcher transition (the AccelFlow ablation ladder): the
/// dispatcher executes the glue instructions; rungs that cannot
/// resolve branches or transforms locally bounce to the manager.
fn dispatcher_transition(
    ctx: &mut MachineCtx,
    now: SimTime,
    addr: CallAddr,
    accel: u8,
    info: &HopInfo,
    branches_in_dispatcher: bool,
    transforms_in_dispatcher: bool,
) -> SimTime {
    let mut t = now;
    let td = ctx.dispatcher_time(info.glue_instrs);
    ctx.totals.dispatcher_instrs += info.glue_instrs as u64;
    ctx.totals.dispatches += 1;
    ctx.energy.add_dispatcher_instrs(info.glue_instrs as u64);
    ctx.charge(addr.req, |b| b.orchestration += td);
    ctx.tel_span(
        t,
        CompId::accelerator(accel as u16),
        "glue",
        td,
        addr.req,
        info.glue_instrs as u64,
    );
    t += td;
    // Ablation rungs bounce unresolved work to the manager.
    let needs_manager_branch = info.branches_after > 0 && !branches_in_dispatcher;
    let needs_manager_transform = info.transform_after && !transforms_in_dispatcher;
    if needs_manager_branch || needs_manager_transform {
        let after_irq = t + ctx.cfg.arch.manager_latency;
        let b = ctx
            .manager
            .acquire(after_irq, ctx.cfg.arch.manager_fallback_time);
        let spent = b.finish.saturating_since(t);
        ctx.charge(addr.req, |bd| bd.orchestration += spent);
        ctx.tel_span(
            b.start,
            CompId::MANAGER,
            "manager",
            ctx.cfg.arch.manager_fallback_time,
            addr.req,
            0,
        );
        t = b.finish;
    }
    t
}

/// RELIEF-style transition: every completion interrupts the manager —
/// interrupt-delivery latency plus serialized decision occupancy
/// (§VII-A1).
fn manager_transition(ctx: &mut MachineCtx, now: SimTime, addr: CallAddr) -> SimTime {
    let after_irq = now + ctx.cfg.arch.manager_latency;
    let b = ctx
        .manager
        .acquire(after_irq, ctx.cfg.arch.manager_service_time);
    let spent = b.finish.saturating_since(now);
    ctx.charge(addr.req, |bd| bd.orchestration += spent);
    ctx.totals.manager_busy += ctx.cfg.arch.manager_service_time;
    ctx.tel_span(
        b.start,
        CompId::MANAGER,
        "manager",
        ctx.cfg.arch.manager_service_time,
        addr.req,
        0,
    );
    b.finish
}

// ----- the ten design points -----

/// Software-only baseline: every segment runs on cores.
struct NonAccOrch;

impl Orchestrator for NonAccOrch {
    fn policy(&self) -> Policy {
        Policy::NonAcc
    }
    fn cpu_only(&self) -> bool {
        true
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cpu_submit_overhead
    }
    fn hop_transition(
        &self,
        _ctx: &mut MachineCtx,
        _now: SimTime,
        _addr: CallAddr,
        _accel: u8,
        _info: &HopInfo,
    ) -> SimTime {
        unreachable!("Non-acc runs no accelerator hops")
    }
    fn transfer_mode(&self, _from: AccelKind, _to: AccelKind) -> TransferMode {
        unreachable!("Non-acc runs no accelerator hops")
    }
    fn resubmits_external_response(&self) -> bool {
        // Responses re-enter through the CPU path (ExternalArriveCpu),
        // which never reaches this decision; the software restart cost
        // is part of the segment's CPU time.
        false
    }
}

/// Cores orchestrate every transition via interrupts; data staged
/// through the coherent hierarchy.
struct CpuCentricOrch;

impl Orchestrator for CpuCentricOrch {
    fn policy(&self) -> Policy {
        Policy::CpuCentric
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cpu_submit_overhead
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        _accel: u8,
        _info: &HopInfo,
    ) -> SimTime {
        // Completion interrupts the originating core, which then
        // submits the next invocation.
        let overhead = ctx.cfg.arch.cpu_interrupt_overhead + ctx.cfg.arch.cpu_submit_overhead;
        let b = ctx.cores.acquire(now, overhead);
        ctx.energy.add_core_busy(overhead);
        let spent = b.finish.saturating_since(now);
        ctx.charge(addr.req, |bd| bd.orchestration += spent);
        b.finish
    }
    fn transfer_mode(&self, _from: AccelKind, _to: AccelKind) -> TransferMode {
        TransferMode::StagedViaCore
    }
}

/// RELIEF base: centralized manager, one shared queue for all types.
struct ReliefOrch;

impl Orchestrator for ReliefOrch {
    fn policy(&self) -> Policy {
        Policy::Relief
    }
    fn single_shared_queue(&self) -> bool {
        true
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cpu_submit_overhead
    }
    fn spill_manager_occupancy(&self, arch: &ArchConfig) -> Option<SimDuration> {
        Some(arch.manager_service_time)
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        _accel: u8,
        _info: &HopInfo,
    ) -> SimTime {
        manager_transition(ctx, now, addr)
    }
}

/// RELIEF + per-accelerator-type queues (Fig 13 first rung).
struct ReliefPerTypeQOrch;

impl Orchestrator for ReliefPerTypeQOrch {
    fn policy(&self) -> Policy {
        Policy::ReliefPerTypeQ
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cpu_submit_overhead
    }
    fn spill_manager_occupancy(&self, arch: &ArchConfig) -> Option<SimDuration> {
        Some(arch.manager_service_time)
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        _accel: u8,
        _info: &HopInfo,
    ) -> SimTime {
        manager_transition(ctx, now, addr)
    }
}

/// Direct transfers rung: dispatcher glue + A-DMA, but branches and
/// transforms still bounce to the manager.
struct DirectOrch;

impl Orchestrator for DirectOrch {
    fn policy(&self) -> Policy {
        Policy::Direct
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cycles(arch.enqueue_cycles)
    }
    fn spill_manager_occupancy(&self, arch: &ArchConfig) -> Option<SimDuration> {
        Some(arch.manager_fallback_time)
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        info: &HopInfo,
    ) -> SimTime {
        dispatcher_transition(ctx, now, addr, accel, info, false, false)
    }
    fn preloads_response_trace(&self) -> bool {
        true
    }
    fn recovery_via_core(&self) -> bool {
        false
    }
}

/// Control-flow rung: dispatchers also resolve branches.
struct CntrFlowOrch;

impl Orchestrator for CntrFlowOrch {
    fn policy(&self) -> Policy {
        Policy::CntrFlow
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cycles(arch.enqueue_cycles)
    }
    fn spill_manager_occupancy(&self, arch: &ArchConfig) -> Option<SimDuration> {
        Some(arch.manager_fallback_time)
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        info: &HopInfo,
    ) -> SimTime {
        dispatcher_transition(ctx, now, addr, accel, info, true, false)
    }
    fn preloads_response_trace(&self) -> bool {
        true
    }
    fn recovery_via_core(&self) -> bool {
        false
    }
}

/// The full AccelFlow design: dispatchers run glue, branches, and
/// transforms; FIFO input queues.
struct AccelFlowOrch;

impl Orchestrator for AccelFlowOrch {
    fn policy(&self) -> Policy {
        Policy::AccelFlow
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cycles(arch.enqueue_cycles)
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        info: &HopInfo,
    ) -> SimTime {
        dispatcher_transition(ctx, now, addr, accel, info, true, true)
    }
    fn preloads_response_trace(&self) -> bool {
        true
    }
    fn resubmits_external_response(&self) -> bool {
        false
    }
    fn recovery_via_core(&self) -> bool {
        false
    }
}

/// AccelFlow + deadline-aware queue scheduling (§IV-C).
struct AccelFlowDeadlineOrch;

impl Orchestrator for AccelFlowDeadlineOrch {
    fn policy(&self) -> Policy {
        Policy::AccelFlowDeadline
    }
    fn queue_policy(&self) -> QueuePolicy {
        QueuePolicy::DeadlineAware
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cycles(arch.enqueue_cycles)
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        info: &HopInfo,
    ) -> SimTime {
        dispatcher_transition(ctx, now, addr, accel, info, true, true)
    }
    fn preloads_response_trace(&self) -> bool {
        true
    }
    fn resubmits_external_response(&self) -> bool {
        false
    }
    fn recovery_via_core(&self) -> bool {
        false
    }
}

/// Cohort-style software queues: linked producer/consumer pairs hand
/// off through the LLC; everything else falls back to the cores.
struct CohortOrch;

impl Orchestrator for CohortOrch {
    fn policy(&self) -> Policy {
        Policy::Cohort
    }
    fn submit_cost(&self, arch: &ArchConfig) -> SimDuration {
        arch.cohort_queue_overhead
    }
    fn hop_transition(
        &self,
        ctx: &mut MachineCtx,
        now: SimTime,
        addr: CallAddr,
        _accel: u8,
        info: &HopInfo,
    ) -> SimTime {
        let linked = info
            .next_kind
            .map(|n| Policy::cohort_linked(info.kind, n))
            .unwrap_or(false);
        if linked {
            // Producer/consumer software queue in the LLC.
            let hand = ctx.cfg.arch.cycles(2.0 * ctx.cfg.arch.llc_latency_cycles);
            ctx.charge(addr.req, |bd| bd.orchestration += hand);
            now + hand
        } else {
            // Unlinked hops fall back to core orchestration (Cohort
            // "otherwise relies on the cores"): the core polls the
            // software queue, runs the glue, and resubmits —
            // interrupt-free but the same software path as CPU-Centric
            // minus the interrupt entry.
            let overhead = ctx.cfg.arch.cohort_queue_overhead + ctx.cfg.arch.cpu_submit_overhead;
            let b = ctx.cores.acquire(now, overhead);
            ctx.energy.add_core_busy(overhead);
            let spent = b.finish.saturating_since(now);
            ctx.charge(addr.req, |bd| bd.orchestration += spent);
            b.finish
        }
    }
    fn transfer_mode(&self, from: AccelKind, to: AccelKind) -> TransferMode {
        if Policy::cohort_linked(from, to) {
            TransferMode::Dma
        } else {
            TransferMode::StagedViaCore
        }
    }
}

/// Zero-overhead orchestration bound: transitions are free, payloads
/// move at raw interconnect latency.
struct IdealOrch;

impl Orchestrator for IdealOrch {
    fn policy(&self) -> Policy {
        Policy::Ideal
    }
    fn submit_cost(&self, _arch: &ArchConfig) -> SimDuration {
        SimDuration::ZERO
    }
    fn hop_transition(
        &self,
        _ctx: &mut MachineCtx,
        now: SimTime,
        _addr: CallAddr,
        _accel: u8,
        _info: &HopInfo,
    ) -> SimTime {
        now
    }
    fn transfer_mode(&self, _from: AccelKind, _to: AccelKind) -> TransferMode {
        TransferMode::Instant
    }
    fn resubmits_external_response(&self) -> bool {
        false
    }
    fn recovery_via_core(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVERY_POLICY: [Policy; 10] = [
        Policy::NonAcc,
        Policy::CpuCentric,
        Policy::Relief,
        Policy::ReliefPerTypeQ,
        Policy::Direct,
        Policy::CntrFlow,
        Policy::AccelFlow,
        Policy::AccelFlowDeadline,
        Policy::Cohort,
        Policy::Ideal,
    ];

    #[test]
    fn orchestrator_for_agrees_with_policy_predicates() {
        for p in EVERY_POLICY {
            let o = orchestrator_for(p);
            assert_eq!(o.policy(), p);
            assert_eq!(o.queue_policy(), p.queue_policy());
            assert_eq!(o.cpu_only(), p == Policy::NonAcc);
            assert_eq!(o.single_shared_queue(), p.single_shared_queue());
            // Designs with a centralized manager pay spill occupancy.
            assert_eq!(
                o.spill_manager_occupancy(&ArchConfig::default()).is_some(),
                p.uses_manager()
            );
            // ATM preload is the direct-transfer family minus Ideal.
            assert_eq!(
                o.preloads_response_trace(),
                p.direct_transfers() && p != Policy::Ideal
            );
            // Cores resubmit responses wherever software coordinates.
            assert_eq!(
                o.resubmits_external_response(),
                p.core_orchestrated() || p.uses_manager()
            );
            // Fault recovery re-issues from hardware exactly where the
            // design has direct transfers (a hardware front-end).
            assert_eq!(o.recovery_via_core(), !p.direct_transfers());
        }
    }
}
