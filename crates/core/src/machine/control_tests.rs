//! Integration tests for the online-control subsystem: ingress rate
//! limiting and shedding, SLO-window tracking, and the
//! telemetry-feedback autoscaler (see [`crate::control`]).

use super::*;
use crate::control::{AutoscalerConfig, RateLimit, SloTarget};
use crate::request::{CallSpec, ServiceSpec, StageSpec};
use accelflow_trace::templates::TemplateId;

fn ping_service() -> ServiceSpec {
    ServiceSpec::new(
        "Ping",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    )
}

fn base_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    cfg.audit = true;
    cfg
}

#[test]
fn rate_limit_rejects_and_preserves_conservation() {
    let mut cfg = base_cfg();
    cfg.control.rate_limit = Some(RateLimit {
        tokens_per_sec: 20_000.0,
        burst: 5.0,
    });
    let r = Machine::run_workload(
        &cfg,
        &[ping_service()],
        100_000.0,
        SimDuration::from_millis(5),
        11,
    );
    assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
    assert!(r.control.rate_limited > 0, "{:?}", r.control);
    assert!(r.control.admitted > 0);
    assert_eq!(r.control.shed, 0);
    // Rejected arrivals never enter the machine: offered counts only
    // the admitted (measured) ones, so request conservation holds.
    assert_eq!(r.offered(), r.control.admitted);
    assert!(r.completion_ratio() > 0.99, "{}", r.completion_ratio());
}

#[test]
fn admission_ceiling_sheds_under_overload() {
    let mut cfg = base_cfg();
    cfg.control.max_live = Some(4);
    let r = Machine::run_workload(
        &cfg,
        &[ping_service()],
        200_000.0,
        SimDuration::from_millis(5),
        13,
    );
    assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
    assert!(r.control.shed > 0, "{:?}", r.control);
    assert_eq!(r.control.rate_limited, 0);
    assert_eq!(r.offered(), r.control.admitted);
    // Shedding keeps the machine uncongested: everything admitted
    // completes.
    assert!(r.completion_ratio() > 0.99, "{}", r.completion_ratio());
}

#[test]
fn slo_windows_are_tracked_and_target_sensitive() {
    let mut cfg = base_cfg();
    // A generous target: every window met.
    cfg.control.slo = Some(SloTarget {
        window: SimDuration::from_millis(1),
        p99_target: SimDuration::from_millis(50),
    });
    let r = Machine::run_workload(
        &cfg,
        &[ping_service()],
        5_000.0,
        SimDuration::from_millis(10),
        17,
    );
    assert!(r.control.slo_windows >= 5, "{:?}", r.control);
    assert_eq!(r.control.slo_windows_met, r.control.slo_windows);
    assert!((r.control.slo_compliance() - 1.0).abs() < 1e-12);

    // An impossible target: no window met; everything else identical
    // (SLO tracking is passive — same admissions, same completions).
    let mut tight = base_cfg();
    tight.control.slo = Some(SloTarget {
        window: SimDuration::from_millis(1),
        p99_target: SimDuration::from_nanos(1),
    });
    let t = Machine::run_workload(
        &tight,
        &[ping_service()],
        5_000.0,
        SimDuration::from_millis(10),
        17,
    );
    assert_eq!(t.control.slo_windows, r.control.slo_windows);
    assert_eq!(t.control.slo_windows_met, 0);
    assert_eq!(t.offered(), r.offered());
    assert_eq!(t.completed(), r.completed());
}

#[test]
fn autoscaler_lights_stations_under_load() {
    let mut cfg = base_cfg();
    cfg.instances_per_accel = 4;
    // A low light-up threshold: the single initially-lit station of
    // each kind crosses it quickly (stations have many PEs, so whole-
    // station utilization is a slow signal at moderate load).
    cfg.control.autoscaler = Some(AutoscalerConfig {
        light_above: 0.02,
        darken_below: 0.0,
        ..AutoscalerConfig::reactive()
    });
    let r = Machine::run_workload(
        &cfg,
        &[ping_service()],
        60_000.0,
        SimDuration::from_millis(10),
        19,
    );
    assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
    assert!(r.control.scale_ups > 0, "{:?}", r.control);
    assert!(r.control.scaler_samples > 0);
    // Stations that started dark were metered until relit (or run end).
    assert!(r.control.scaler_dark_time > SimDuration::ZERO);
    assert!(r.completion_ratio() > 0.9, "{}", r.completion_ratio());
}

#[test]
fn autoscaler_darkens_idle_stations() {
    let mut cfg = base_cfg();
    cfg.instances_per_accel = 4;
    cfg.control.autoscaler = Some(AutoscalerConfig {
        initial_lit: 4,
        ..AutoscalerConfig::reactive()
    });
    // Light load: a fully-lit fleet runs far under the darken threshold.
    let r = Machine::run_workload(
        &cfg,
        &[ping_service()],
        500.0,
        SimDuration::from_millis(10),
        23,
    );
    assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
    assert!(r.control.scale_downs > 0, "{:?}", r.control);
    assert!(r.control.scaler_dark_time > SimDuration::ZERO);
    assert!(r.completion_ratio() > 0.99, "{}", r.completion_ratio());
}

#[test]
fn static_provisioning_never_actuates() {
    let mut cfg = base_cfg();
    cfg.instances_per_accel = 4;
    cfg.control.autoscaler = Some(AutoscalerConfig::static_at(2));
    let r = Machine::run_workload(
        &cfg,
        &[ping_service()],
        5_000.0,
        SimDuration::from_millis(10),
        29,
    );
    assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
    assert_eq!(r.control.scale_ups, 0);
    assert_eq!(r.control.scale_downs, 0);
    assert!(r.control.scaler_samples > 0, "signal still sampled");
    // The two never-lit stations per kind are metered dark end-to-end.
    assert!(r.control.scaler_dark_time > SimDuration::ZERO);
    assert!(r.completion_ratio() > 0.99, "{}", r.completion_ratio());
}

#[test]
fn control_runs_are_deterministic_per_seed() {
    let mut cfg = base_cfg();
    cfg.instances_per_accel = 2;
    cfg.control.rate_limit = Some(RateLimit {
        tokens_per_sec: 30_000.0,
        burst: 8.0,
    });
    cfg.control.autoscaler = Some(AutoscalerConfig::reactive());
    cfg.control.slo = Some(SloTarget {
        window: SimDuration::from_millis(1),
        p99_target: SimDuration::from_micros(500),
    });
    let run = |seed| {
        Machine::run_workload(
            &cfg,
            &[ping_service()],
            50_000.0,
            SimDuration::from_millis(5),
            seed,
        )
    };
    let (a, b) = (run(31), run(31));
    assert_eq!(a.control, b.control);
    assert_eq!(a.offered(), b.offered());
    assert_eq!(a.completed(), b.completed());
    // Admission *counts* are pinned by the token budget regardless of
    // seed; the completed-latency distribution is not.
    let c = run(32);
    assert_ne!(
        a.aggregate_latency().percentile_duration(99.0),
        c.aggregate_latency().percentile_duration(99.0),
        "different seeds must differ"
    );
}
