//! Accounting: latency-breakdown charging, telemetry emission and
//! sampling, invariant-audit hooks, and the end-of-run report.
//!
//! Everything here is *passive* — these hooks observe the model but
//! never schedule events or occupy resources, so enabling audit or
//! telemetry cannot perturb the simulated event sequence (determinism
//! stays bit-for-bit; see `docs/METRICS.md`).

use accelflow_sim::telemetry::{CompId, Sampler, Telemetry, TelemetryReport};
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use crate::stats::RunReport;

use super::{MachineConfig, MachineCtx};

/// Telemetry capture state, boxed behind an `Option` so the disabled
/// hot path pays one `None` check per emission site.
pub(crate) struct TelState {
    pub(crate) sink: Telemetry,
    pub(crate) sampler: Sampler,
    /// Cumulative per-station busy picoseconds at the previous sample,
    /// differenced into windowed utilization.
    pub(crate) prev_busy: Vec<u64>,
    pub(crate) prev_at: SimTime,
}

impl TelState {
    /// Builds the capture state (labels + sampler columns) when the
    /// config enables telemetry; `None` otherwise.
    pub(crate) fn for_config(
        cfg: &MachineConfig,
        accels: &[accelflow_accel::accelerator::Accelerator],
    ) -> Option<Box<TelState>> {
        let instances = cfg.instances_per_accel;
        cfg.telemetry.then(|| {
            let mut sink = Telemetry::new(cfg.telemetry_capacity);
            for (i, acc) in accels.iter().enumerate() {
                sink.set_label(
                    CompId::accelerator(i as u16),
                    format!("{}#{}", acc.kind().name(), i % instances),
                );
            }
            sink.set_label(CompId::MACHINE, "machine");
            sink.set_label(CompId::DMA, "A-DMA");
            sink.set_label(CompId::MANAGER, "manager");
            sink.set_label(CompId::ATM, "ATM");
            let mut columns = Vec::new();
            for kind in AccelKind::ALL {
                columns.push(format!("util%:{}", kind.name()));
            }
            for kind in AccelKind::ALL {
                columns.push(format!("queue:{}", kind.name()));
            }
            columns.push("busy_dma".into());
            columns.push("tenant_slots".into());
            columns.push("live_reqs".into());
            Box::new(TelState {
                sink,
                sampler: Sampler::new(cfg.telemetry_sample, columns),
                prev_busy: vec![0; accels.len()],
                prev_at: SimTime::ZERO,
            })
        })
    }
}

impl MachineCtx {
    /// Adds to the owning service's latency breakdown, but only for
    /// measured requests (inside the measurement window).
    pub(crate) fn charge(&mut self, req: u32, f: impl FnOnce(&mut crate::stats::Breakdown)) {
        let (measured, svc) = {
            let r = self.req(req);
            (r.measured, r.service.0)
        };
        if measured {
            f(&mut self.stats[svc].breakdown);
        }
    }

    // ----- telemetry hooks -----

    #[inline]
    pub(crate) fn tel_span(
        &mut self,
        at: SimTime,
        comp: CompId,
        name: &'static str,
        dur: SimDuration,
        req: u32,
        arg: u64,
    ) {
        if let Some(t) = self.tel.as_mut() {
            t.sink.span(at, comp, name, dur, Some(req), arg);
        }
    }

    #[inline]
    pub(crate) fn tel_instant(&mut self, at: SimTime, comp: CompId, name: &'static str, req: u32) {
        if let Some(t) = self.tel.as_mut() {
            t.sink.instant(at, comp, name, Some(req));
        }
    }

    /// Instant record with no owning request — fault injections happen
    /// to the machine, not to any one request.
    #[inline]
    pub(crate) fn tel_instant_sys(&mut self, at: SimTime, comp: CompId, name: &'static str) {
        if let Some(t) = self.tel.as_mut() {
            t.sink.instant(at, comp, name, None);
        }
    }

    /// Instant record carrying a payload in `arg` (e.g. the packed
    /// step/par call position on `call_done` and `timeout` records).
    #[inline]
    pub(crate) fn tel_instant_arg(
        &mut self,
        at: SimTime,
        comp: CompId,
        name: &'static str,
        req: u32,
        arg: u64,
    ) {
        if let Some(t) = self.tel.as_mut() {
            t.sink.instant_arg(at, comp, name, Some(req), arg);
        }
    }

    /// Captures one row of the telemetry time series when a sampling
    /// window has elapsed. Called from `handle` on event delivery (not
    /// from scheduled events), so enabling telemetry cannot change the
    /// model's event sequence — determinism is preserved bit-for-bit.
    pub(crate) fn sample_telemetry(&mut self, now: SimTime) {
        let MachineCtx {
            tel,
            accels,
            dma,
            cfg,
            tenant_active,
            live,
            ..
        } = self;
        let Some(t) = tel.as_mut() else { return };
        if !t.sampler.due(now) {
            return;
        }
        let window = now.saturating_since(t.prev_at).as_picos();
        let instances = cfg.instances_per_accel;
        let mut values = Vec::with_capacity(t.sampler.columns().len());
        // Windowed per-kind PE utilization, in percent.
        for kind in 0..AccelKind::COUNT {
            let mut delta = 0u64;
            let mut pes = 0u64;
            let range = kind * instances..(kind + 1) * instances;
            for (acc, prev) in accels[range.clone()].iter().zip(&mut t.prev_busy[range]) {
                let busy = acc.busy_time().as_picos();
                delta += busy - *prev;
                *prev = busy;
                pes += acc.pe_count() as u64;
            }
            values.push((delta * 100).checked_div(window * pes).unwrap_or(0));
        }
        // Instantaneous per-kind input-queue occupancy (incl. overflow).
        for kind in 0..AccelKind::COUNT {
            let backlog: u64 = (kind * instances..(kind + 1) * instances)
                .map(|i| accels[i].input().backlog() as u64)
                .sum();
            values.push(backlog);
        }
        values.push(dma.busy_engines(now) as u64);
        values.push(tenant_active.iter().map(|&n| n as u64).sum());
        values.push(*live);
        // Mirror the headline series as counter records so the Chrome
        // timeline carries them too.
        let occupancy: u64 = values[AccelKind::COUNT..2 * AccelKind::COUNT].iter().sum();
        t.sink.counter(now, CompId::MACHINE, "live_reqs", *live);
        t.sink.counter(
            now,
            CompId::DMA,
            "busy_engines",
            values[2 * AccelKind::COUNT],
        );
        t.sink
            .counter(now, CompId::MACHINE, "queued_entries", occupancy);
        t.sampler.push_row(now, values);
        t.prev_at = now;
    }

    // ----- invariant audit hooks -----

    pub(crate) fn audit_pre_event(&mut self, now: SimTime) {
        if let Some(aud) = self.auditor.as_mut() {
            aud.pre_event(now);
        }
    }

    pub(crate) fn audit_post_event(&mut self, now: SimTime) {
        // Destructure for disjoint borrows: the auditor is mutated
        // while the hardware models are read.
        let MachineCtx {
            auditor,
            accels,
            energy,
            dma,
            lib,
            ..
        } = self;
        let Some(aud) = auditor.as_mut() else { return };
        for (i, acc) in accels.iter().enumerate() {
            let q = acc.input();
            aud.check_queue(
                now,
                i,
                q.len(),
                q.capacity(),
                q.overflow_len(),
                q.overflow_capacity(),
                q.overflow_count(),
                q.rejected_count(),
            );
        }
        let (core_busy, accel_busy, events) = energy.activity();
        aud.check_meters(
            now,
            core_busy,
            accel_busy,
            events,
            dma.bytes_moved(),
            lib.atm().reads(),
        );
    }

    // ----- end-of-run report -----

    pub(crate) fn into_report(mut self, now: SimTime, end: SimTime) -> RunReport {
        let n = self.cfg.instances_per_accel;
        for (i, acc) in self.accels.iter().enumerate() {
            let kind = i / n;
            self.totals.accel_utilization[kind] += acc.utilization(now.max(end)) / n as f64;
            self.totals.accel_jobs[kind] += acc.processed();
            self.totals.tlb[kind].0 += acc.tlb().hits();
            self.totals.tlb[kind].1 += acc.tlb().misses();
            self.totals.overflows += acc.input().overflow_count();
            self.totals.enqueue_rejections += acc.input().rejected_count();
            self.totals.tenant_wipes += acc.tenant_wipes();
        }
        self.totals.manager_jobs = self.manager.jobs();
        self.totals.dma_bytes = self.dma.bytes_moved();
        self.totals.atm_reads = self.lib.atm().reads();
        self.totals.energy = self.energy.report(now.max(end));
        let faults = match self.faults.take() {
            Some(f) => {
                let mut s = f.stats;
                s.stall_dark_time = f.avail.total_dark_time();
                // Once the run drained every live request, no retry
                // bookkeeping may remain: an orphaned entry means a
                // call was lost inside the recovery layer.
                if let Some(aud) = self.auditor.as_mut() {
                    aud.check_recovery_drained(now, self.live, f.retries.len() as u64);
                }
                s
            }
            None => crate::faults::FaultStats::default(),
        };
        let control = match self.control.take() {
            Some(mut c) => {
                c.finalize(now);
                c.stats
            }
            None => crate::control::ControlStats::default(),
        };
        let audit = match self.auditor.take() {
            Some(mut aud) => {
                let offered: u64 = self.stats.iter().map(|s| s.offered).sum();
                let completed: u64 = self.stats.iter().map(|s| s.completed).sum();
                aud.finish(now, self.live, &self.tenant_active, offered, completed);
                aud.into_report()
            }
            None => crate::audit::AuditReport::disabled(),
        };
        if cfg!(debug_assertions) && !audit.is_clean() {
            panic!(
                "invariant audit failed ({} violations): {:#?}",
                audit.violation_count, audit.violations
            );
        }
        let telemetry = match self.tel.take() {
            Some(t) => {
                let mut t = *t;
                // Count trailing empty windows (the run horizon may
                // land exactly on a window edge) instead of silently
                // truncating the series.
                t.sampler.close(now);
                t.sink.into_report_with_samples(t.sampler)
            }
            None => TelemetryReport::disabled(),
        };
        RunReport {
            per_service: self.stats,
            totals: self.totals,
            measured: end.saturating_since(self.warmup_end),
            ended_at: now,
            faults,
            control,
            audit,
            telemetry,
        }
    }
}
