//! Accelerator dispatch: input-queue admission, the PE inner loop, and
//! RELIEF's shared-queue scheduling.
//!
//! A payload landing at a station ([`MachineCtx::on_hop_arrive`]) is
//! admitted to an input queue (or bounced to the CPU fallback when
//! every instance rejects it), started on a free PE
//! ([`MachineCtx::begin_pe`]), and completed by
//! [`MachineCtx::on_pe_done`], which hands the policy-defining hop
//! transition to the [`transfer`](super::transfer) module. Designs
//! with a single shared queue (RELIEF) go through
//! [`MachineCtx::dispatch_shared`] instead of per-station queues.

use std::sync::Arc;

use accelflow_accel::queue::{PushOutcome, QueueEntry, RequestId};
use accelflow_sim::engine::EventQueue;
use accelflow_sim::telemetry::CompId;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use crate::request::CallAddr;

use super::{Ev, MachineCtx};

/// A job waiting in RELIEF's single shared queue.
#[derive(Clone, Debug)]
pub(crate) struct SharedJob {
    pub(crate) entry: QueueEntry,
    pub(crate) kind: AccelKind,
}

impl MachineCtx {
    pub(crate) fn on_hop_arrive(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.req_gone(addr.req) {
            return; // e.g. a response arriving after a timeout
        }
        let (kind, entry) = self.make_entry(now, addr);
        if self.orch.single_shared_queue() {
            self.shared_queue.push_back(SharedJob { entry, kind });
            self.energy.add_queue_accesses(1);
            self.dispatch_shared(now, queue);
            return;
        }
        let from_core = addr.hop == 0 && addr.seg == 0 && {
            let r = self.req(addr.req);
            !Self::call_of(&r.program, addr.step, addr.par).segments[0].entry_is_network
        };
        let (station, outcome) = if from_core {
            self.admit_entry_from_core(now, kind, entry)
        } else {
            let station = self.route_station(kind, now);
            (station, self.accels[station].admit_from_dispatcher(entry))
        };
        self.energy.add_queue_accesses(1);
        match outcome {
            PushOutcome::Accepted | PushOutcome::Overflowed => {
                queue.schedule(SimDuration::ZERO, Ev::TryStart(station as u8));
            }
            PushOutcome::Rejected => {
                // Starvation/deadlock escape (§IV-A): fall back to CPU
                // for the rest of the segment.
                self.totals.fallbacks += 1;
                self.tel_instant(now, CompId::MACHINE, "fallback", addr.req);
                self.fallback_segment(now, addr, queue);
            }
        }
    }

    /// Core-side admission: the Enqueue instruction errors on a full
    /// queue, and the core retries each instance of the type before
    /// falling back. When fault injection is live, instances whose PEs
    /// are stalled dark are tried *last* (their queues still buffer
    /// work for `StallEnd`, but an available sibling is preferred —
    /// counted as a re-dispatch).
    fn admit_entry_from_core(
        &mut self,
        now: SimTime,
        kind: AccelKind,
        entry: QueueEntry,
    ) -> (usize, PushOutcome) {
        let mut entry = Some(entry);
        let mut skipped_dark = false;
        for pass in 0..2 {
            for i in self.stations_of(kind) {
                if (pass == 0) != self.station_available(i, now) {
                    if pass == 0 {
                        skipped_dark = true;
                    }
                    continue;
                }
                match self.accels[i].admit_from_core(entry.take().expect("entry present")) {
                    Ok(()) => {
                        if pass == 0 && skipped_dark {
                            if let Some(f) = self.faults.as_mut() {
                                f.stats.redispatches += 1;
                            }
                        }
                        return (i, PushOutcome::Accepted);
                    }
                    Err(back) => entry = Some(back),
                }
            }
            if !self.stations_may_be_dark() {
                break; // no station is ever dark; one pass covers all
            }
        }
        (self.stations_of(kind).start, PushOutcome::Rejected)
    }

    fn make_entry(&self, now: SimTime, addr: CallAddr) -> (AccelKind, QueueEntry) {
        let r = self.req(addr.req);
        let call = Self::call_of(&r.program, addr.step, addr.par);
        let seg = &call.segments[addr.seg as usize];
        let hop = &seg.hops[addr.hop as usize];
        let entry = QueueEntry {
            request: RequestId(addr.req as u64),
            tenant: r.tenant,
            trace: Arc::clone(&seg.trace),
            pm: hop.pm,
            data_bytes: hop.in_bytes,
            flags: seg.flags,
            vaddr: call.vaddr + ((addr.seg as u64) << 12),
            deadline: r.deadline,
            priority: r.program.priority,
            enqueued_at: now,
            origin_core: 0,
            tag: addr.tag(),
        };
        (hop.kind, entry)
    }

    /// How far RELIEF's manager can look past the head of its shared
    /// queue for a runnable job. The manager schedules out of one
    /// queue but is not strictly FIFO-blocked (otherwise Fig 13's
    /// PerAccTypeQ step would be worth far more than the paper's 6.8%);
    /// a bounded scan window models its reordering ability.
    const SHARED_QUEUE_WINDOW: usize = 12;

    /// RELIEF base: one shared queue for all accelerator types, with
    /// bounded look-ahead (residual head-of-line blocking).
    pub(crate) fn dispatch_shared(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        loop {
            let pick = self
                .shared_queue
                .iter()
                .take(Self::SHARED_QUEUE_WINDOW)
                .position(|job| {
                    self.stations_of(job.kind)
                        .any(|i| self.accels[i].has_free_pe() && self.station_available(i, now))
                });
            let Some(pos) = pick else { return };
            let job = self.shared_queue.remove(pos).expect("position exists");
            let idx = self
                .stations_of(job.kind)
                .find(|&i| self.accels[i].has_free_pe() && self.station_available(i, now))
                .expect("checked a free PE exists");
            let admitted = self.accels[idx].admit_from_dispatcher(job.entry);
            debug_assert_ne!(
                admitted,
                PushOutcome::Rejected,
                "free-PE accel has queue space"
            );
            if let Some(started) = self.accels[idx].start_next(now) {
                self.begin_pe(now, idx, started, queue);
            }
        }
    }

    pub(crate) fn on_try_start(&mut self, now: SimTime, accel: u8, queue: &mut EventQueue<Ev>) {
        let idx = accel as usize;
        if !self.station_available(idx, now) {
            return; // PEs stalled dark; StallEnd re-issues TryStart
        }
        while let Some(started) = self.accels[idx].start_next(now) {
            self.begin_pe(now, idx, started, queue);
        }
    }

    fn begin_pe(
        &mut self,
        now: SimTime,
        accel_idx: usize,
        started: accelflow_accel::accelerator::StartedJob,
        queue: &mut EventQueue<Ev>,
    ) {
        let addr = CallAddr::from_tag(started.entry.tag);
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_pe_start(now, accel_idx);
        }
        if self.req_gone(addr.req) {
            // Owner gave up (timeout); release the PE immediately.
            self.accels[accel_idx].complete(started.pe, SimDuration::ZERO);
            queue.schedule(SimDuration::ZERO, Ev::TryStart(accel_idx as u8));
            return;
        }
        let entry = &started.entry;
        let kind = self.accels[accel_idx].kind();
        let inline = entry.inline_bytes(self.cfg.arch.queue_entry_inline_bytes);
        let spilled = entry.spilled_bytes(self.cfg.arch.queue_entry_inline_bytes);

        // 1. Load inputs into the scratchpad.
        let mut load = self.cfg.arch.queue_to_scratchpad(inline);
        // 2. Memory-Pointer data comes through the coherent hierarchy.
        if spilled > 0 {
            load += self.cfg.arch.payload_access(spilled);
            let dram = spilled / 2; // coherent read, partially cached
            self.bus.stream(now, dram);
            // Designs with a centralized manager bounce Memory-Pointer
            // payloads to it (the final AccelFlow rung moves this into
            // the dispatchers); the occupancy each design pays is the
            // orchestrator's call.
            if let Some(occupancy) = self.orch.spill_manager_occupancy(&self.cfg.arch) {
                let b = self
                    .manager
                    .acquire(now + self.cfg.arch.manager_latency, occupancy);
                let wait = b.finish.saturating_since(now);
                self.charge(addr.req, |bd| bd.orchestration += wait);
                self.tel_span(b.start, CompId::MANAGER, "manager", occupancy, addr.req, 0);
                load += wait;
            }
        }
        // 3. Address translation through the accelerator TLB/IOMMU.
        let pid = accelflow_arch::tlb::ProcessId(entry.tenant.0 as u32);
        let (tlb_lat, _misses) =
            self.accels[accel_idx]
                .tlb_mut()
                .translate_range(pid, entry.vaddr, entry.data_bytes);
        // 4. Tenant isolation: wipe PE state between tenants (§IV-D).
        let wipe = if started.tenant_wipe {
            self.cfg
                .arch
                .queue_to_scratchpad(self.cfg.arch.scratchpad_bytes)
        } else {
            SimDuration::ZERO
        };
        // 5. The compute phase C/S.
        let compute = self.timing.accel_time(kind, entry.data_bytes);

        // Rare page fault: the accelerator stops and the OS handles it.
        let fault = if self.rng.chance(self.cfg.page_fault_prob) {
            self.totals.page_faults += 1;
            let b = self.cores.acquire(now, self.cfg.arch.exception_handling);
            self.energy.add_core_busy(self.cfg.arch.exception_handling);
            b.finish.saturating_since(now)
        } else {
            SimDuration::ZERO
        };

        let busy = load + tlb_lat + wipe + compute + fault;
        self.energy.add_accel_busy(busy);
        self.charge(addr.req, |b| {
            b.accel += compute;
            b.communication += load + tlb_lat;
            b.orchestration += wipe + fault;
        });
        let station = CompId::accelerator(accel_idx as u16);
        self.tel_span(
            now,
            station,
            "pe",
            busy,
            addr.req,
            started.queueing.as_picos(),
        );
        if started.tenant_wipe {
            self.tel_instant(now, station, "tenant_wipe", addr.req);
        }
        queue.schedule(
            busy,
            Ev::PeDone {
                addr,
                accel: accel_idx as u8,
                pe: started.pe as u8,
                busy_ps: busy.as_picos(),
            },
        );
    }

    pub(crate) fn on_pe_done(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        accel: u8,
        pe: u8,
        busy_ps: u64,
        queue: &mut EventQueue<Ev>,
    ) {
        // Take the poison flag unconditionally (before any early
        // return) so it never outlives this PE occupancy.
        let failed = self.pe_job_poisoned(accel as usize, pe as usize);
        self.accels[accel as usize].complete(pe as usize, SimDuration::from_picos(busy_ps));
        // Free PE: more queued work may start.
        if self.orch.single_shared_queue() {
            self.dispatch_shared(now, queue);
        }
        queue.schedule(SimDuration::ZERO, Ev::TryStart(accel));
        if self.req_gone(addr.req) {
            return;
        }
        if failed {
            // A stall killed this job mid-flight: its output is void;
            // the hop re-enters through recovery instead of moving on.
            self.tel_instant(
                now,
                CompId::accelerator(accel as u16),
                "pe_job_failed",
                addr.req,
            );
            self.recover_call(now, addr, queue);
            return;
        }
        self.after_hop(now, addr, accel, queue);
    }
}
