//! Software execution paths: the Non-acc baseline (every segment runs
//! on a core) and the CPU fallback that absorbs work when every
//! instance of an accelerator type rejects an admission (§IV-A).
//!
//! Both paths converge on [`MachineCtx::on_fallback_done`], which
//! re-enters the normal segment-end handling — the only difference
//! from the accelerated path being that continuation hops stay on the
//! CPU for cpu-only orchestrators.

use accelflow_sim::engine::EventQueue;
use accelflow_sim::time::{SimDuration, SimTime};

use crate::request::{CallAddr, SegmentEnd};

use super::{Ev, MachineCtx};

impl MachineCtx {
    /// Non-acc path: the whole segment is CPU work.
    pub(crate) fn start_segment_on_cpu(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        queue: &mut EventQueue<Ev>,
    ) {
        // An external response may arrive after a timeout terminated
        // the request.
        if self.req_gone(addr.req) {
            return;
        }
        let work = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            seg.hops
                .iter()
                .map(|h| self.timing.cpu_time(h.kind, h.in_bytes))
                .sum::<SimDuration>()
        };
        let booking = self.cores.acquire(now, work);
        self.energy.add_core_busy(work);
        self.charge(addr.req, |b| b.cpu += work);
        queue.schedule_at(booking.finish, Ev::FallbackDone(addr));
    }

    /// CPU fallback: execute the rest of the segment in software.
    pub(crate) fn fallback_segment(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        queue: &mut EventQueue<Ev>,
    ) {
        let work = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            seg.hops[addr.hop as usize..]
                .iter()
                .map(|h| self.timing.cpu_time(h.kind, h.in_bytes))
                .sum::<SimDuration>()
        };
        let booking = self.cores.acquire(now, work);
        self.energy.add_core_busy(work);
        self.charge(addr.req, |b| b.cpu += work);
        queue.schedule_at(booking.finish, Ev::FallbackDone(addr));
    }

    pub(crate) fn on_fallback_done(
        &mut self,
        now: SimTime,
        addr: CallAddr,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.req_gone(addr.req) {
            return;
        }
        let (end, has_next, is_error) = {
            let r = self.req(addr.req);
            let call = Self::call_of(&r.program, addr.step, addr.par);
            let seg = &call.segments[addr.seg as usize];
            (
                seg.end,
                (addr.seg as usize + 1) < call.segments.len(),
                seg.trace.name() == "report_error",
            )
        };
        match end {
            SegmentEnd::ToCpu => {
                queue.schedule(
                    SimDuration::ZERO,
                    Ev::CallDone {
                        req: addr.req,
                        step: addr.step,
                        par: addr.par,
                        error: is_error,
                    },
                );
            }
            SegmentEnd::Continue => {
                debug_assert!(has_next);
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                if self.orch.cpu_only() {
                    self.start_segment_on_cpu(now, next_addr, queue);
                } else {
                    queue.schedule(SimDuration::ZERO, Ev::HopArrive(next_addr));
                }
            }
            SegmentEnd::AwaitResponse { external } => {
                debug_assert!(has_next);
                self.charge(addr.req, |b| b.external += external);
                let next_addr = CallAddr {
                    seg: addr.seg + 1,
                    hop: 0,
                    ..addr
                };
                if external >= self.cfg.tcp_timeout {
                    queue.schedule_at(
                        now + self.cfg.tcp_timeout,
                        Ev::Timeout {
                            req: addr.req,
                            step: addr.step,
                            par: addr.par,
                        },
                    );
                } else if self.orch.cpu_only() {
                    queue.schedule_at(now + external, Ev::ExternalArriveCpu(next_addr));
                } else {
                    queue.schedule_at(now + external, Ev::ExternalArrive(next_addr));
                }
            }
        }
    }
}
