//! Integration tests for the machine: end-to-end runs across policies,
//! instance scaling, addressing, and accounting invariants.

use super::*;
use accelflow_sim::engine::Simulation;

mod runs {
    use super::*;
    use crate::request::{CallSpec, CyclesDist, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn simple_service() -> ServiceSpec {
        ServiceSpec::new(
            "Simple",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(40_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn db_service() -> ServiceSpec {
        ServiceSpec::new(
            "WithDb",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T4)),
                StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 2]),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn quick_run(policy: Policy, rps: f64) -> RunReport {
        let mut cfg = MachineConfig::new(policy);
        cfg.warmup = SimDuration::from_millis(2);
        Machine::run_workload(
            &cfg,
            &[simple_service(), db_service()],
            rps,
            SimDuration::from_millis(30),
            11,
        )
    }

    #[test]
    fn light_load_completes_everything() {
        for policy in [
            Policy::AccelFlow,
            Policy::NonAcc,
            Policy::Relief,
            Policy::CpuCentric,
            Policy::Cohort,
            Policy::Ideal,
        ] {
            let r = quick_run(policy, 300.0);
            assert!(r.offered() > 10, "{policy}: offered {}", r.offered());
            assert!(
                r.completion_ratio() > 0.99,
                "{policy}: completion {}",
                r.completion_ratio()
            );
            let p99 = r.aggregate_latency().percentile_duration(99.0);
            assert!(p99 > SimDuration::ZERO, "{policy}");
            assert!(p99 < SimDuration::from_millis(5), "{policy}: p99 {p99}");
        }
    }

    #[test]
    fn policies_order_under_load() {
        // On a small, contended machine the paper's ordering holds:
        // AccelFlow < RELIEF < Non-acc (p99), with CPU-Centric well
        // above AccelFlow.
        let p99 = |policy| {
            let mut cfg = MachineConfig::new(policy);
            cfg.warmup = SimDuration::from_millis(2);
            cfg.arch.cores = 3;
            let r = Machine::run_workload(
                &cfg,
                &[simple_service(), db_service()],
                3_000.0,
                SimDuration::from_millis(30),
                11,
            );
            r.aggregate_latency().percentile(99.0)
        };
        let af = p99(Policy::AccelFlow);
        let relief = p99(Policy::Relief);
        let cpu = p99(Policy::CpuCentric);
        let non = p99(Policy::NonAcc);
        assert!(af < relief, "AccelFlow {af} vs RELIEF {relief}");
        assert!(af * 3 < cpu * 2, "AccelFlow {af} vs CPU-Centric {cpu}");
        // The Non-acc margin is the noisiest of the three on this tiny
        // 30 ms window (its p99 rides the overload knee): across seeds
        // the ratio ranges ~1.34–1.92×, so assert a 1.25× floor rather
        // than a point estimate.
        assert!(af * 5 < non * 4, "AccelFlow {af} vs Non-acc {non}");
    }

    #[test]
    fn ideal_is_a_lower_bound_for_accelflow() {
        let ideal = quick_run(Policy::Ideal, 2_000.0).aggregate_latency().mean();
        let af = quick_run(Policy::AccelFlow, 2_000.0)
            .aggregate_latency()
            .mean();
        assert!(ideal <= af, "ideal {ideal} accelflow {af}");
    }

    #[test]
    fn accelflow_orchestration_fraction_is_small() {
        let r = quick_run(Policy::AccelFlow, 500.0);
        let frac = r.total_breakdown().orchestration_fraction();
        assert!(frac < 0.10, "orchestration fraction {frac}");
        let relief = quick_run(Policy::Relief, 500.0);
        assert!(
            relief.total_breakdown().orchestration_fraction() > frac,
            "RELIEF must pay more orchestration"
        );
    }

    #[test]
    fn glue_instruction_average_is_plausible() {
        let r = quick_run(Policy::AccelFlow, 500.0);
        let avg = r.totals.mean_glue_instructions();
        // §VII-B2: average ~18 instructions per dispatcher operation.
        assert!((14.0..40.0).contains(&avg), "avg glue {avg}");
        assert!(r.totals.atm_reads > 0, "chains must read the ATM");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_run(Policy::AccelFlow, 1_000.0);
        let b = quick_run(Policy::AccelFlow, 1_000.0);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(
            a.aggregate_latency().percentile(99.0),
            b.aggregate_latency().percentile(99.0)
        );
        assert_eq!(a.totals.dispatcher_instrs, b.totals.dispatcher_instrs);
    }

    #[test]
    fn more_chiplets_cost_latency() {
        let run = |chiplets| {
            let mut cfg = MachineConfig::new(Policy::AccelFlow);
            cfg.warmup = SimDuration::from_millis(2);
            cfg.chiplets = chiplets;
            Machine::run_workload(
                &cfg,
                &[simple_service()],
                1_000.0,
                SimDuration::from_millis(30),
                5,
            )
            .aggregate_latency()
            .mean()
        };
        let two = run(2);
        let six = run(6);
        assert!(six > two, "6-chiplet {six} vs 2-chiplet {two}");
    }

    #[test]
    fn tenant_cap_throttles() {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.tenant_cap = 1;
        let r = Machine::run_workload(
            &cfg,
            &[db_service()],
            3_000.0,
            SimDuration::from_millis(20),
            3,
        );
        assert!(r.totals.tenant_throttled > 0, "cap of 1 must throttle");
        assert!(
            r.completion_ratio() > 0.9,
            "throttling must not lose requests"
        );
    }

    #[test]
    fn slo_deadlines_are_tracked() {
        let mut svc = simple_service();
        svc.slo_slack = Some(0.0001); // impossible deadline
        let mut cfg = MachineConfig::new(Policy::AccelFlowDeadline);
        cfg.warmup = SimDuration::from_millis(1);
        let r = Machine::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(20), 3);
        assert!(r.per_service[0].deadline_misses > 0);
        let mut svc = simple_service();
        svc.slo_slack = Some(1e6); // trivially met
        let r = Machine::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(20), 3);
        assert_eq!(r.per_service[0].deadline_misses, 0);
    }

    #[test]
    fn saturation_shows_in_completion_ratio() {
        // A 4-core Non-acc server cannot keep up with 20 kRPS/service.
        let mut cfg = MachineConfig::new(Policy::NonAcc);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.arch.cores = 2;
        let r = Machine::run_workload(
            &cfg,
            &[simple_service(), db_service()],
            40_000.0,
            SimDuration::from_millis(15),
            11,
        );
        assert!(
            r.completion_ratio() < 0.97,
            "ratio {}",
            r.completion_ratio()
        );
    }

    #[test]
    fn fig1_attribution_covers_all_categories() {
        let r = quick_run(Policy::NonAcc, 300.0);
        let s = &r.per_service[1]; // WithDb touches every accelerator
        let (shares, app) = s.fig1_shares();
        assert!(app > 0.0);
        let tax: f64 = shares.iter().sum();
        assert!(tax > 0.5, "tax dominates: {tax}");
        assert!(shares[AccelKind::Tcp.id() as usize] > 0.0);
        assert!(shares[AccelKind::Ser.id() as usize] > 0.0);
    }

    #[test]
    fn utilization_and_tlb_stats_populate() {
        let r = quick_run(Policy::AccelFlow, 2_000.0);
        let tcp = AccelKind::Tcp.id() as usize;
        assert!(r.totals.accel_utilization[tcp] > 0.0);
        assert!(r.totals.accel_jobs[tcp] > 0);
        let (hits, misses) = r.totals.tlb[tcp];
        assert!(hits + misses > 0);
        assert!(r.totals.energy.total_j > 0.0);
        assert!(r.totals.dma_bytes > 0);
    }

    #[test]
    fn timeouts_terminate_without_stale_event_panics() {
        // Regression: a TCP timeout terminates and *frees* the request
        // while sibling parallel calls are still in flight. Their
        // PeDone/HopArrive/CallDone events used to hit the freed slot
        // and panic on `expect("request alive")`, and the tenant slots
        // held by those siblings leaked — the latent path was
        // unreachable only because every ExternalSpec median sits far
        // below the default 20 ms timeout. A 10 µs timeout forces it.
        // Two *parallel* DB awaits race: the first arm's timeout frees
        // the request while the second arm's timeout (or response) is
        // still queued.
        let racing = ServiceSpec::new(
            "RacingAwaits",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T4); 2]),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        );
        for policy in [Policy::AccelFlow, Policy::NonAcc, Policy::CpuCentric] {
            let mut cfg = MachineConfig::new(policy);
            cfg.warmup = SimDuration::from_millis(1);
            cfg.tcp_timeout = SimDuration::from_micros(10);
            cfg.audit = true;
            let r = Machine::run_workload(
                &cfg,
                &[racing.clone(), db_service()],
                1_000.0,
                SimDuration::from_millis(20),
                7,
            );
            assert!(r.totals.tcp_timeouts > 0, "{policy}: timeouts must fire");
            assert!(
                r.per_service[0].errors > 0,
                "{policy}: timed-out requests error out"
            );
            assert!(r.audit.enabled);
            assert!(
                r.audit.is_clean(),
                "{policy}: audit violations {:?}",
                r.audit.violations
            );
        }
    }

    #[test]
    fn audit_runs_and_comes_back_clean() {
        let r = quick_run(Policy::AccelFlow, 1_000.0);
        assert!(r.audit.enabled, "debug builds audit by default");
        assert!(r.audit.checks > 1_000, "checks ran: {}", r.audit.checks);
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        // Opting out produces an inert report.
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.audit = false;
        let r = Machine::run_workload(
            &cfg,
            &[simple_service()],
            300.0,
            SimDuration::from_millis(10),
            3,
        );
        assert!(!r.audit.enabled);
        assert_eq!(r.audit.checks, 0);
    }

    #[test]
    fn tenant_slots_drain_after_timeouts_under_tight_cap() {
        // The leaked-slot variant of the timeout bug: with a tiny
        // tenant cap, leaked slots would throttle the tenant forever
        // and the audit's end-of-run tenant-slot check would trip.
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.tcp_timeout = SimDuration::from_micros(10);
        cfg.tenant_cap = 4;
        cfg.audit = true;
        let r = Machine::run_workload(
            &cfg,
            &[db_service()],
            2_000.0,
            SimDuration::from_millis(20),
            13,
        );
        assert!(r.totals.tcp_timeouts > 0);
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        assert!(
            r.completion_ratio() > 0.5,
            "leaked slots would starve the tenant: {}",
            r.completion_ratio()
        );
    }

    #[test]
    fn arrival_list_is_sorted_and_reusable() {
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
        let arr = poisson_arrivals(
            &[simple_service(), db_service()],
            &lib,
            &timing,
            1_000.0,
            SimDuration::from_millis(10),
            7,
        );
        assert!(arr.len() > 10);
        for w in arr.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Common random numbers: the same arrivals run under two
        // policies.
        let services = [simple_service(), db_service()];
        let cfg_a = MachineConfig::new(Policy::AccelFlow);
        let cfg_b = MachineConfig::new(Policy::Relief);
        let ra = Machine::run_arrivals(
            &cfg_a,
            &services,
            arr.clone(),
            SimDuration::from_millis(10),
            7,
        );
        let rb = Machine::run_arrivals(&cfg_b, &services, arr, SimDuration::from_millis(10), 7);
        assert_eq!(ra.offered(), rb.offered());
    }

    #[test]
    fn parallel_calls_attributed_distinctly_in_telemetry() {
        // Regression for the CallDone/Timeout identity loss: both
        // events carry step/par, and the handlers must thread them to
        // telemetry so two parallel arms of the *same* step stay
        // distinguishable (arg = step << 8 | par).
        let svc = ServiceSpec::new(
            "TwoArms",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T1); 2]),
            ],
        );
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::ZERO;
        cfg.telemetry = true;
        let r = Machine::run_workload(&cfg, &[svc], 200.0, SimDuration::from_millis(10), 3);
        assert!(r.telemetry.enabled);
        use std::collections::HashMap;
        // Per request, the args seen on its call_done instants.
        let mut per_req: HashMap<u32, Vec<u64>> = HashMap::new();
        for rec in &r.telemetry.records {
            if rec.name == "call_done" {
                per_req
                    .entry(rec.req.expect("call_done has a req"))
                    .or_default()
                    .push(rec.arg);
            }
        }
        let parallel_arg = |par: u8| crate::machine::lifecycle::call_arg(1, par);
        let mut saw_both_arms = false;
        for (req, args) in &per_req {
            // Step 0 then the two parallel arms of step 1: three
            // distinct args, never a duplicate.
            let mut sorted = args.clone();
            sorted.sort_unstable();
            let mut deduped = sorted.clone();
            deduped.dedup();
            assert_eq!(
                sorted, deduped,
                "req {req}: duplicate call_done args {args:?}"
            );
            if args.contains(&parallel_arg(0)) && args.contains(&parallel_arg(1)) {
                saw_both_arms = true;
            }
        }
        assert!(
            saw_both_arms,
            "some request must finish both parallel arms of step 1"
        );
    }
}

mod resilience_tests {
    use super::*;
    use crate::faults::{FaultClass, FaultConfig};
    use crate::request::{CallSpec, CyclesDist, ExternalSpec, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn mixed_services() -> Vec<ServiceSpec> {
        vec![
            ServiceSpec::new(
                "Simple",
                vec![
                    StageSpec::Call(CallSpec::new(TemplateId::T1)),
                    StageSpec::Cpu(CyclesDist::new(40_000.0, 0.2)),
                    StageSpec::Call(CallSpec::new(TemplateId::T2)),
                ],
            ),
            ServiceSpec::new(
                "WithDb",
                vec![
                    StageSpec::Call(CallSpec::new(TemplateId::T1)),
                    StageSpec::Call(CallSpec::new(TemplateId::T4)),
                    StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 2]),
                    StageSpec::Call(CallSpec::new(TemplateId::T2)),
                ],
            ),
        ]
    }

    fn faulty_run(faults: FaultConfig, rps: f64, seed: u64) -> RunReport {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.audit = true;
        cfg.faults = faults;
        Machine::run_workload(
            &cfg,
            &mixed_services(),
            rps,
            SimDuration::from_millis(20),
            seed,
        )
    }

    #[test]
    fn stale_timeout_for_a_completed_call_is_ignored() {
        // Regression: a Timeout event whose call already completed —
        // while a sibling arm keeps the request alive on the same step
        // — must not re-enter accounting. Before the `completed_pars`
        // guard it counted a timeout, re-recorded the call finish
        // (tripping the auditor's call-finished-once invariant), and
        // wrongfully terminated the request.
        let mut slow = CallSpec::new(TemplateId::T4);
        // Deterministic 5 ms external wait: no jitter, no stragglers,
        // no losses, so the spurious timer below provably lands after
        // arm 0 completed and before arm 1's response.
        slow.external = ExternalSpec {
            median: SimDuration::from_millis(5),
            sigma: 0.0,
            tail_p: 0.0,
            tail_mult: 1.0,
            loss_p: 0.0,
        };
        let svc = ServiceSpec::new(
            "StaleTimer",
            vec![StageSpec::Parallel(vec![
                CallSpec::new(TemplateId::T1),
                slow,
            ])],
        );
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
        let mut arrivals = poisson_arrivals(
            &[svc],
            &lib,
            &timing,
            500.0,
            SimDuration::from_millis(10),
            3,
        );
        arrivals.truncate(1);
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::ZERO;
        cfg.audit = true;
        let end = SimTime::ZERO + SimDuration::from_millis(10);
        let machine = Machine::new(cfg, vec!["StaleTimer".into()], arrivals, end, 3);
        let mut sim = Simulation::new(machine);
        let first = sim.model().ctx.arrivals.last().expect("arrival").at;
        sim.queue_mut().schedule_at(first, Ev::Arrive(0));
        // The spurious timer: arm (step 0, par 0) is the fast T1 call,
        // long done by 2 ms; arm 1's response arrives at ~5 ms.
        sim.queue_mut().schedule_at(
            SimTime::ZERO + SimDuration::from_millis(2),
            Ev::Timeout {
                req: 0,
                step: 0,
                par: 0,
            },
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(40));
        let now = sim.now();
        let r = sim.into_model().ctx.into_report(now, end);
        assert_eq!(r.totals.tcp_timeouts, 0, "stale timer must not count");
        assert_eq!(r.completed(), 1, "the request must still complete");
        assert_eq!(r.per_service[0].errors, 0);
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
    }

    #[test]
    fn every_fault_class_injects_and_recovers() {
        let r = faulty_run(FaultConfig::uniform(50.0), 3_000.0, 9);
        let f = &r.faults;
        assert!(f.stalls > 0, "{f:?}");
        assert!(f.dma_errors > 0, "{f:?}");
        assert!(f.tlb_shootdowns > 0, "{f:?}");
        assert!(f.atm_misses > 0, "{f:?}");
        assert!(f.stall_dark_time > SimDuration::ZERO);
        assert!(f.injected() >= f.stalls + f.dma_errors);
        // Recovery happened and no request was lost or double-counted.
        assert!(f.recovery_actions() > 0, "{f:?}");
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        assert!(r.completion_ratio() > 0.8, "{}", r.completion_ratio());
    }

    #[test]
    fn queue_drops_hit_backlogged_queues() {
        // Queue-entry drops need occupied SRAM queues: slow the
        // accelerators down so work queues up, then drop aggressively.
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.audit = true;
        cfg.speedup_scale = 0.25;
        cfg.arch.pes_per_accelerator = 2;
        cfg.faults = FaultConfig::only(FaultClass::QueueDrop, 200.0);
        let r = Machine::run_workload(
            &cfg,
            &mixed_services(),
            5_000.0,
            SimDuration::from_millis(20),
            13,
        );
        assert!(r.faults.queue_drops > 0, "{:?}", r.faults);
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        assert!(r.completion_ratio() > 0.7, "{}", r.completion_ratio());
    }

    #[test]
    fn exhausted_retries_degrade_to_cpu_fallback() {
        let mut faults = FaultConfig::only(FaultClass::DmaError, 100.0);
        faults.max_retries = 0; // every fault goes straight to degrade
        let r = faulty_run(faults, 2_000.0, 5);
        assert!(r.faults.dma_errors > 0);
        assert_eq!(r.faults.retries, 0, "budget 0 leaves no retries");
        assert!(r.faults.degraded > 0, "{:?}", r.faults);
        assert!(r.totals.fallbacks >= r.faults.degraded);
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        assert!(r.completion_ratio() > 0.8, "{}", r.completion_ratio());
    }

    #[test]
    fn same_seed_fault_runs_are_identical() {
        let a = faulty_run(FaultConfig::uniform(20.0), 2_000.0, 17);
        let b = faulty_run(FaultConfig::uniform(20.0), 2_000.0, 17);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(
            a.aggregate_latency().percentile(99.0),
            b.aggregate_latency().percentile(99.0)
        );
    }

    #[test]
    fn stalls_darken_stations_without_losing_requests() {
        let mut faults = FaultConfig::only(FaultClass::AccelStall, 30.0);
        faults.stall_duration = SimDuration::from_micros(200);
        let r = faulty_run(faults, 2_000.0, 21);
        let f = &r.faults;
        assert!(f.stalls > 0);
        assert!(f.stall_dark_time >= SimDuration::from_micros(100));
        // Jobs caught mid-flight by a stall re-enter through recovery.
        assert!(f.jobs_failed > 0, "{f:?}");
        assert!(r.audit.is_clean(), "{:?}", r.audit.violations);
        assert!(r.completion_ratio() > 0.8, "{}", r.completion_ratio());
    }
}

mod instance_tests {
    use super::*;
    use crate::request::{CallSpec, CyclesDist, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn heavy_service() -> ServiceSpec {
        ServiceSpec::new(
            "Heavy",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn run_with_instances(instances: usize, pes: usize, rps: f64) -> RunReport {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.instances_per_accel = instances;
        cfg.arch.pes_per_accelerator = pes;
        Machine::run_workload(
            &cfg,
            &[heavy_service()],
            rps,
            SimDuration::from_millis(25),
            17,
        )
    }

    #[test]
    fn multiple_instances_complete_work() {
        let r = run_with_instances(3, 2, 2_000.0);
        assert!(r.completion_ratio() > 0.99, "{}", r.completion_ratio());
        // Jobs spread across instances of each kind (aggregated per
        // kind in the report).
        assert!(r.totals.accel_jobs[AccelKind::Tcp.id() as usize] > 0);
    }

    #[test]
    fn more_instances_reduce_queueing() {
        // One 1-PE instance saturates; three instances of the same
        // accelerator absorb the load.
        let one = run_with_instances(1, 1, 18_000.0);
        let three = run_with_instances(3, 1, 18_000.0);
        let m1 = one.aggregate_latency().mean();
        let m3 = three.aggregate_latency().mean();
        assert!(m3 < m1, "3 instances {m3} must beat 1 instance {m1}");
    }

    #[test]
    fn core_retries_across_instances_before_fallback() {
        // Tiny queues + several instances: the Enqueue retry loop finds
        // space on a sibling instance instead of falling back.
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(1);
        cfg.instances_per_accel = 4;
        cfg.arch.pes_per_accelerator = 1;
        cfg.arch.input_queue_entries = 1;
        cfg.arch.overflow_entries = 4;
        cfg.speedup_scale = 0.05;
        let r = Machine::run_workload(
            &cfg,
            &[heavy_service()],
            8_000.0,
            SimDuration::from_millis(15),
            5,
        );
        // Rejections happened (retries recorded) but work completed.
        assert!(r.completion_ratio() > 0.9, "{}", r.completion_ratio());
    }

    #[test]
    #[should_panic(expected = "instances_per_accel")]
    fn zero_instances_rejected() {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.instances_per_accel = 0;
        let _ = Machine::new(cfg, vec![], vec![], SimTime::ZERO, 1);
    }

    #[test]
    fn relief_shared_queue_spans_instances() {
        let mut cfg = MachineConfig::new(Policy::Relief);
        cfg.warmup = SimDuration::from_millis(2);
        cfg.instances_per_accel = 2;
        let r = Machine::run_workload(
            &cfg,
            &[heavy_service()],
            2_000.0,
            SimDuration::from_millis(25),
            8,
        );
        assert!(r.completion_ratio() > 0.99);
        assert!(r.totals.manager_jobs > 0);
    }
}

mod addressing_tests {
    use super::*;

    #[test]
    fn chiplet_groups_partition_all_kinds() {
        for chiplets in [1usize, 2, 3, 4, 6] {
            let mut cfg = MachineConfig::new(Policy::AccelFlow);
            cfg.chiplets = chiplets;
            let groups = cfg.chiplet_groups();
            assert_eq!(groups.len(), chiplets);
            let mut all: Vec<u8> = groups.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..9).collect::<Vec<u8>>(), "{chiplets} chiplets");
            // LdB always rides with the cores (chiplet 0).
            let groups = cfg.chiplet_groups();
            assert!(groups[0].contains(&AccelKind::Ldb.id()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported chiplet count")]
    fn five_chiplets_rejected() {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.chiplets = 5;
        let _ = cfg.chiplet_groups();
    }
}

mod accounting_tests {
    use super::*;
    use crate::request::{CallSpec, CyclesDist, StageSpec};
    use accelflow_trace::templates::TemplateId;

    fn db_heavy() -> ServiceSpec {
        ServiceSpec::new(
            "DbHeavy",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T4)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        )
    }

    fn unloaded(policy: Policy) -> RunReport {
        let mut cfg = MachineConfig::new(policy);
        cfg.warmup = SimDuration::from_millis(1);
        Machine::run_workload(&cfg, &[db_heavy()], 300.0, SimDuration::from_millis(40), 23)
    }

    #[test]
    fn breakdown_components_populate_sanely() {
        let r = unloaded(Policy::AccelFlow);
        let b = r.total_breakdown();
        assert!(b.cpu > SimDuration::ZERO, "app logic ran");
        assert!(b.accel > SimDuration::ZERO, "accelerators ran");
        assert!(b.communication > SimDuration::ZERO, "data moved");
        assert!(b.external > SimDuration::ZERO, "the DB was consulted");
        // Unloaded AccelFlow: orchestration is a sliver (Fig 17).
        assert!(
            b.orchestration_fraction() < 0.05,
            "{}",
            b.orchestration_fraction()
        );
        // Wall-clock sanity: per-request on-server time is bounded by
        // per-request total latency.
        let per_req_server = b.on_server().as_micros_f64() / r.completed() as f64;
        let mean = r.aggregate_latency().mean_duration().as_micros_f64();
        assert!(
            per_req_server < mean * 1.05,
            "on-server {per_req_server} vs mean {mean}"
        );
    }

    #[test]
    fn manager_accounting_only_for_manager_policies() {
        assert_eq!(unloaded(Policy::AccelFlow).totals.manager_jobs, 0);
        assert_eq!(unloaded(Policy::CpuCentric).totals.manager_jobs, 0);
        assert!(unloaded(Policy::Relief).totals.manager_jobs > 0);
        assert!(
            unloaded(Policy::Direct).totals.manager_jobs > 0,
            "fallback bounces"
        );
    }

    #[test]
    fn dispatcher_accounting_only_for_trace_policies() {
        assert!(unloaded(Policy::AccelFlow).totals.dispatches > 0);
        assert!(
            unloaded(Policy::AccelFlow).totals.atm_reads > 0,
            "T4 chains"
        );
        assert_eq!(unloaded(Policy::Relief).totals.dispatches, 0);
        assert_eq!(unloaded(Policy::NonAcc).totals.dispatches, 0);
        assert_eq!(unloaded(Policy::NonAcc).totals.dma_bytes, 0);
    }

    #[test]
    fn ideal_pays_no_orchestration() {
        let r = unloaded(Policy::Ideal);
        // Ideal still submits from cores but skips dispatcher/manager
        // charges on the trace path.
        let b = r.total_breakdown();
        assert!(b.orchestration.as_micros_f64() / (r.completed() as f64) < 1.0);
    }

    #[test]
    fn tax_attribution_is_policy_independent() {
        // Fig 1 attribution measures the workload, not the machine:
        // identical arrivals must yield identical per-kind tax sums.
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
        let arrivals = poisson_arrivals(
            &[db_heavy()],
            &lib,
            &timing,
            300.0,
            SimDuration::from_millis(30),
            9,
        );
        let run = |policy| {
            let mut cfg = MachineConfig::new(policy);
            cfg.warmup = SimDuration::from_millis(1);
            Machine::run_arrivals(
                &cfg,
                &[db_heavy()],
                arrivals.clone(),
                SimDuration::from_millis(30),
                9,
            )
        };
        let a = run(Policy::AccelFlow);
        let b = run(Policy::NonAcc);
        assert_eq!(a.per_service[0].tax_by_kind, b.per_service[0].tax_by_kind);
        assert_eq!(a.per_service[0].app_logic, b.per_service[0].app_logic);
    }
}

mod slab_state {
    use super::*;
    use crate::request::{CallSpec, CyclesDist, StageSpec};
    use accelflow_trace::templates::TemplateId;

    /// The request table is a recycling slab: after a drained run every
    /// slot has been freed, the arena footprint is bounded by peak
    /// concurrency rather than arrival count, and the stable
    /// per-arrival handles all read as gone — the generation tags turn
    /// them into misses instead of aliasing a recycled slot.
    #[test]
    fn request_slab_recycles_and_stays_bounded() {
        let svc = ServiceSpec::new(
            "Simple",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(40_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        );
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
        let window = SimDuration::from_millis(20);
        let arrivals = poisson_arrivals(&[svc], &lib, &timing, 2_000.0, window, 7);
        let n = arrivals.len();
        assert!(n > 20, "workload too small to exercise recycling");
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::ZERO;
        let end = SimTime::ZERO + window;
        let machine = Machine::new(cfg, vec!["Simple".into()], arrivals, end, 7);
        let mut sim = Simulation::new(machine);
        let first = sim.model().ctx.arrivals.last().expect("arrival").at;
        sim.queue_mut().schedule_at(first, Ev::Arrive(0));
        sim.run_until(end + SimDuration::from_millis(30));
        let ctx = &sim.model().ctx;
        assert_eq!(ctx.requests.len(), 0, "every request slot freed");
        assert!(
            ctx.requests.capacity_used() < n,
            "arena bounded by concurrency: {} slots for {} arrivals",
            ctx.requests.capacity_used(),
            n
        );
        for i in 0..n as u32 {
            assert!(ctx.req_gone(i), "freed handle {i} must read as gone");
        }
    }
}
