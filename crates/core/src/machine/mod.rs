//! The machine model: a 36-core server with the nine-accelerator
//! ensemble, executing sampled request programs under any of the ten
//! orchestration policies (paper §III, §IV, §VI).
//!
//! The machine is a discrete-event [`Model`]. Requests arrive as
//! network messages; their programs interleave app-logic stages on the
//! core pool with trace calls over the accelerator stations. What
//! differs between policies is purely *how control and data move
//! between hops*:
//!
//! - **AccelFlow family** — output dispatchers walk the trace (glue
//!   instructions at the dispatcher clock), resolve branches, transform
//!   data, read the ATM, and move payloads accelerator-to-accelerator
//!   with the shared A-DMA engines. The ablation rungs bounce branches
//!   and transforms to the centralized manager instead.
//! - **RELIEF** — every hop transition passes through a single-server
//!   hardware manager (~1.5 µs occupancy per completion, §VII-A1); the
//!   base design also funnels all work through one shared queue with
//!   head-of-line blocking across accelerator types.
//! - **CPU-Centric** — every completion interrupts the originating
//!   core, which then submits the next invocation.
//! - **Cohort** — statically linked pairs hand off directly through
//!   software queues; everything else bounces through a core.
//! - **Non-acc** — tax ops run as CPU work on the core pool.
//! - **Ideal** — direct transfers with zero orchestration cost.
//!
//! # Module map
//!
//! The event loop is split by concern; every handler is a method on
//! [`MachineCtx`], the shared mutable state, and consults the
//! policy-specific [`Orchestrator`] for every decision that differs
//! between designs:
//!
//! | module | owns |
//! |---|---|
//! | `lifecycle` | request admission, program steps, call initiation, completion, timeouts |
//! | `dispatch` | accelerator input queues, the PE inner loop, RELIEF's shared queue |
//! | `transfer` | core→accelerator submission, inter-hop payload movement, external responses |
//! | `fallback` | CPU execution of segments (Non-acc and overflow escape) |
//! | `resilience` | fault injection and recovery (retry/backoff, sibling re-dispatch, CPU degrade) |
//! | `scaling` | ingress control (rate limit / admission) and the telemetry-feedback autoscaler |
//! | `accounting` | latency breakdowns, stats/energy emission, telemetry, audit hooks, reports |
//! | `snapshot` | versioned checkpoint/restore and the resumable [`MachineRun`] handle |
//! | [`orchestrator`] | the [`Orchestrator`] trait and its ten per-policy implementations |

mod accounting;
#[cfg(test)]
mod control_tests;
mod dispatch;
mod fallback;
mod lifecycle;
pub mod orchestrator;
mod resilience;
mod scaling;
mod snapshot;
#[cfg(test)]
mod tests;
mod transfer;

pub use orchestrator::{orchestrator_for, HopInfo, Orchestrator, TransferMode};
pub use snapshot::{MachineRun, SNAPSHOT_MAGIC};

use std::collections::VecDeque;

use accelflow_accel::accelerator::Accelerator;
use accelflow_accel::timing::ServiceTimeModel;
use accelflow_arch::cache::MemoryBus;
use accelflow_arch::config::ArchConfig;
use accelflow_arch::dma::DmaPool;
use accelflow_arch::energy::{EnergyMeter, EnergyModel};
use accelflow_arch::interconnect::Interconnect;
use accelflow_arch::topology::{ChipletLayout, Endpoint, UnitId};
use accelflow_sim::engine::{EventQueue, Model};
use accelflow_sim::resource::ServerPool;
use accelflow_sim::rng::SimRng;
use accelflow_sim::slab::{Slab, SlotId};
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;
use accelflow_trace::templates::TraceLibrary;

use crate::arrivals::{poisson_arrivals, Arrival};
use crate::control::{ControlConfig, ControlState};
use crate::faults::{FaultClass, FaultConfig, FaultState};
use crate::policy::Policy;
use crate::request::{CallAddr, Program, ServiceSpec, Step, TraceCall};
use crate::stats::{MachineTotals, RunReport, ServiceStats};

use accounting::TelState;
use dispatch::SharedJob;
use lifecycle::RequestState;

/// Configuration of one simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Hardware parameters (Table III).
    pub arch: ArchConfig,
    /// Orchestration policy.
    pub policy: Policy,
    /// Number of chiplets: 1, 2 (default), 3, 4, or 6 (Fig 18).
    pub chiplets: usize,
    /// Max concurrent traces per tenant (§IV-D's anti-hoarding cap).
    pub tenant_cap: usize,
    /// Measurement starts after this much simulated time.
    pub warmup: SimDuration,
    /// TCP input-queue response timeout (§IV-B).
    pub tcp_timeout: SimDuration,
    /// Probability an accelerator invocation page-faults (§VII-B6).
    pub page_fault_prob: f64,
    /// Global accelerator speedup multiplier (§VII-C5).
    pub speedup_scale: f64,
    /// Overrides the input-dispatcher scheduling policy implied by
    /// `policy` (e.g. priority scheduling, §V-1).
    pub queue_policy_override: Option<accelflow_accel::dispatcher::QueuePolicy>,
    /// Accelerator instances per type (paper §IV-A: "one or more
    /// instances of all the accelerators"; a core whose Enqueue is
    /// rejected "retries with another accelerator of the same type").
    pub instances_per_accel: usize,
    /// Record raw (completion time, latency) samples per service for
    /// time-series diagnostics (costs memory; off by default).
    pub sample_latencies: bool,
    /// Run the invariant [`Auditor`](crate::audit::Auditor) alongside
    /// the event loop. Defaults to on in debug builds and under the
    /// `audit` cargo feature; costs a constant-factor slowdown.
    pub audit: bool,
    /// Capture structured telemetry (per-component spans, instants,
    /// counters and windowed utilization samples) for Chrome-trace
    /// export and latency breakdowns. Off by default — including in
    /// debug builds, unlike `audit` — because the record stream costs
    /// memory and time; the `telemetry` cargo feature flips the
    /// default on. See `docs/METRICS.md` for every emitted record.
    pub telemetry: bool,
    /// Telemetry ring capacity in records; on overflow the oldest
    /// records are dropped and counted in the report's
    /// `dropped` field (the tail of a run is kept).
    pub telemetry_capacity: usize,
    /// Sampling window for the telemetry time series (utilization,
    /// queue occupancy, tenant-slot pressure). Sampling piggybacks on
    /// event delivery, so it never perturbs the event sequence.
    pub telemetry_sample: SimDuration,
    /// Deterministic fault injection (stalls, DMA errors, TLB
    /// shootdowns, queue drops, ATM misses) and the recovery knobs.
    /// Disabled by default: the machine then builds no injector state,
    /// draws no fault randomness, and emits a bit-identical event
    /// stream. See [`crate::faults`] and `docs/RESILIENCE.md`.
    pub faults: FaultConfig,
    /// Online traffic control for open-loop load: per-tenant rate
    /// limiting, admission ceilings, SLO-window tracking, and the
    /// telemetry-feedback station autoscaler. Disabled by default:
    /// the machine then builds no control state and emits a
    /// bit-identical event stream. See [`crate::control`] and
    /// `docs/WORKLOADS.md`.
    pub control: ControlConfig,
}

impl MachineConfig {
    /// Baseline configuration for a policy.
    pub fn new(policy: Policy) -> Self {
        MachineConfig {
            arch: ArchConfig::icelake(),
            policy,
            chiplets: 2,
            tenant_cap: 1024,
            warmup: SimDuration::from_millis(5),
            tcp_timeout: SimDuration::from_millis(20),
            page_fault_prob: 3e-6,
            speedup_scale: 1.0,
            queue_policy_override: None,
            instances_per_accel: 1,
            sample_latencies: false,
            audit: cfg!(any(debug_assertions, feature = "audit")),
            telemetry: cfg!(feature = "telemetry"),
            telemetry_capacity: 1 << 18,
            telemetry_sample: SimDuration::from_micros(50),
            faults: FaultConfig::disabled(),
            control: ControlConfig::disabled(),
        }
    }

    /// The chiplet grouping of accelerator units for `self.chiplets`
    /// (Fig 18's organizations); unit IDs are [`AccelKind::id`]s.
    ///
    /// # Panics
    ///
    /// Panics if `chiplets` is not one of 1, 2, 3, 4, 6.
    pub fn chiplet_groups(&self) -> Vec<Vec<u8>> {
        use AccelKind::*;
        let ids = |kinds: &[AccelKind]| kinds.iter().map(|k| k.id()).collect::<Vec<_>>();
        match self.chiplets {
            1 => vec![ids(&[Ldb, Tcp, Encr, Decr, Rpc, Ser, Dser, Cmp, Dcmp])],
            2 => vec![
                ids(&[Ldb]),
                ids(&[Tcp, Encr, Decr, Rpc, Ser, Dser, Cmp, Dcmp]),
            ],
            3 => vec![
                ids(&[Ldb]),
                ids(&[Tcp, Encr, Decr]),
                ids(&[Rpc, Ser, Dser, Cmp, Dcmp]),
            ],
            4 => vec![
                ids(&[Ldb]),
                ids(&[Tcp, Encr, Decr]),
                ids(&[Rpc, Ser, Dser]),
                ids(&[Cmp, Dcmp]),
            ],
            6 => vec![
                ids(&[Ldb]),
                ids(&[Tcp]),
                ids(&[Encr, Decr]),
                ids(&[Rpc]),
                ids(&[Ser, Dser]),
                ids(&[Cmp, Dcmp]),
            ],
            n => panic!("unsupported chiplet count {n} (use 1, 2, 3, 4, or 6)"),
        }
    }
}

/// Machine events (an implementation detail exposed only because
/// [`Machine`] implements [`Model`]).
#[derive(Clone, Debug)]
#[doc(hidden)]
pub enum Ev {
    /// The next arrival (index into the arrival list) lands.
    Arrive(u32),
    /// Begin the request's current program step.
    StartStep(u32),
    /// An app-logic stage finished on a core.
    AppDone(u32),
    /// A payload landed in an accelerator's input queue.
    HopArrive(CallAddr),
    /// Retry a tenant-throttled trace initiation.
    HopArriveRetry(CallAddr),
    /// A remote response arrived under Non-acc (next segment runs on a
    /// core).
    ExternalArriveCpu(CallAddr),
    /// A PE finished computing a hop.
    PeDone {
        addr: CallAddr,
        accel: u8,
        pe: u8,
        busy_ps: u64,
    },
    /// Try to start queued work on an accelerator.
    TryStart(u8),
    /// A remote response arrived, triggering the chained segment.
    ExternalArrive(CallAddr),
    /// A trace call completed (final notification delivered).
    CallDone {
        req: u32,
        step: u8,
        par: u8,
        error: bool,
    },
    /// A CPU fallback finished executing the segment remainder.
    FallbackDone(CallAddr),
    /// A TCP response timeout fired (§IV-B).
    Timeout { req: u32, step: u8, par: u8 },
    /// The fault injector fires one fault of the given class; the
    /// class's Poisson stream re-arms itself from the handler. Never
    /// scheduled when [`MachineConfig::faults`] is disabled, so the
    /// golden event streams are unchanged.
    FaultInject(FaultClass),
    /// A station's stall window may have ended; wake its queues.
    StallEnd(u8),
    /// Periodic autoscaler tick: sample utilization and light/darken
    /// stations. Never scheduled when
    /// [`MachineConfig::control`] has no autoscaler, so the golden
    /// event streams are unchanged.
    ScaleTick,
}

/// The machine's shared mutable state: every hardware model, the
/// request table, and the measurement sinks.
///
/// Event handlers are methods on this type, spread across the
/// submodules by concern; the [`Orchestrator`] strategies receive a
/// `&mut MachineCtx` for the policy-specific legs of a transition.
/// Nothing outside this crate can touch the fields — the type is
/// public only because [`Orchestrator`] names it in its signatures.
pub struct MachineCtx {
    pub(crate) cfg: MachineConfig,
    pub(crate) orch: &'static dyn Orchestrator,
    pub(crate) timing: ServiceTimeModel,
    pub(crate) lib: TraceLibrary,
    pub(crate) net: Interconnect,
    pub(crate) dma: DmaPool,
    pub(crate) bus: MemoryBus,
    pub(crate) cores: ServerPool,
    pub(crate) manager: ServerPool,
    pub(crate) accels: Vec<Accelerator>,
    pub(crate) shared_queue: VecDeque<SharedJob>,
    /// Live per-request state. Requests live for microseconds while a
    /// run spans millions of arrivals, so the table is a recycling slab
    /// rather than a `Vec<Option<_>>` indexed by arrival number: the
    /// live set stays packed in the first few dozen slots (cache-warm)
    /// and the footprint is bounded by peak concurrency, not run
    /// length. `req_slots` maps the stable arrival index carried in
    /// events to the current slab handle; generation tags turn stale
    /// handles (freed requests) into misses instead of aliasing.
    pub(crate) requests: Slab<RequestState>,
    pub(crate) req_slots: Vec<SlotId>,
    /// Pending arrivals, stored *reversed* so the strictly in-order
    /// admission chain consumes them with `pop()` — each `Arrive`
    /// frees its payload immediately instead of leaving a tombstone.
    pub(crate) arrivals: Vec<Arrival>,
    pub(crate) stats: Vec<ServiceStats>,
    pub(crate) totals: MachineTotals,
    pub(crate) energy: EnergyMeter,
    pub(crate) rng: SimRng,
    /// In-flight call count per tenant, dense-indexed by `TenantId.0`
    /// (tenant ids are small sequential u16s, so a Vec lookup beats a
    /// HashMap probe in the dispatch inner loop). Grown on demand.
    pub(crate) tenant_active: Vec<u32>,
    pub(crate) warmup_end: SimTime,
    pub(crate) end: SimTime,
    pub(crate) app_factor: f64,
    pub(crate) live: u64,
    pub(crate) auditor: Option<crate::audit::Auditor>,
    pub(crate) tel: Option<Box<TelState>>,
    /// Fault-injector state; `None` when every rate is zero, so the
    /// fault-free hot path pays a single branch.
    pub(crate) faults: Option<Box<FaultState>>,
    /// Online-control state; `None` when control is disabled, so the
    /// control-free hot path pays a single branch.
    pub(crate) control: Option<Box<ControlState>>,
}

/// The simulated server.
pub struct Machine {
    ctx: MachineCtx,
}

impl Machine {
    /// Builds the machine for a workload of `service_names.len()`
    /// services.
    pub fn new(
        cfg: MachineConfig,
        service_names: Vec<String>,
        arrivals: Vec<Arrival>,
        end: SimTime,
        seed: u64,
    ) -> Self {
        cfg.arch.validate().expect("invalid architecture config");
        let orch = orchestrator_for(cfg.policy);
        let mut timing = ServiceTimeModel::calibrated(cfg.arch.core_clock);
        timing.set_speedup_scale(cfg.speedup_scale);
        timing.set_tax_speed_factor(cfg.arch.generation.tax_factor());
        let app_factor = cfg.arch.generation.app_logic_factor();

        let layout = ChipletLayout::new(cfg.chiplet_groups(), AccelKind::COUNT as u8);
        let net = Interconnect::new(&cfg.arch, layout);
        let dma = DmaPool::new(&cfg.arch);
        let bus = MemoryBus::new(&cfg.arch);
        let cores = ServerPool::new(cfg.arch.cores);
        let manager = ServerPool::new(1);
        let queue_policy = cfg
            .queue_policy_override
            .unwrap_or_else(|| orch.queue_policy());
        let instances = cfg.instances_per_accel;
        assert!(
            (1..=16).contains(&instances),
            "instances_per_accel must be within 1..=16"
        );
        let accels: Vec<Accelerator> = AccelKind::ALL
            .iter()
            .flat_map(|&k| {
                // Instances of a kind share the kind's mesh placement.
                (0..instances).map(move |_| k)
            })
            .map(|k| Accelerator::new(k, UnitId(k.id()), &cfg.arch, queue_policy))
            .collect();
        let stats = service_names.iter().map(ServiceStats::new).collect();
        let energy = EnergyMeter::new(EnergyModel::mcpat_like(), cfg.arch.cores, AccelKind::COUNT);
        let req_slots = vec![SlotId::INVALID; arrivals.len()];
        let warmup_end = SimTime::ZERO + cfg.warmup;
        let lib = TraceLibrary::standard();
        let auditor = cfg
            .audit
            .then(|| crate::audit::Auditor::new(arrivals.len(), lib.atm()));
        let tel = TelState::for_config(&cfg, &accels);
        let faults = cfg.faults.enabled().then(|| {
            Box::new(FaultState::new(
                cfg.faults.clone(),
                seed,
                accels.len(),
                cfg.arch.pes_per_accelerator,
            ))
        });
        let kind_names: Vec<&'static str> = AccelKind::ALL.iter().map(|k| k.name()).collect();
        let control = cfg.control.enabled().then(|| {
            Box::new(ControlState::new(
                cfg.control.clone(),
                accels.len(),
                instances,
                &kind_names,
                warmup_end,
            ))
        });
        Machine {
            ctx: MachineCtx {
                cfg,
                orch,
                timing,
                lib,
                net,
                dma,
                bus,
                cores,
                manager,
                accels,
                shared_queue: VecDeque::new(),
                requests: Slab::with_capacity(64),
                req_slots,
                arrivals: {
                    let mut a = arrivals;
                    a.reverse();
                    a
                },
                stats,
                totals: MachineTotals::default(),
                energy,
                rng: SimRng::seed(seed ^ 0xACCE1F10),
                tenant_active: Vec::new(),
                warmup_end,
                end,
                app_factor,
                live: 0,
                auditor,
                tel,
                faults,
                control,
            },
        }
    }

    /// Convenience runner: Poisson arrivals at `rps_per_service` for
    /// each service over `duration`, then a drain window.
    ///
    /// ```
    /// use accelflow_core::machine::{Machine, MachineConfig};
    /// use accelflow_core::policy::Policy;
    /// use accelflow_core::request::{CallSpec, ServiceSpec, StageSpec};
    /// use accelflow_sim::time::SimDuration;
    /// use accelflow_trace::templates::TemplateId;
    ///
    /// let svc = ServiceSpec::new(
    ///     "Ping",
    ///     vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
    /// );
    /// let mut cfg = MachineConfig::new(Policy::AccelFlow);
    /// cfg.warmup = SimDuration::from_millis(1);
    /// let report =
    ///     Machine::run_workload(&cfg, &[svc], 500.0, SimDuration::from_millis(5), 7);
    /// assert!(report.offered() > 0);
    /// assert!(report.completion_ratio() > 0.99);
    /// ```
    pub fn run_workload(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        rps_per_service: f64,
        duration: SimDuration,
        seed: u64,
    ) -> RunReport {
        let timing = {
            let mut t = ServiceTimeModel::calibrated(cfg.arch.core_clock);
            t.set_speedup_scale(cfg.speedup_scale);
            t
        };
        let lib = TraceLibrary::standard();
        let arrivals = poisson_arrivals(services, &lib, &timing, rps_per_service, duration, seed);
        Self::run_arrivals(cfg, services, arrivals, duration, seed)
    }

    /// Runs a pre-generated arrival list (for bursty trace-driven loads
    /// and for common-random-number comparisons across policies).
    pub fn run_arrivals(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        arrivals: Vec<Arrival>,
        duration: SimDuration,
        seed: u64,
    ) -> RunReport {
        Self::run_arrivals_observed(cfg, services, arrivals, duration, seed, |_, _| {})
    }

    /// [`Machine::run_arrivals`] with an event observer: `observe` is
    /// invoked for every delivered event, in delivery order, before the
    /// machine handles it. Observation is read-only and cannot perturb
    /// the run, which makes this the anchor for the golden
    /// event-sequence snapshot tests (hash the observed stream, assert
    /// it never drifts across refactors).
    ///
    /// One-shot wrapper over [`MachineRun`]; hold the run open instead
    /// when you need mid-run checkpoints or appended arrivals.
    pub fn run_arrivals_observed(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        arrivals: Vec<Arrival>,
        duration: SimDuration,
        seed: u64,
        observe: impl FnMut(SimTime, &Ev),
    ) -> RunReport {
        MachineRun::start(cfg, services, arrivals, duration, seed, observe).finish()
    }
}

/// Hooks for the [`cluster`](crate::cluster) composition layer, which
/// drives N captive machines from one shared outer kernel instead of
/// giving each its own [`Simulation`]. Crate-private: the cluster is
/// the only caller, and the contract (one pending pushed arrival per
/// machine at a time, reports extracted after the outer run drains) is
/// enforced there.
impl Machine {
    /// Registers one externally-dispatched arrival and returns the
    /// local index to carry in its [`Ev::Arrive`]. The cluster pushes
    /// the payload at dispatch time and schedules the event itself;
    /// `on_arrive` then pops it exactly like a preloaded arrival. At
    /// most one pushed arrival is pending per machine (the cluster's
    /// admission chain dispatches the next arrival only when the
    /// current one is delivered), so the tail-pop discipline holds.
    pub(crate) fn push_external_arrival(&mut self, arrival: Arrival) -> u32 {
        let idx = self.ctx.req_slots.len() as u32;
        self.ctx.req_slots.push(SlotId::INVALID);
        self.ctx.arrivals.push(arrival);
        idx
    }

    /// In-flight (admitted, not yet terminated) request count — the
    /// load signal the cluster's least-loaded balancer reads.
    pub(crate) fn live_requests(&self) -> u64 {
        self.ctx.live
    }

    /// Number of accelerator stations currently inside a fault-injected
    /// stall window. Zero when injection is disabled. The cluster's
    /// keep-alive poll reads this as the node-health signal.
    pub(crate) fn dark_stations(&self, now: SimTime) -> usize {
        self.ctx
            .faults
            .as_ref()
            .map_or(0, |f| f.avail.len() - f.avail.available_count(now))
    }

    /// Arms each enabled fault class's Poisson stream (see
    /// [`MachineCtx::draw_initial_faults`]); the caller schedules the
    /// returned events into its own queue.
    pub(crate) fn arm_initial_faults(&mut self) -> Vec<(SimTime, FaultClass)> {
        self.ctx.draw_initial_faults()
    }

    /// First autoscaler tick instant, if an autoscaler is configured;
    /// the caller schedules the [`Ev::ScaleTick`] itself (the tick
    /// chain then re-arms through the machine's own queue handle).
    pub(crate) fn arm_autoscaler(&self) -> Option<SimTime> {
        self.ctx.first_scale_tick()
    }

    /// Extracts the run report once the outer kernel has drained.
    pub(crate) fn into_run_report(self, now: SimTime, end: SimTime) -> RunReport {
        self.ctx.into_report(now, end)
    }
}

impl MachineCtx {
    // ----- helpers shared across the handler modules -----

    pub(crate) fn endpoint(kind: AccelKind) -> Endpoint {
        Endpoint::Unit(UnitId(kind.id()))
    }

    /// Flat station indices of a kind's instances.
    pub(crate) fn stations_of(&self, kind: AccelKind) -> std::ops::Range<usize> {
        let n = self.cfg.instances_per_accel;
        let base = kind.id() as usize * n;
        base..base + n
    }

    /// The least-backlogged station of a kind (hardware routes new work
    /// to the emptiest instance). Scans the kind's instances directly:
    /// a struct-of-arrays backlog mirror was tried here and lost ~4% of
    /// fig14-shape throughput — with a handful of instances per kind
    /// the scan is a few loads, while keeping the mirror coherent cost
    /// a resync at every accelerator mutation site.
    pub(crate) fn least_loaded_station(&self, kind: AccelKind) -> usize {
        self.stations_of(kind)
            .min_by_key(|&i| self.accels[i].input().backlog())
            .expect("at least one instance")
    }

    pub(crate) fn req(&self, idx: u32) -> &RequestState {
        self.requests
            .get(self.req_slots[idx as usize])
            .expect("request alive")
    }

    /// True when the request already terminated — either still parked
    /// with `done` set or freed entirely. Every handler reachable from
    /// a stale event (a response landing after a timeout killed the
    /// request) must check this before touching request state:
    /// termination frees the slot, so `req()` would panic.
    pub(crate) fn req_gone(&self, idx: u32) -> bool {
        self.requests
            .get(self.req_slots[idx as usize])
            .is_none_or(|r| r.done)
    }

    pub(crate) fn req_mut(&mut self, idx: u32) -> &mut RequestState {
        self.requests
            .get_mut(self.req_slots[idx as usize])
            .expect("request alive")
    }

    pub(crate) fn call_of(program: &Program, step: u8, par: u8) -> &TraceCall {
        match &program.steps[step as usize] {
            Step::Call(c) => c,
            Step::Parallel(cs) => &cs[par as usize],
            Step::Cpu { .. } => panic!("addressed a CPU step as a call"),
        }
    }

    pub(crate) fn dispatcher_time(&self, instrs: u32) -> SimDuration {
        SimDuration::from_picos(self.cfg.arch.dispatcher_cycle.as_picos() * instrs as u64)
    }
}

impl Model for Machine {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        let ctx = &mut self.ctx;
        if ctx.tel.is_some() {
            ctx.sample_telemetry(now);
        }
        ctx.audit_pre_event(now);
        match event {
            Ev::Arrive(idx) => ctx.on_arrive(now, idx, queue),
            Ev::StartStep(req) => ctx.on_start_step(now, req, queue),
            Ev::AppDone(req) => ctx.on_app_done(now, req, queue),
            Ev::HopArrive(addr) => ctx.on_hop_arrive(now, addr, queue),
            Ev::HopArriveRetry(addr) => ctx.start_call(now, addr, queue),
            Ev::ExternalArriveCpu(addr) => ctx.start_segment_on_cpu(now, addr, queue),
            Ev::PeDone {
                addr,
                accel,
                pe,
                busy_ps,
            } => ctx.on_pe_done(now, addr, accel, pe, busy_ps, queue),
            Ev::TryStart(accel) => ctx.on_try_start(now, accel, queue),
            Ev::ExternalArrive(addr) => ctx.on_external_arrive(now, addr, queue),
            Ev::CallDone {
                req,
                step,
                par,
                error,
            } => ctx.on_call_done(now, req, step, par, error, queue),
            Ev::FallbackDone(addr) => ctx.on_fallback_done(now, addr, queue),
            Ev::Timeout { req, step, par } => ctx.on_timeout(now, req, step, par),
            Ev::FaultInject(class) => ctx.on_fault_inject(now, class, queue),
            Ev::StallEnd(station) => ctx.on_stall_end(now, station, queue),
            Ev::ScaleTick => ctx.on_scale_tick(now, queue),
        }
        ctx.audit_post_event(now);
    }
}
