//! Machine-level checkpoint/restore and the resumable [`MachineRun`]
//! handle.
//!
//! A snapshot captures the machine's complete dynamic state — request
//! slab, accelerator stations, queues, RNG stream positions, fault and
//! control state, measurement sinks — plus the pending event set, under
//! a versioned header carrying a configuration hash. Restoring into a
//! machine rebuilt from the *same* configuration resumes the run
//! byte-identically (enforced by `tests/snapshot_equivalence.rs`);
//! restoring into a different configuration is refused.
//!
//! What is rebuilt rather than serialized: everything derivable from
//! [`MachineConfig`] alone — the orchestrator strategy, the service
//! time model, the trace library contents, the interconnect, and the
//! chiplet layout. The ATM's read/write counters are dynamic and *are*
//! carried over. See `docs/CHECKPOINT.md` for the captured/not-captured
//! accounting and the determinism argument.

use accelflow_accel::queue::TenantId;
use accelflow_sim::engine::{EventQueue, Model, Simulation};
use accelflow_sim::slab::SlotId;
use accelflow_sim::snapshot::{
    check_header, fnv1a, write_header, SnapReader, SnapWriter, Snapshot, SnapshotError,
};
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use crate::arrivals::Arrival;
use crate::request::{CallAddr, HopExec, Program, Segment, SegmentEnd, ServiceId, Step, TraceCall};
use crate::request::ServiceSpec;
use crate::stats::{Breakdown, MachineTotals, RunReport, ServiceStats};

use super::accounting::TelState;
use super::dispatch::SharedJob;
use super::{Ev, Machine, MachineConfig, MachineCtx};

/// Leading magic bytes of a machine snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"AFSN";

/// Drain window granted past the arrival horizon before the report is
/// extracted (stragglers complete; matches the pre-checkpoint runner).
const DRAIN_MARGIN: SimDuration = SimDuration::from_millis(30);

// ----- request-program serialization -----

impl Snapshot for ServiceId {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ServiceId(r.usize()?))
    }
}

impl Snapshot for CallAddr {
    fn save(&self, w: &mut SnapWriter) {
        // The packed queue-entry tag is already the canonical wire form.
        w.u64(self.tag());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CallAddr::from_tag(r.u64()?))
    }
}

impl Snapshot for SegmentEnd {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            SegmentEnd::ToCpu => w.u8(0),
            SegmentEnd::Continue => w.u8(1),
            SegmentEnd::AwaitResponse { external } => {
                w.u8(2);
                external.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => SegmentEnd::ToCpu,
            1 => SegmentEnd::Continue,
            2 => SegmentEnd::AwaitResponse {
                external: SimDuration::load(r)?,
            },
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown SegmentEnd tag {other}"
                )))
            }
        })
    }
}

impl Snapshot for HopExec {
    fn save(&self, w: &mut SnapWriter) {
        self.kind.save(w);
        self.pm.save(w);
        w.u64(self.in_bytes);
        w.u64(self.out_bytes);
        w.u32(self.glue_instrs);
        w.u8(self.branches_after);
        w.bool(self.transform_after);
        w.bool(self.fork_after);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(HopExec {
            kind: AccelKind::load(r)?,
            pm: accelflow_trace::ir::PositionMark::load(r)?,
            in_bytes: r.u64()?,
            out_bytes: r.u64()?,
            glue_instrs: r.u32()?,
            branches_after: r.u8()?,
            transform_after: r.bool()?,
            fork_after: r.bool()?,
        })
    }
}

impl Snapshot for Segment {
    fn save(&self, w: &mut SnapWriter) {
        self.trace.save(w);
        self.flags.save(w);
        w.bool(self.entry_is_network);
        self.hops.save(w);
        self.end.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Segment {
            trace: std::sync::Arc::load(r)?,
            flags: accelflow_trace::cond::PayloadFlags::load(r)?,
            entry_is_network: r.bool()?,
            hops: Vec::load(r)?,
            end: SegmentEnd::load(r)?,
        })
    }
}

impl Snapshot for TraceCall {
    fn save(&self, w: &mut SnapWriter) {
        self.segments.save(w);
        w.u64(self.vaddr);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TraceCall {
            segments: Vec::load(r)?,
            vaddr: r.u64()?,
        })
    }
}

impl Snapshot for Step {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Step::Cpu { cycles } => {
                w.u8(0);
                w.f64(*cycles);
            }
            Step::Call(c) => {
                w.u8(1);
                c.save(w);
            }
            Step::Parallel(cs) => {
                w.u8(2);
                cs.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Step::Cpu { cycles: r.f64()? },
            1 => Step::Call(TraceCall::load(r)?),
            2 => Step::Parallel(Vec::load(r)?),
            other => {
                return Err(SnapshotError::Corrupt(format!("unknown Step tag {other}")))
            }
        })
    }
}

impl Snapshot for Program {
    fn save(&self, w: &mut SnapWriter) {
        self.steps.save(w);
        self.slo_slack.save(w);
        w.u8(self.priority);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Program {
            steps: Vec::load(r)?,
            slo_slack: Option::load(r)?,
            priority: r.u8()?,
        })
    }
}

impl Snapshot for Arrival {
    fn save(&self, w: &mut SnapWriter) {
        self.at.save(w);
        self.service.save(w);
        self.tenant.save(w);
        self.program.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Arrival {
            at: SimTime::load(r)?,
            service: ServiceId::load(r)?,
            tenant: TenantId::load(r)?,
            program: Program::load(r)?,
        })
    }
}

impl Snapshot for super::lifecycle::RequestState {
    fn save(&self, w: &mut SnapWriter) {
        self.service.save(w);
        self.tenant.save(w);
        self.arrival.save(w);
        w.bool(self.measured);
        self.program.save(w);
        w.usize(self.step);
        w.u32(self.pending_calls);
        w.u32(self.active_calls);
        w.u32(self.completed_pars);
        self.deadline.save(w);
        w.bool(self.done);
        w.bool(self.error);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(super::lifecycle::RequestState {
            service: ServiceId::load(r)?,
            tenant: TenantId::load(r)?,
            arrival: SimTime::load(r)?,
            measured: r.bool()?,
            program: Program::load(r)?,
            step: r.usize()?,
            pending_calls: r.u32()?,
            active_calls: r.u32()?,
            completed_pars: r.u32()?,
            deadline: Option::load(r)?,
            done: r.bool()?,
            error: r.bool()?,
        })
    }
}

impl Snapshot for SharedJob {
    fn save(&self, w: &mut SnapWriter) {
        self.entry.save(w);
        self.kind.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SharedJob {
            entry: accelflow_accel::queue::QueueEntry::load(r)?,
            kind: AccelKind::load(r)?,
        })
    }
}

// ----- event serialization -----

impl Snapshot for Ev {
    fn save(&self, w: &mut SnapWriter) {
        // Stable one-byte tags, independent of declaration order.
        match self {
            Ev::Arrive(idx) => {
                w.u8(0);
                w.u32(*idx);
            }
            Ev::StartStep(req) => {
                w.u8(1);
                w.u32(*req);
            }
            Ev::AppDone(req) => {
                w.u8(2);
                w.u32(*req);
            }
            Ev::HopArrive(addr) => {
                w.u8(3);
                addr.save(w);
            }
            Ev::HopArriveRetry(addr) => {
                w.u8(4);
                addr.save(w);
            }
            Ev::ExternalArriveCpu(addr) => {
                w.u8(5);
                addr.save(w);
            }
            Ev::PeDone {
                addr,
                accel,
                pe,
                busy_ps,
            } => {
                w.u8(6);
                addr.save(w);
                w.u8(*accel);
                w.u8(*pe);
                w.u64(*busy_ps);
            }
            Ev::TryStart(accel) => {
                w.u8(7);
                w.u8(*accel);
            }
            Ev::ExternalArrive(addr) => {
                w.u8(8);
                addr.save(w);
            }
            Ev::CallDone {
                req,
                step,
                par,
                error,
            } => {
                w.u8(9);
                w.u32(*req);
                w.u8(*step);
                w.u8(*par);
                w.bool(*error);
            }
            Ev::FallbackDone(addr) => {
                w.u8(10);
                addr.save(w);
            }
            Ev::Timeout { req, step, par } => {
                w.u8(11);
                w.u32(*req);
                w.u8(*step);
                w.u8(*par);
            }
            Ev::FaultInject(class) => {
                w.u8(12);
                class.save(w);
            }
            Ev::StallEnd(station) => {
                w.u8(13);
                w.u8(*station);
            }
            Ev::ScaleTick => w.u8(14),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Ev::Arrive(r.u32()?),
            1 => Ev::StartStep(r.u32()?),
            2 => Ev::AppDone(r.u32()?),
            3 => Ev::HopArrive(CallAddr::load(r)?),
            4 => Ev::HopArriveRetry(CallAddr::load(r)?),
            5 => Ev::ExternalArriveCpu(CallAddr::load(r)?),
            6 => Ev::PeDone {
                addr: CallAddr::load(r)?,
                accel: r.u8()?,
                pe: r.u8()?,
                busy_ps: r.u64()?,
            },
            7 => Ev::TryStart(r.u8()?),
            8 => Ev::ExternalArrive(CallAddr::load(r)?),
            9 => Ev::CallDone {
                req: r.u32()?,
                step: r.u8()?,
                par: r.u8()?,
                error: r.bool()?,
            },
            10 => Ev::FallbackDone(CallAddr::load(r)?),
            11 => Ev::Timeout {
                req: r.u32()?,
                step: r.u8()?,
                par: r.u8()?,
            },
            12 => Ev::FaultInject(crate::faults::FaultClass::load(r)?),
            13 => Ev::StallEnd(r.u8()?),
            14 => Ev::ScaleTick,
            other => {
                return Err(SnapshotError::Corrupt(format!("unknown Ev tag {other}")))
            }
        })
    }
}

// ----- measurement-sink serialization -----

impl Snapshot for Breakdown {
    fn save(&self, w: &mut SnapWriter) {
        self.cpu.save(w);
        self.accel.save(w);
        self.orchestration.save(w);
        self.communication.save(w);
        self.external.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Breakdown {
            cpu: SimDuration::load(r)?,
            accel: SimDuration::load(r)?,
            orchestration: SimDuration::load(r)?,
            communication: SimDuration::load(r)?,
            external: SimDuration::load(r)?,
        })
    }
}

impl Snapshot for ServiceStats {
    fn save(&self, w: &mut SnapWriter) {
        self.name.save(w);
        self.latency.save(w);
        w.u64(self.offered);
        w.u64(self.completed);
        w.u64(self.errors);
        w.u64(self.deadline_misses);
        self.breakdown.save(w);
        self.tax_by_kind.save(w);
        self.app_logic.save(w);
        self.samples.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ServiceStats {
            name: String::load(r)?,
            latency: accelflow_sim::stats::Histogram::load(r)?,
            offered: r.u64()?,
            completed: r.u64()?,
            errors: r.u64()?,
            deadline_misses: r.u64()?,
            breakdown: Breakdown::load(r)?,
            tax_by_kind: <[SimDuration; AccelKind::COUNT]>::load(r)?,
            app_logic: SimDuration::load(r)?,
            samples: Vec::load(r)?,
        })
    }
}

impl Snapshot for MachineTotals {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.fallbacks);
        w.u64(self.overflows);
        w.u64(self.enqueue_rejections);
        w.u64(self.tcp_timeouts);
        w.u64(self.page_faults);
        w.u64(self.atm_reads);
        w.u64(self.dispatcher_instrs);
        w.u64(self.dispatches);
        w.u64(self.manager_jobs);
        self.manager_busy.save(w);
        self.accel_utilization.save(w);
        self.accel_jobs.save(w);
        self.tlb.save(w);
        w.u64(self.tenant_wipes);
        w.u64(self.tenant_throttled);
        w.u64(self.clamped_events);
        w.u64(self.dma_bytes);
        self.energy.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MachineTotals {
            fallbacks: r.u64()?,
            overflows: r.u64()?,
            enqueue_rejections: r.u64()?,
            tcp_timeouts: r.u64()?,
            page_faults: r.u64()?,
            atm_reads: r.u64()?,
            dispatcher_instrs: r.u64()?,
            dispatches: r.u64()?,
            manager_jobs: r.u64()?,
            manager_busy: SimDuration::load(r)?,
            accel_utilization: <[f64; AccelKind::COUNT]>::load(r)?,
            accel_jobs: <[u64; AccelKind::COUNT]>::load(r)?,
            tlb: <[(u64, u64); AccelKind::COUNT]>::load(r)?,
            tenant_wipes: r.u64()?,
            tenant_throttled: r.u64()?,
            clamped_events: r.u64()?,
            dma_bytes: r.u64()?,
            energy: accelflow_arch::energy::EnergyReport::load(r)?,
        })
    }
}

impl Snapshot for TelState {
    /// The telemetry ring restores *empty* (records hold `&'static str`
    /// names that cannot round-trip through bytes); `emitted`/`dropped`
    /// counters, labels, and the windowed sampler all persist, so a
    /// restored run's telemetry report differs from a straight run's
    /// only in which record window the ring retains — documented in
    /// `docs/CHECKPOINT.md` under "not captured".
    fn save(&self, w: &mut SnapWriter) {
        self.sink.save(w);
        self.sampler.save(w);
        self.prev_busy.save(w);
        self.prev_at.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TelState {
            sink: accelflow_sim::telemetry::Telemetry::load(r)?,
            sampler: accelflow_sim::telemetry::Sampler::load(r)?,
            prev_busy: Vec::load(r)?,
            prev_at: SimTime::load(r)?,
        })
    }
}

// ----- whole-machine checkpoint -----

impl MachineCtx {
    /// Serializes every dynamic field, in declaration order. Statics
    /// (orchestrator, timing model, trace library, interconnect) are
    /// rebuilt from config at restore.
    fn save_dynamic(&self, w: &mut SnapWriter) {
        self.dma.save(w);
        self.bus.save(w);
        self.cores.save(w);
        self.manager.save(w);
        self.accels.save(w);
        self.shared_queue.save(w);
        self.requests.save(w);
        self.req_slots.save(w);
        self.arrivals.save(w);
        self.stats.save(w);
        self.totals.save(w);
        self.energy.save(w);
        self.rng.save(w);
        self.tenant_active.save(w);
        self.warmup_end.save(w);
        self.end.save(w);
        w.u64(self.live);
        self.auditor.save(w);
        self.tel.save(w);
        self.faults.save(w);
        self.control.save(w);
        // The trace library is rebuilt from config, but the ATM's
        // read/write counters are run state.
        w.u64(self.lib.atm().reads());
        w.u64(self.lib.atm().writes());
    }

    /// Overwrites every dynamic field from the reader (the counterpart
    /// of [`MachineCtx::save_dynamic`]), validating structural
    /// consistency against the rebuilt configuration.
    fn load_dynamic(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.dma = Snapshot::load(r)?;
        self.bus = Snapshot::load(r)?;
        self.cores = Snapshot::load(r)?;
        self.manager = Snapshot::load(r)?;
        let accels: Vec<accelflow_accel::accelerator::Accelerator> = Snapshot::load(r)?;
        if accels.len() != AccelKind::COUNT * self.cfg.instances_per_accel {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {} stations, config builds {}",
                accels.len(),
                AccelKind::COUNT * self.cfg.instances_per_accel
            )));
        }
        self.accels = accels;
        self.shared_queue = Snapshot::load(r)?;
        self.requests = Snapshot::load(r)?;
        self.req_slots = Snapshot::load(r)?;
        self.arrivals = Snapshot::load(r)?;
        if self.arrivals.len() > self.req_slots.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} pending arrivals but only {} request slots",
                self.arrivals.len(),
                self.req_slots.len()
            )));
        }
        let stats: Vec<ServiceStats> = Snapshot::load(r)?;
        if stats.len() != self.stats.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {} services, restore target has {}",
                stats.len(),
                self.stats.len()
            )));
        }
        self.stats = stats;
        self.totals = Snapshot::load(r)?;
        self.energy = Snapshot::load(r)?;
        self.rng = Snapshot::load(r)?;
        self.tenant_active = Snapshot::load(r)?;
        self.warmup_end = Snapshot::load(r)?;
        self.end = Snapshot::load(r)?;
        self.live = r.u64()?;
        self.auditor = Snapshot::load(r)?;
        self.tel = Snapshot::load(r)?;
        self.faults = Snapshot::load(r)?;
        self.control = Snapshot::load(r)?;
        let atm_reads = r.u64()?;
        let atm_writes = r.u64()?;
        self.lib.atm_mut().restore_counters(atm_reads, atm_writes);
        Ok(())
    }
}

impl Machine {
    /// The configuration-identity hash carried in snapshot headers:
    /// FNV-1a over the config's `Debug` rendering plus the service
    /// names. The workload seed is *not* part of the identity — every
    /// RNG stream position is serialized, so a snapshot carries its
    /// seed's consequences with it.
    pub fn config_hash(cfg: &MachineConfig, service_names: &[String]) -> u64 {
        let mut buf = format!("{cfg:?}").into_bytes();
        for name in service_names {
            buf.push(0);
            buf.extend_from_slice(name.as_bytes());
        }
        fnv1a(&buf)
    }

    /// Serializes the machine and its pending event set into a
    /// versioned snapshot. `queue` is borrowed mutably because
    /// observing delivery order requires a non-destructive drain (see
    /// [`EventQueue::save_snapshot`]); the queue is left undisturbed.
    pub fn snapshot(&self, queue: &mut EventQueue<Ev>) -> Vec<u8> {
        let names: Vec<String> = self.ctx.stats.iter().map(|s| s.name.clone()).collect();
        let mut w = SnapWriter::new();
        write_header(&mut w, SNAPSHOT_MAGIC, Self::config_hash(&self.ctx.cfg, &names));
        self.ctx.save_dynamic(&mut w);
        queue.save_snapshot(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a machine from `cfg` + `service_names` and overwrites
    /// its dynamic state from `bytes`, returning the machine and the
    /// restored event queue (reassemble with
    /// [`Simulation::from_parts`], or use
    /// [`MachineRun::restore`]). Refuses snapshots whose header magic,
    /// schema version, or configuration hash does not match.
    pub fn restore(
        cfg: &MachineConfig,
        service_names: &[String],
        bytes: &[u8],
    ) -> Result<(Machine, EventQueue<Ev>), SnapshotError> {
        let expected = Self::config_hash(cfg, service_names);
        let mut r = SnapReader::new(bytes);
        check_header(&mut r, SNAPSHOT_MAGIC, expected)?;
        let machine = Machine::restore_dynamic(cfg, service_names, &mut r)?;
        let queue = EventQueue::load_snapshot(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the event queue",
                bytes.len() - r.position()
            )));
        }
        Ok((machine, queue))
    }

    /// Headerless body of [`Machine::snapshot`] — the cluster layer
    /// embeds per-node machine state under its own single header.
    pub(crate) fn save_dynamic(&self, w: &mut SnapWriter) {
        self.ctx.save_dynamic(w);
    }

    /// Headerless counterpart of [`Machine::save_dynamic`]: rebuilds
    /// statics from the configuration and overwrites dynamics from the
    /// reader.
    pub(crate) fn restore_dynamic(
        cfg: &MachineConfig,
        service_names: &[String],
        r: &mut SnapReader<'_>,
    ) -> Result<Machine, SnapshotError> {
        let mut machine = Machine::new(
            cfg.clone(),
            service_names.to_vec(),
            Vec::new(),
            SimTime::ZERO,
            0,
        );
        machine.ctx.load_dynamic(r)?;
        Ok(machine)
    }
}

// ----- the resumable run handle -----

/// Transparent [`Model`] shim that reports each event before forwarding
/// it to the machine (the anchor for golden event-stream hashing).
pub(crate) struct ObservedMachine<F> {
    pub(crate) machine: Machine,
    pub(crate) observe: F,
}

impl<F: FnMut(SimTime, &Ev)> Model for ObservedMachine<F> {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        (self.observe)(now, &event);
        self.machine.handle(now, event, queue);
    }
}

/// A machine run held open for stepwise control: run to an instant,
/// snapshot, append arrivals, resume, finish. [`Machine::run_arrivals`]
/// and friends are one-shot wrappers over this.
///
/// The observer `F` is invoked for every delivered event in delivery
/// order — pass `|_, _| {}` when the event stream is not needed.
///
/// # Example: checkpoint mid-run, fork, resume
///
/// ```
/// use accelflow_core::machine::{Machine, MachineConfig, MachineRun};
/// use accelflow_core::policy::Policy;
/// use accelflow_core::request::{CallSpec, ServiceSpec, StageSpec};
/// use accelflow_sim::time::{SimDuration, SimTime};
/// use accelflow_trace::templates::TemplateId;
///
/// let mut cfg = MachineConfig::new(Policy::AccelFlow);
/// cfg.warmup = SimDuration::from_millis(1);
/// let services = vec![ServiceSpec::new(
///     "Ping",
///     vec![StageSpec::Call(CallSpec::new(TemplateId::T1))],
/// )];
/// let duration = SimDuration::from_millis(4);
/// let mut run = MachineRun::start_with(
///     &cfg, &services, 2_000.0, duration, 7, |_, _| {},
/// );
/// run.run_to(SimTime::ZERO + SimDuration::from_millis(2));
/// let bytes = run.snapshot();
///
/// // The original continues; a fork resumes from the same instant.
/// let straight = run.finish();
/// let mut fork = MachineRun::restore(&cfg, &services, &bytes, |_, _| {}).unwrap();
/// let forked = fork.finish();
/// assert_eq!(straight.completed(), forked.completed());
/// ```
pub struct MachineRun<F: FnMut(SimTime, &Ev)> {
    sim: Simulation<ObservedMachine<F>>,
}

impl<F: FnMut(SimTime, &Ev)> MachineRun<F> {
    /// Opens a run over a pre-generated arrival list. Arrivals stop at
    /// `duration`; [`MachineRun::finish`] grants the drain margin.
    pub fn start(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        arrivals: Vec<Arrival>,
        duration: SimDuration,
        seed: u64,
        observe: F,
    ) -> Self {
        let names = services.iter().map(|s| s.name.clone()).collect();
        let end = SimTime::ZERO + duration;
        let machine = Machine::new(cfg.clone(), names, arrivals, end, seed);
        let mut sim = Simulation::new(ObservedMachine { machine, observe });
        // Pre-reserve the event heap for the steady-state population:
        // each in-flight request contributes a handful of pending
        // events, bounded by the arrival backlog. Keeps the hot
        // schedule path allocation-free.
        let backlog = sim.model().machine.ctx.arrivals.len().clamp(256, 16_384);
        sim.queue_mut().reserve(backlog);
        if let Some(first) = sim.model().machine.ctx.arrivals.last() {
            let at = first.at;
            sim.queue_mut().schedule_at(at, Ev::Arrive(0));
        }
        // Arm each enabled fault class's Poisson stream (no-op, and no
        // RNG draws, when fault injection is disabled).
        let initial_faults = sim.model_mut().machine.ctx.draw_initial_faults();
        for (at, class) in initial_faults {
            sim.queue_mut().schedule_at(at, Ev::FaultInject(class));
        }
        // Arm the autoscaler's tick chain (no-op without an autoscaler).
        if let Some(at) = sim.model().machine.ctx.first_scale_tick() {
            sim.queue_mut().schedule_at(at, Ev::ScaleTick);
        }
        MachineRun { sim }
    }

    /// [`MachineRun::start`] with Poisson arrivals at `rps_per_service`
    /// for each service over `duration` (the [`Machine::run_workload`]
    /// generator).
    pub fn start_with(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        rps_per_service: f64,
        duration: SimDuration,
        seed: u64,
        observe: F,
    ) -> Self {
        let timing = {
            let mut t =
                accelflow_accel::timing::ServiceTimeModel::calibrated(cfg.arch.core_clock);
            t.set_speedup_scale(cfg.speedup_scale);
            t
        };
        let lib = accelflow_trace::templates::TraceLibrary::standard();
        let arrivals = crate::arrivals::poisson_arrivals(
            services,
            &lib,
            &timing,
            rps_per_service,
            duration,
            seed,
        );
        Self::start(cfg, services, arrivals, duration, seed, observe)
    }

    /// Reopens a run from a snapshot taken by [`MachineRun::snapshot`]
    /// (or [`Machine::snapshot`]). The restored run continues exactly
    /// where the saved one stood; extend it with
    /// [`MachineRun::append_arrivals`] for warm-started sweeps.
    pub fn restore(
        cfg: &MachineConfig,
        services: &[ServiceSpec],
        bytes: &[u8],
        observe: F,
    ) -> Result<Self, SnapshotError> {
        let names: Vec<String> = services.iter().map(|s| s.name.clone()).collect();
        let (machine, queue) = Machine::restore(cfg, &names, bytes)?;
        Ok(MachineRun {
            sim: Simulation::from_parts(ObservedMachine { machine, observe }, queue),
        })
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The arrival horizon (measurement window end; excludes drain).
    pub fn end(&self) -> SimTime {
        self.sim.model().machine.ctx.end
    }

    /// Delivers every event strictly before `t`.
    pub fn run_to(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Takes a versioned snapshot of the machine and its pending
    /// events. The run is not disturbed and may keep going.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let (model, queue) = self.sim.parts_mut();
        model.machine.snapshot(queue)
    }

    /// Appends later arrivals to a (typically restored) run and extends
    /// the horizon to `new_end` — the warm-start path: simulate the
    /// shared prefix once, snapshot, then fork one restored copy per
    /// grid point and feed each its own tail.
    ///
    /// `tail` must be time-sorted and entirely at-or-after both the
    /// current clock and every pending arrival (it is a *tail*). If the
    /// preloaded arrival chain already drained, a fresh admission chain
    /// is armed at the first appended arrival.
    pub fn append_arrivals(&mut self, tail: Vec<Arrival>, new_end: SimTime) {
        let (model, queue) = self.sim.parts_mut();
        let ctx = &mut model.machine.ctx;
        ctx.end = ctx.end.max(new_end);
        if tail.is_empty() {
            return;
        }
        debug_assert!(tail.windows(2).all(|w| w[0].at <= w[1].at), "tail sorted");
        debug_assert!(
            ctx.arrivals.last().is_none_or(|pending| pending.at <= tail[0].at),
            "tail starts after every pending arrival"
        );
        let chain_dead = ctx.arrivals.is_empty();
        let next_idx = ctx.req_slots.len() as u32;
        let first_at = tail[0].at;
        ctx.req_slots
            .extend(std::iter::repeat(SlotId::INVALID).take(tail.len()));
        // `arrivals` is stored reversed (earliest at the back, consumed
        // by pop); the appended tail is later than everything pending,
        // so its reversed form goes in front.
        let mut merged = tail;
        merged.reverse();
        merged.append(&mut ctx.arrivals);
        ctx.arrivals = merged;
        // The admission chain schedules each next Arrive as the prior
        // one delivers; if it already ran dry, re-arm it at the first
        // appended arrival.
        if chain_dead {
            queue.schedule_at(first_at, Ev::Arrive(next_idx));
        }
    }

    /// Runs through the drain window past the horizon and extracts the
    /// report.
    pub fn finish(mut self) -> RunReport {
        let drain = self.sim.model().machine.ctx.end + DRAIN_MARGIN;
        self.sim.run_until(drain);
        let now = self.sim.now();
        let end = self.sim.model().machine.ctx.end;
        let clamped = self.sim.queue_mut().clamped();
        let mut report = self.sim.into_model().machine.ctx.into_report(now, end);
        report.totals.clamped_events = clamped;
        report
    }
}
