//! Fault injection and recovery: the machine-side handlers for
//! [`crate::faults`] (see `docs/RESILIENCE.md`).
//!
//! Injection: each enabled fault class is a Poisson process that
//! re-arms itself through [`Ev::FaultInject`], drawn from the
//! injector's private RNG stream — the workload streams never see a
//! fault draw, so a zero-rate config is bit-identical to no injector.
//!
//! Recovery is layered: a failed hop is **retried** (bounded, with
//! exponential backoff; software designs pay a core submit per retry,
//! the direct-transfer family re-issues from hardware —
//! [`Orchestrator::recovery_via_core`](super::Orchestrator::recovery_via_core)),
//! admission routes around **dark stations** to sibling instances
//! ([`MachineCtx::route_station`]), and when retries exhaust the rest
//! of the segment **degrades** to the existing CPU fallback. Every
//! decision is counted in [`FaultStats`](crate::faults::FaultStats)
//! and checked by the auditor's resilience invariants (no request lost
//! or double-completed under any injected fault).

use accelflow_sim::engine::EventQueue;
use accelflow_sim::telemetry::CompId;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use crate::faults::FaultClass;
use crate::request::CallAddr;

use super::lifecycle::call_arg;
use super::{Ev, MachineCtx};

impl MachineCtx {
    /// Gaps to each enabled class's first injection, drawn in
    /// [`FaultClass::ALL`] order at machine start. Empty (and zero RNG
    /// draws) when fault injection is disabled.
    pub(crate) fn draw_initial_faults(&mut self) -> Vec<(SimTime, FaultClass)> {
        let Some(f) = self.faults.as_mut() else {
            return Vec::new();
        };
        FaultClass::ALL
            .iter()
            .filter_map(|&class| f.draw_gap(class).map(|gap| (SimTime::ZERO + gap, class)))
            .collect()
    }

    /// Whether `station`'s PEs may start work at `now`: not inside a
    /// fault-injected stall window, and lit by the autoscaler (always
    /// true when both subsystems are off).
    pub(crate) fn station_available(&self, station: usize, now: SimTime) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|f| f.avail.is_available(station, now))
            && self.control.as_ref().is_none_or(|c| c.station_lit(station))
    }

    /// Whether any station could currently be dark — fault injection
    /// live, or the autoscaler managing a lit set. The dispatch paths
    /// use this to keep the no-darkness fast path a single branch.
    pub(crate) fn stations_may_be_dark(&self) -> bool {
        self.faults.is_some() || self.control.as_ref().is_some_and(|c| c.scaler_active())
    }

    /// Dispatcher-side routing with darkness awareness: prefers the
    /// least-backlogged *available* instance of `kind`, counting a
    /// re-dispatch when that skips a dark station the plain
    /// least-loaded rule would have picked. With every instance dark
    /// the work queues at the least-loaded one anyway — its SRAM still
    /// buffers, and PEs resume at [`Ev::StallEnd`].
    pub(crate) fn route_station(&mut self, kind: AccelKind, now: SimTime) -> usize {
        let preferred = self.least_loaded_station(kind);
        if !self.stations_may_be_dark() || self.station_available(preferred, now) {
            return preferred;
        }
        let lit = self
            .stations_of(kind)
            .filter(|&i| self.station_available(i, now))
            .min_by_key(|&i| self.accels[i].input().backlog());
        match lit {
            Some(station) => {
                // Routing around a *fault*-dark station is a counted
                // re-dispatch; skipping a scaler-darkened sibling is
                // just the intended lit-set routing.
                if let Some(f) = self.faults.as_mut() {
                    f.stats.redispatches += 1;
                }
                station
            }
            None => preferred,
        }
    }

    /// One fault of `class` fires. The class's Poisson stream re-arms
    /// first, so the chain survives whatever the fault does below.
    pub(crate) fn on_fault_inject(
        &mut self,
        now: SimTime,
        class: FaultClass,
        queue: &mut EventQueue<Ev>,
    ) {
        if let Some(gap) = self.faults.as_mut().and_then(|f| f.draw_gap(class)) {
            queue.schedule(gap, Ev::FaultInject(class));
        }
        match class {
            FaultClass::AccelStall => self.inject_stall(now, queue),
            FaultClass::DmaError => {
                let f = self.faults.as_mut().expect("fault event implies injector");
                f.pending_dma_errors += 1;
                f.stats.dma_errors += 1;
                self.tel_instant_sys(now, CompId::DMA, "fault_dma_error");
            }
            FaultClass::TlbShootdown => self.inject_shootdown(now),
            FaultClass::QueueDrop => self.inject_queue_drop(now, queue),
            FaultClass::AtmMiss => {
                let f = self.faults.as_mut().expect("fault event implies injector");
                f.pending_atm_misses += 1;
                f.stats.atm_misses += 1;
                self.tel_instant_sys(now, CompId::ATM, "fault_atm_miss");
            }
        }
    }

    /// A station's PEs go dark for a drawn duration; jobs running there
    /// fail (poisoned; their `PeDone` routes to recovery).
    fn inject_stall(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let stations = self.accels.len();
        let (station, dur) = {
            let f = self.faults.as_mut().expect("fault event implies injector");
            let station = f.rng.index(stations);
            let mean = (f.cfg.stall_duration.as_picos() as f64).max(1.0);
            let dur = SimDuration::from_picos(f.rng.exponential(mean).min(3.6e15) as u64)
                .max(SimDuration::from_picos(1));
            (station, dur)
        };
        let failed: Vec<usize> = self.accels[station].busy_pe_indices().collect();
        let f = self.faults.as_mut().expect("fault event implies injector");
        let until = f.avail.darken(station, now, dur);
        f.stats.stalls += 1;
        f.stats.jobs_failed += failed.len() as u64;
        for pe in failed {
            f.poison(station, pe);
        }
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_station_dark(now, station, until);
        }
        self.tel_instant_sys(now, CompId::accelerator(station as u16), "fault_stall");
        queue.schedule_at(until, Ev::StallEnd(station as u8));
    }

    /// Shootdown storm: every accelerator TLB invalidated at once.
    fn inject_shootdown(&mut self, now: SimTime) {
        let mut flushed = 0;
        for acc in &mut self.accels {
            flushed += acc.tlb_mut().flush_all();
        }
        let f = self.faults.as_mut().expect("fault event implies injector");
        f.stats.tlb_shootdowns += 1;
        f.stats.tlb_entries_flushed += flushed;
        self.tel_instant_sys(now, CompId::MACHINE, "fault_tlb_shootdown");
    }

    /// One occupied SRAM input-queue entry is lost before reaching a
    /// PE; the orphaned call re-enters through recovery.
    fn inject_queue_drop(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let stations = self.accels.len();
        let start = self
            .faults
            .as_mut()
            .expect("fault event implies injector")
            .rng
            .index(stations);
        // First station with SRAM entries, scanning from a random
        // start; every queue empty means the glitch hit vacant slots.
        let Some(station) = (0..stations)
            .map(|k| (start + k) % stations)
            .find(|&i| !self.accels[i].input().is_empty())
        else {
            return;
        };
        let len = self.accels[station].input().len();
        let f = self.faults.as_mut().expect("fault event implies injector");
        let idx = f.rng.index(len);
        f.stats.queue_drops += 1;
        let entry = self.accels[station].drop_entry(idx);
        self.tel_instant_sys(now, CompId::accelerator(station as u16), "fault_queue_drop");
        self.recover_call(now, CallAddr::from_tag(entry.tag), queue);
    }

    /// A station's stall window may have ended: wake its input queue
    /// (and the shared queue under RELIEF).
    pub(crate) fn on_stall_end(&mut self, now: SimTime, station: u8, queue: &mut EventQueue<Ev>) {
        if !self.station_available(station as usize, now) {
            // A later stall extended the window; its own StallEnd wakes.
            return;
        }
        self.tel_instant_sys(now, CompId::accelerator(station as u16), "stall_end");
        if self.orch.single_shared_queue() {
            self.dispatch_shared(now, queue);
        }
        queue.schedule(SimDuration::ZERO, Ev::TryStart(station));
    }

    /// Consumes one armed A-DMA transfer error, if any: the transfer
    /// still occupied its engine until `at`, but the payload arrives
    /// corrupt and is discarded. Returns true when the caller must
    /// suppress the normal delivery (the hop re-enters via recovery).
    pub(crate) fn dma_transfer_faulted(
        &mut self,
        at: SimTime,
        addr: CallAddr,
        queue: &mut EventQueue<Ev>,
    ) -> bool {
        let Some(f) = self.faults.as_mut() else {
            return false;
        };
        if f.pending_dma_errors == 0 {
            return false;
        }
        f.pending_dma_errors -= 1;
        self.tel_instant(at, CompId::DMA, "dma_corrupt", addr.req);
        self.recover_call(at, addr, queue);
        true
    }

    /// Consumes one armed ATM fetch miss, if any, returning the extra
    /// refetch latency the synchronous read pays.
    pub(crate) fn atm_read_penalty(&mut self, at: SimTime, addr: CallAddr) -> SimDuration {
        let Some(f) = self.faults.as_mut() else {
            return SimDuration::ZERO;
        };
        if f.pending_atm_misses == 0 {
            return SimDuration::ZERO;
        }
        f.pending_atm_misses -= 1;
        f.stats.atm_refetches += 1;
        let penalty = f.cfg.atm_miss_penalty;
        self.tel_instant(at, CompId::ATM, "atm_refetch", addr.req);
        self.charge(addr.req, |b| b.communication += penalty);
        penalty
    }

    /// Takes the poison flag for `(station, pe)` — set when a stall
    /// failed the job mid-flight. Must run at *every* `PeDone`, even
    /// for dead requests, so a flag never outlives the slot's current
    /// occupant.
    pub(crate) fn pe_job_poisoned(&mut self, station: usize, pe: usize) -> bool {
        self.faults
            .as_mut()
            .map(|f| f.take_poisoned(station, pe))
            .unwrap_or(false)
    }

    /// The recovery policy for a failed hop: bounded retry with
    /// exponential backoff, then degradation of the segment remainder
    /// to the CPU fallback. Retried first hops re-enter ordinary
    /// admission, which routes around dark stations (sibling
    /// re-dispatch). The attempt budget is per call position
    /// ([`CallAddr::tag`]) over the request's lifetime.
    pub(crate) fn recover_call(&mut self, at: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        if self.req_gone(addr.req) {
            return;
        }
        let tag = addr.tag();
        let (spent, max_retries) = {
            let f = self.faults.as_mut().expect("recovery implies injector");
            let max = f.cfg.max_retries;
            let spent = match f.retries.iter().find(|(t, _)| *t == tag) {
                Some(&(_, n)) => n,
                None => {
                    f.retries.push((tag, 0));
                    0
                }
            };
            (spent, max)
        };
        if spent >= max_retries {
            let f = self.faults.as_mut().expect("recovery implies injector");
            if let Some(pos) = f.retries.iter().position(|(t, _)| *t == tag) {
                f.retries.swap_remove(pos);
            }
            f.stats.degraded += 1;
            self.totals.fallbacks += 1;
            self.tel_instant_arg(
                at,
                CompId::MACHINE,
                "fault_degrade",
                addr.req,
                call_arg(addr.step, addr.par),
            );
            self.fallback_segment(at, addr, queue);
            return;
        }
        let (attempt, backoff) = {
            let f = self.faults.as_mut().expect("recovery implies injector");
            let a = &mut f
                .retries
                .iter_mut()
                .find(|(t, _)| *t == tag)
                .expect("entry just inserted")
                .1;
            *a += 1;
            let attempt = *a;
            let backoff = f.cfg.backoff_after(attempt - 1);
            f.stats.retries += 1;
            f.stats.backoff_time += backoff;
            (attempt, backoff)
        };
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_retry(at, attempt, max_retries);
        }
        self.tel_instant_arg(at, CompId::MACHINE, "fault_retry", addr.req, attempt as u64);
        let ready = if self.orch.recovery_via_core() {
            // Software-managed designs: a core notices the failure and
            // re-submits (same overhead as an external-response pickup).
            let submit = self.cfg.arch.cpu_submit_overhead;
            let b = self.cores.acquire(at, submit);
            self.energy.add_core_busy(submit);
            self.charge(addr.req, |bd| bd.orchestration += submit);
            b.finish
        } else {
            at
        };
        queue.schedule_at(ready + backoff, Ev::HopArrive(addr));
    }

    /// Drops retry bookkeeping for a terminating request (called from
    /// `complete_request`), keeping the map bounded by the live set.
    pub(crate) fn prune_retries(&mut self, req: u32) {
        if let Some(f) = self.faults.as_mut() {
            if !f.retries.is_empty() {
                f.retries.retain(|&(tag, _)| (tag >> 32) as u32 != req);
            }
        }
    }
}
