//! Request lifecycle: admission, program stepping, call initiation,
//! call completion, timeouts, and termination.
//!
//! A request is admitted by [`MachineCtx::on_arrive`], walks its
//! program one step at a time ([`MachineCtx::on_start_step`]), and
//! terminates through [`MachineCtx::complete_request`] — either
//! normally after its last step or early when a TCP response timeout
//! fires ([`MachineCtx::on_timeout`], §IV-B). Trace calls started here
//! hand off to the [`transfer`](super::transfer) module for submission
//! and are notified back through [`MachineCtx::on_call_done`].

use accelflow_sim::engine::EventQueue;
use accelflow_sim::telemetry::CompId;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use crate::request::{CallAddr, Program, SegmentEnd, ServiceId, Step};

use super::{Ev, MachineCtx};
use accelflow_accel::queue::TenantId;

/// Per-request simulation state, parked in the machine's request table
/// from admission to termination.
#[derive(Debug)]
pub(crate) struct RequestState {
    pub(crate) service: ServiceId,
    pub(crate) tenant: TenantId,
    pub(crate) arrival: SimTime,
    pub(crate) measured: bool,
    pub(crate) program: Program,
    pub(crate) step: usize,
    pub(crate) pending_calls: u32,
    /// Trace calls currently holding a per-tenant slot. Unlike
    /// `pending_calls` (which only counts the current step), this spans
    /// the whole request so termination can release slots still held by
    /// in-flight calls (e.g. siblings of a timed-out await).
    pub(crate) active_calls: u32,
    /// Bitmask of parallel arms already completed in the *current*
    /// step (bit `par.min(31)`), reset when the step advances. Guards
    /// [`MachineCtx::on_timeout`] against a stale timer firing for a
    /// call that completed while the request is still alive — the call
    /// must not re-enter accounting (no timeout count, no error, no
    /// second call-finished record).
    pub(crate) completed_pars: u32,
    pub(crate) deadline: Option<SimTime>,
    pub(crate) done: bool,
    pub(crate) error: bool,
}

impl MachineCtx {
    pub(crate) fn on_arrive(&mut self, now: SimTime, idx: u32, queue: &mut EventQueue<Ev>) {
        // Arrivals are stored reversed and admitted strictly in order,
        // so the current one is the tail; popping it frees its payload
        // now instead of leaving a tombstone for the run's lifetime.
        let arrival = self.arrivals.pop().expect("arrival taken once");
        // Chain the next arrival.
        if let Some(next) = self.arrivals.last() {
            let at = next.at;
            queue.schedule_at(at, Ev::Arrive(idx + 1));
        }
        let measured = now >= self.warmup_end && now < self.end;
        // Ingress control (rate limit / admission ceiling): a rejected
        // arrival is never admitted — no request state, no `offered`
        // row, no audit record — but the arrival chain above already
        // ran, so the open-loop stream never stalls.
        if self.control.is_some() {
            let tenant = arrival.tenant.0 as usize;
            if let Some(reason) = self.ingress_reject_reason(now, tenant, measured) {
                self.tel_instant(now, CompId::MACHINE, reason, idx);
                return;
            }
        }
        let deadline = arrival.program.slo_slack.map(|slack| {
            let est = self.unloaded_estimate(&arrival.program);
            now + est * slack
        });
        if measured {
            self.stats[arrival.service.0].offered += 1;
        }
        let slot = self.requests.insert(RequestState {
            service: arrival.service,
            tenant: arrival.tenant,
            arrival: now,
            measured,
            program: arrival.program,
            step: 0,
            pending_calls: 0,
            active_calls: 0,
            completed_pars: 0,
            deadline,
            done: false,
            error: false,
        });
        self.req_slots[idx as usize] = slot;
        self.live += 1;
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_admit(now, idx, measured);
        }
        self.tel_instant(now, CompId::MACHINE, "arrive", idx);
        queue.schedule(SimDuration::ZERO, Ev::StartStep(idx));
    }

    /// Unloaded execution estimate for SLO deadlines: accel compute +
    /// app cycles + external waits.
    fn unloaded_estimate(&self, program: &Program) -> SimDuration {
        let mut total = self.cfg.arch.cycles(program.app_cycles() / self.app_factor);
        for call in program.calls() {
            for seg in &call.segments {
                for hop in &seg.hops {
                    total += self.timing.accel_time(hop.kind, hop.in_bytes);
                }
                if let SegmentEnd::AwaitResponse { external } = seg.end {
                    total += external;
                }
            }
        }
        total
    }

    pub(crate) fn on_start_step(&mut self, now: SimTime, req: u32, queue: &mut EventQueue<Ev>) {
        let (step_idx, done) = {
            let r = self.req(req);
            (r.step, r.step >= r.program.steps.len())
        };
        if done {
            self.complete_request(now, req);
            return;
        }
        enum Plan {
            Cpu(f64),
            Calls(u8),
        }
        let plan = match &self.req(req).program.steps[step_idx] {
            Step::Cpu { cycles } => Plan::Cpu(*cycles),
            Step::Call(_) => Plan::Calls(1),
            Step::Parallel(cs) => Plan::Calls(cs.len() as u8),
        };
        match plan {
            Plan::Cpu(cycles) => {
                let service = self.cfg.arch.cycles(cycles / self.app_factor);
                let booking = self.cores.acquire(now, service);
                self.energy.add_core_busy(service);
                self.charge(req, |b| b.cpu += service);
                queue.schedule_at(booking.finish, Ev::AppDone(req));
            }
            Plan::Calls(n) => {
                self.req_mut(req).pending_calls = n as u32;
                for par in 0..n {
                    self.start_call(
                        now,
                        CallAddr {
                            req,
                            step: step_idx as u8,
                            par,
                            seg: 0,
                            hop: 0,
                        },
                        queue,
                    );
                }
            }
        }
    }

    pub(crate) fn on_app_done(&mut self, _now: SimTime, req: u32, queue: &mut EventQueue<Ev>) {
        self.req_mut(req).step += 1;
        queue.schedule(SimDuration::ZERO, Ev::StartStep(req));
    }

    /// Initiates one trace call: tenant-cap admission, then policy-
    /// specific submission (or the Non-acc CPU path).
    pub(crate) fn start_call(&mut self, now: SimTime, addr: CallAddr, queue: &mut EventQueue<Ev>) {
        // A throttled retry may land after a timeout terminated the
        // request; there is nothing left to start.
        if self.req_gone(addr.req) {
            return;
        }
        // Per-tenant trace cap (§IV-D): over-cap initiations are
        // throttled by retrying shortly (the VMM delays the Enqueue).
        let tenant = self.req(addr.req).tenant;
        let idx = tenant.0 as usize;
        let active = self.tenant_active.get(idx).copied().unwrap_or(0);
        if active as usize >= self.cfg.tenant_cap {
            self.totals.tenant_throttled += 1;
            self.tel_instant(now, CompId::MACHINE, "tenant_throttle", addr.req);
            queue.schedule(SimDuration::from_micros(5), Ev::HopArriveRetry(addr));
            return;
        }
        if idx >= self.tenant_active.len() {
            self.tenant_active.resize(idx + 1, 0);
        }
        self.tenant_active[idx] += 1;
        self.req_mut(addr.req).active_calls += 1;
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_call_start(now);
        }

        if self.orch.cpu_only() {
            self.start_segment_on_cpu(now, addr, queue);
            return;
        }
        self.submit_call(now, addr, queue);
    }

    /// The call's final notification was delivered: release the per-
    /// tenant slot and advance the step once every sibling finished.
    /// `step`/`par` identify the exact call for audit and telemetry.
    pub(crate) fn on_call_done(
        &mut self,
        now: SimTime,
        req: u32,
        step: u8,
        par: u8,
        error: bool,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.req_gone(req) {
            return;
        }
        // The core picks up the user-level notification.
        let pickup = self.cfg.arch.cycles(self.cfg.arch.pickup_cycles);
        self.cores.acquire(now, pickup);
        self.energy.add_core_busy(pickup);
        self.charge(req, |b| b.cpu += pickup);

        let tenant = self.req(req).tenant;
        if let Some(n) = self.tenant_active.get_mut(tenant.0 as usize) {
            *n = n.saturating_sub(1);
        }
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_call_end(now, 1);
            aud.record_call_finished(now, req, step, par);
        }
        self.tel_instant_arg(now, CompId::MACHINE, "call_done", req, call_arg(step, par));
        let r = self.req_mut(req);
        r.completed_pars |= 1u32 << par.min(31);
        r.active_calls = r.active_calls.saturating_sub(1);
        if error {
            r.error = true;
        }
        r.pending_calls = r.pending_calls.saturating_sub(1);
        if r.pending_calls == 0 {
            r.step += 1;
            r.completed_pars = 0;
            queue.schedule(SimDuration::ZERO, Ev::StartStep(req));
        }
    }

    /// A TCP response timeout terminated the request (§IV-B).
    /// `step`/`par` identify the awaiting call that never got its
    /// response, for audit and telemetry attribution.
    pub(crate) fn on_timeout(&mut self, now: SimTime, req: u32, step: u8, par: u8) {
        if self.req_gone(req) {
            return;
        }
        // Stale-timer guard: the awaited response (or a recovery retry)
        // completed this call before the timer fired, but a sibling arm
        // kept the request alive. The completed call must not re-enter
        // accounting — counting the timeout, re-recording the finish,
        // and terminating the request here would double-complete it
        // (flagged by the auditor's call-finished-once invariant).
        {
            let r = self.req(req);
            if r.step != step as usize || r.completed_pars & (1u32 << par.min(31)) != 0 {
                return;
            }
        }
        self.totals.tcp_timeouts += 1;
        self.tel_instant_arg(now, CompId::MACHINE, "timeout", req, call_arg(step, par));
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_call_finished(now, req, step, par);
        }
        // The core terminates the request (§IV-B).
        let handling = self.cfg.arch.cycles(self.cfg.arch.pickup_cycles);
        self.cores.acquire(now, handling);
        self.energy.add_core_busy(handling);
        self.req_mut(req).error = true;
        self.complete_request(now, req);
    }

    pub(crate) fn complete_request(&mut self, now: SimTime, req: u32) {
        let slot = self.req_slots[req as usize];
        let r = self.requests.get_mut(slot).expect("request alive");
        if r.done {
            return;
        }
        r.done = true;
        self.live -= 1;
        // A timeout can terminate the request while sibling calls are
        // still in flight; their per-tenant slots must be released here
        // or the tenant cap throttles forever on leaked slots (the
        // stale CallDone events are dropped by the `req_gone` guards).
        let leftover = std::mem::take(&mut r.active_calls);
        let tenant = r.tenant;
        let measured = r.measured;
        if leftover > 0 {
            if let Some(n) = self.tenant_active.get_mut(tenant.0 as usize) {
                *n = n.saturating_sub(leftover);
            }
        }
        if let Some(aud) = self.auditor.as_mut() {
            aud.record_terminate(now, req, measured);
            if leftover > 0 {
                aud.record_call_end(now, leftover);
            }
        }
        self.tel_instant(now, CompId::MACHINE, "done", req);
        let r = self.requests.get_mut(slot).expect("request alive");
        let latency = now.saturating_since(r.arrival);
        if r.measured {
            let svc = r.service.0;
            let missed = r.deadline.map(|d| now > d).unwrap_or(false);
            let error = r.error;
            // Fig 1 attribution: CPU-equivalent tax per kind + app.
            let mut tax = [SimDuration::ZERO; AccelKind::COUNT];
            for call in r.program.calls() {
                for seg in &call.segments {
                    for hop in &seg.hops {
                        tax[hop.kind.id() as usize] += self.timing.cpu_time(hop.kind, hop.in_bytes);
                    }
                }
            }
            let app = self
                .cfg
                .arch
                .cycles(r.program.app_cycles() / self.app_factor);
            let stats = &mut self.stats[svc];
            stats.latency.record_duration(latency);
            if self.cfg.sample_latencies {
                stats.samples.push((now, latency));
            }
            stats.completed += 1;
            if missed {
                stats.deadline_misses += 1;
            }
            if error {
                stats.errors += 1;
            }
            for (i, d) in tax.iter().enumerate() {
                stats.tax_by_kind[i] += *d;
            }
            stats.app_logic += app;
        }
        if measured {
            // SLO-window tracking (docs/WORKLOADS.md): bucket this
            // completion into the current window.
            if let Some(c) = self.control.as_mut() {
                c.observe_completion(now, latency);
            }
        }
        // Free the slot: the slab recycles it for the next admission,
        // and the bumped generation turns any straggler lookup through
        // `req_slots` into a miss (`req_gone`) rather than an alias.
        self.requests.remove(slot);
        // Drop any recovery retry budgets held by this request's calls.
        self.prune_retries(req);
    }
}

/// Packs a call position into the telemetry `arg` field:
/// `(step << 8) | par`, so two parallel arms of one step stay
/// distinguishable in the record stream.
pub(crate) fn call_arg(step: u8, par: u8) -> u64 {
    ((step as u64) << 8) | par as u64
}
