//! Online control handlers: ingress admission decisions and the
//! telemetry-feedback autoscaler (see [`crate::control`] and
//! `docs/WORKLOADS.md`).
//!
//! Ingress control runs inside `on_arrive`, *after* the next arrival
//! is chained (rejecting a request must never stall the open-loop
//! stream) and *before* any request state exists — a rejected arrival
//! is never admitted, so the auditor's conservation invariants hold
//! untouched.
//!
//! The autoscaler is a periodic [`Ev::ScaleTick`] chain (armed only
//! when configured, like the fault streams): each tick differences
//! per-station busy time into a windowed per-kind utilization row,
//! pushes it into the control state's [`Sampler`] signal, and — when
//! adaptive — lights or darkens at most one station per kind. The
//! actuator is the PR 5 darkness machinery: a darkened station fails
//! `station_available` exactly like a fault-stalled one, and
//! relighting wakes the station through the same [`Ev::StallEnd`]
//! path.
//!
//! [`Sampler`]: accelflow_sim::telemetry::Sampler

use accelflow_sim::engine::EventQueue;
use accelflow_sim::telemetry::CompId;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::kind::AccelKind;

use super::{Ev, MachineCtx};

impl MachineCtx {
    /// The first autoscaler tick instant, when one is configured.
    pub(crate) fn first_scale_tick(&self) -> Option<SimTime> {
        self.control
            .as_ref()
            .and_then(|c| c.cfg.autoscaler)
            .map(|a| SimTime::ZERO + a.interval)
    }

    /// Ingress decision for one arrival: `None` admits; otherwise the
    /// rejection reason (also the telemetry instant name). Counters
    /// cover measured arrivals only, matching `offered`.
    pub(crate) fn ingress_reject_reason(
        &mut self,
        now: SimTime,
        tenant: usize,
        measured: bool,
    ) -> Option<&'static str> {
        let live = self.live;
        let c = self.control.as_mut()?;
        if !c.take_token(tenant, now) {
            if measured {
                c.stats.rate_limited += 1;
            }
            return Some("rate_limited");
        }
        if let Some(max) = c.cfg.max_live {
            if live >= max {
                if measured {
                    c.stats.shed += 1;
                }
                return Some("load_shed");
            }
        }
        if measured {
            c.stats.admitted += 1;
        }
        None
    }

    /// One autoscaler tick: sample the utilization signal, decide, and
    /// re-arm. The chain stops re-arming once the arrival window ends
    /// (the drain runs with the final lit set).
    pub(crate) fn on_scale_tick(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let end = self.end;
        let MachineCtx {
            control,
            accels,
            cfg,
            tel,
            ..
        } = self;
        let Some(c) = control.as_mut() else { return };
        let Some(auto) = c.cfg.autoscaler else { return };
        if now < end {
            queue.schedule(auto.interval, Ev::ScaleTick);
        }
        if !c.signal.due(now) {
            return;
        }
        let window = now.saturating_since(c.prev_tick).as_picos();
        let instances = cfg.instances_per_accel;
        let pes = cfg.arch.pes_per_accelerator as u64;
        let mut row = Vec::with_capacity(AccelKind::COUNT);
        for kind in 0..AccelKind::COUNT {
            let range = kind * instances..(kind + 1) * instances;
            let mut delta = 0u64;
            for (acc, prev) in accels[range.clone()]
                .iter()
                .zip(&mut c.prev_busy[range.clone()])
            {
                let busy = acc.busy_time().as_picos();
                delta += busy - *prev;
                *prev = busy;
            }
            let lit_count = range.clone().filter(|&i| c.lit[i]).count();
            // Utilization of the *lit* capacity of this kind, percent.
            let denom = window * pes * lit_count.max(1) as u64;
            let util_pct = (delta * 100).checked_div(denom).unwrap_or(0);
            row.push(util_pct);

            if !auto.adaptive {
                continue;
            }
            let util = delta as f64 / denom.max(1) as f64;
            if util > auto.light_above && lit_count < instances {
                // Light the lowest-index dark station of the kind and
                // wake it through the stall-end path.
                let station = range.clone().find(|&i| !c.lit[i]).expect("a dark station");
                c.lit[station] = true;
                if let Some(since) = c.dark_since[station].take() {
                    c.stats.scaler_dark_time += now.saturating_since(since);
                }
                c.stats.scale_ups += 1;
                if let Some(t) = tel.as_mut() {
                    t.sink.instant(
                        now,
                        CompId::accelerator(station as u16),
                        "scale_light",
                        None,
                    );
                }
                queue.schedule(SimDuration::ZERO, Ev::StallEnd(station as u8));
            } else if util < auto.darken_below && lit_count > 1 {
                // Darken the highest-index lit station whose input
                // queue is empty — darkening never strands queued work.
                let station = range
                    .clone()
                    .rev()
                    .find(|&i| c.lit[i] && accels[i].input().backlog() == 0);
                if let Some(station) = station {
                    c.lit[station] = false;
                    c.dark_since[station] = Some(now);
                    c.stats.scale_downs += 1;
                    if let Some(t) = tel.as_mut() {
                        t.sink.instant(
                            now,
                            CompId::accelerator(station as u16),
                            "scale_dark",
                            None,
                        );
                    }
                }
            }
        }
        c.signal.push_row(now, row);
        c.prev_tick = now;
    }
}
