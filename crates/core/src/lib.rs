//! The AccelFlow machine model and orchestration policies — the
//! paper's contribution, executable.
//!
//! This crate assembles the substrates (simulation kernel, hardware
//! models, trace library, accelerator stations) into a full server
//! model and implements every orchestration design the paper
//! evaluates:
//!
//! - [`policy`] — Non-acc, CPU-Centric, RELIEF (+ the Fig 13 ablation
//!   rungs), Cohort, AccelFlow (+ deadline scheduling), and Ideal.
//! - [`request`] — service specifications (Table IV paths) and the
//!   sampled request programs the machine executes.
//! - [`machine`] — the event-driven server: cores, the nine
//!   accelerator stations, A-DMA engines, the centralized manager, the
//!   ATM, overflow/fallback/timeout handling, multi-tenancy, and SLO
//!   deadlines.
//! - [`stats`] — run reports: latency percentiles, execution-time
//!   breakdowns, counters, utilization, and energy.

pub mod machine;
pub mod policy;
pub mod request;
pub mod stats;

pub use machine::{poisson_arrivals, Arrival, Machine, MachineConfig};
pub use policy::Policy;
pub use request::{
    CallSpec, CyclesDist, ExternalSpec, FlagProbs, Program, Segment, SegmentEnd, ServiceId,
    ServiceSpec, SizeDist, StageSpec, Step, TraceCall,
};
pub use stats::{Breakdown, MachineTotals, RunReport, ServiceStats};
