//! The AccelFlow machine model and orchestration policies — the
//! paper's contribution, executable.
//!
//! This crate assembles the substrates (simulation kernel, hardware
//! models, trace library, accelerator stations) into a full server
//! model and implements every orchestration design the paper
//! evaluates:
//!
//! - [`policy`] — Non-acc, CPU-Centric, RELIEF (+ the Fig 13 ablation
//!   rungs), Cohort, AccelFlow (+ deadline scheduling), and Ideal.
//! - [`request`] — service specifications (Table IV paths) and the
//!   sampled request programs the machine executes.
//! - [`arrivals`] — open-loop Poisson arrival generation, shared by
//!   the machine's own runner and external workload generators.
//! - [`machine`] — the event-driven server: cores, the nine
//!   accelerator stations, A-DMA engines, the centralized manager, the
//!   ATM, overflow/fallback/timeout handling, multi-tenancy, and SLO
//!   deadlines.
//! - [`stats`] — run reports: latency percentiles, execution-time
//!   breakdowns, counters, utilization, and energy.
//! - [`audit`] — the invariant auditor the machine consults at every
//!   state transition (request/call conservation, queue bounds,
//!   monotonicity, ATM chain termination); always on in debug builds,
//!   opt-in via the `audit` feature for release runs.
//! - [`faults`] — seeded deterministic fault injection (stalls, DMA
//!   errors, TLB shootdowns, queue drops, ATM misses) and the recovery
//!   counters; see `docs/RESILIENCE.md`.
//! - [`control`] — online traffic control for open-loop load:
//!   per-tenant rate limiting, admission ceilings, SLO-window
//!   tracking, and the telemetry-feedback station autoscaler; see
//!   `docs/WORKLOADS.md`.
//! - [`cluster`] — a fleet of machines behind a two-level
//!   orchestrator: one shared event kernel, pluggable load balancers,
//!   an inter-node link model, and keep-alive health relocation; see
//!   `docs/CLUSTER.md`.
//!
//! Two observability layers ride along with the machine, both gated so
//! the disabled hot path costs a single branch:
//!
//! | Layer | Runtime switch | Cargo feature | Debug default |
//! |-------|----------------|---------------|---------------|
//! | invariant audit | [`MachineConfig::audit`] | `audit` | on |
//! | telemetry | [`MachineConfig::telemetry`] | `telemetry` | off |
//!
//! Telemetry records land in
//! [`RunReport::telemetry`](stats::RunReport::telemetry) and export to
//! a Perfetto-loadable Chrome trace; `docs/METRICS.md` defines every
//! metric and record, and DESIGN.md §7 describes the machinery.

#![warn(missing_docs)]

pub mod arrivals;
pub mod audit;
pub mod cluster;
pub mod control;
pub mod faults;
pub mod machine;
pub mod policy;
pub mod request;
pub mod stats;

pub use arrivals::{poisson_arrivals, Arrival, BUFFER_POOL};
pub use audit::{AuditReport, Auditor, Violation};
pub use cluster::{BalancerKind, Cluster, ClusterConfig, ClusterReport, NodeLink};
pub use control::{AutoscalerConfig, ControlConfig, ControlStats, RateLimit, SloTarget};
pub use faults::{FaultClass, FaultConfig, FaultStats};
pub use machine::{Machine, MachineConfig};
pub use policy::Policy;
pub use request::{
    CallSpec, CyclesDist, ExternalSpec, FlagProbs, Program, Segment, SegmentEnd, ServiceId,
    ServiceSpec, SizeDist, StageSpec, Step, TraceCall,
};
pub use stats::{Breakdown, MachineTotals, RunReport, ServiceStats};
