//! Golden event-sequence snapshots, one per orchestration policy.
//!
//! Each test runs a fixed workload on a fixed seed and folds every
//! delivered `(time, event)` pair into an FNV-1a hash via
//! [`Machine::run_arrivals_observed`]. The hashes below were captured
//! on the pre-refactor monolithic `machine.rs`; any refactor of the
//! machine's module tree or of the policy dispatch must keep every
//! stream bit-identical, so these constants are the proof that a
//! restructure preserved behaviour exactly.
//!
//! If a hash mismatches, the event *stream* changed — not merely an
//! internal detail. That is only acceptable for a deliberate model
//! change, in which case recapture with:
//!
//! ```text
//! GOLDEN_EVENTS_PRINT=1 cargo test -p accelflow-core --test golden_events -- --nocapture
//! ```
//!
//! The hash covers the `Debug` rendering of events (all fields of
//! `Ev`/`CallAddr`), so renaming variants or fields also recaptures —
//! that is intended: the event vocabulary is part of the contract.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_arch::config::ArchConfig;
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_core::request::{CallSpec, CyclesDist, ServiceSpec, StageSpec};
use accelflow_core::{poisson_arrivals, Arrival};
use accelflow_sim::time::SimDuration;
use accelflow_trace::templates::{TemplateId, TraceLibrary};

/// FNV-1a over the bytes of one rendered event line.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The fixed workload: one short service and one DB-heavy service with
/// parallel calls, awaits, and chained segments — together they reach
/// every event variant (arrivals, app stages, hops, PE completions,
/// external awaits, call completions, fallbacks under pressure).
fn services() -> Vec<ServiceSpec> {
    let mut simple = ServiceSpec::new(
        "Simple",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            StageSpec::Cpu(CyclesDist::new(40_000.0, 0.2)),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    );
    let mut with_db = ServiceSpec::new(
        "WithDb",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
            StageSpec::Call(CallSpec::new(TemplateId::T4)),
            StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
            StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 2]),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    );
    // Tight SLO deadlines so `AccelFlowDeadline`'s deadline-aware input
    // scheduling actually reorders under load (without deadlines at
    // risk it degenerates to FIFO and collides with `AccelFlow`).
    simple.slo_slack = Some(1.2);
    with_db.slo_slack = Some(1.2);
    vec![simple, with_db]
}

fn arrivals(rps: f64, millis: u64, seed: u64) -> Vec<Arrival> {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
    poisson_arrivals(
        &services(),
        &lib,
        &timing,
        rps,
        SimDuration::from_millis(millis),
        seed,
    )
}

/// Runs one policy over a prepared arrival list and hashes the stream.
fn stream_hash(cfg: &MachineConfig, arrivals: Vec<Arrival>, millis: u64, seed: u64) -> (u64, u64) {
    let mut hash = FNV_OFFSET;
    let mut events = 0u64;
    let report = Machine::run_arrivals_observed(
        cfg,
        &services(),
        arrivals,
        SimDuration::from_millis(millis),
        seed,
        |now, ev| {
            events += 1;
            fnv1a(&mut hash, format!("{now:?}|{ev:?}\n").as_bytes());
        },
    );
    assert!(report.offered() > 0, "workload produced no load");
    (hash, events)
}

/// The nominal run: default machine under enough load that input
/// queues hold several entries (so scheduling-policy differences — e.g.
/// deadline-aware reordering — show up in the stream).
fn nominal_hash(policy: Policy) -> (u64, u64) {
    nominal_hash_with(policy, |_| {})
}

/// [`nominal_hash`] with a config tweak applied before the run, so
/// variations (fault injection on/off) reuse the same workload.
fn nominal_hash_with(policy: Policy, tweak: impl FnOnce(&mut MachineConfig)) -> (u64, u64) {
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = SimDuration::from_millis(2);
    // Slow, narrow accelerators: queues hold several entries at this
    // load, so waiting work is genuinely reordered by non-FIFO input
    // scheduling and overflow/fallback paths get exercised.
    cfg.arch.pes_per_accelerator = 2;
    cfg.speedup_scale = 0.25;
    // Pin the observability switches so debug/release and the
    // audit/telemetry feature combinations all hash one stream.
    cfg.audit = false;
    cfg.telemetry = false;
    tweak(&mut cfg);
    stream_hash(&cfg, arrivals(6_000.0, 30, 11), 30, 11)
}

/// The stress run: tight TCP timeout and a tiny tenant cap, forcing
/// timeout terminations, stale-event drops, throttle retries, and the
/// tenant-slot cleanup paths.
fn stress_hash(policy: Policy) -> (u64, u64) {
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = SimDuration::from_millis(1);
    cfg.audit = false;
    cfg.telemetry = false;
    cfg.tcp_timeout = SimDuration::from_micros(10);
    cfg.tenant_cap = 4;
    stream_hash(&cfg, arrivals(1_500.0, 20, 7), 20, 7)
}

/// Captured on the pre-refactor `machine.rs` monolith (seed state of
/// this PR): `(policy, nominal stream hash, stress stream hash)`.
const GOLDEN: &[(Policy, u64, u64)] = &[
    (Policy::NonAcc, 0x010792f6d58620f1, 0x09e16c6a2d5f4c18),
    (Policy::CpuCentric, 0x71a518de6ac93f3d, 0x1e36a99fa6ab3b73),
    (Policy::Relief, 0x8f79795ee8369aee, 0x4690843cecf82223),
    (
        Policy::ReliefPerTypeQ,
        0xa89e7d3a26a3bde1,
        0x6a68225cc5542fea,
    ),
    (Policy::Direct, 0xa285097637983236, 0x8d93e136b87dbf08),
    (Policy::CntrFlow, 0x4140c66c866e4621, 0x05299c74d9400897),
    (Policy::AccelFlow, 0x5e7b620c65f26463, 0xab5e3a87403c935a),
    (
        Policy::AccelFlowDeadline,
        0x9bad33e720213de4,
        0xab5e3a87403c935a,
    ),
    (Policy::Cohort, 0x93b2ba7be7bd7b57, 0xc53f44fd55bf3c61),
    (Policy::Ideal, 0xc7fe51d8adca8767, 0xeeaef10ee8c43ade),
];

#[test]
fn event_streams_match_golden_hashes() {
    let print = std::env::var("GOLDEN_EVENTS_PRINT").is_ok();
    let mut failures = Vec::new();
    for &(policy, nominal, stress) in GOLDEN {
        let (nh, nevents) = nominal_hash(policy);
        let (sh, sevents) = stress_hash(policy);
        assert!(nevents > 1_000, "{policy}: nominal stream too thin");
        assert!(sevents > 200, "{policy}: stress stream too thin");
        if print {
            println!("    (Policy::{policy:?}, {nh:#018x}, {sh:#018x}),");
        }
        if nh != nominal {
            failures.push(format!(
                "{policy}: nominal stream hash {nh:#018x} != golden {nominal:#018x}"
            ));
        }
        if sh != stress {
            failures.push(format!(
                "{policy}: stress stream hash {sh:#018x} != golden {stress:#018x}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "event streams drifted from the pre-refactor goldens:\n{}",
        failures.join("\n")
    );
}

#[test]
fn zero_rate_faults_keep_the_golden_streams() {
    // A zero-rate fault config must be indistinguishable from no fault
    // config at all: no injector state, no RNG draws, no events — the
    // stream hashes straight back to the committed goldens. One policy
    // per orchestration family keeps the runtime bounded.
    use accelflow_core::FaultConfig;
    for &(policy, nominal, _) in GOLDEN
        .iter()
        .filter(|(p, _, _)| matches!(p, Policy::AccelFlow | Policy::Relief | Policy::NonAcc))
    {
        let (h, _) = nominal_hash_with(policy, |cfg| {
            cfg.faults = FaultConfig::uniform(0.0);
        });
        assert_eq!(
            h, nominal,
            "{policy}: zero-rate fault stream drifted from the golden hash"
        );
    }
}

#[test]
fn passive_control_keeps_the_golden_streams() {
    // Online control draws no randomness, and its *passive* pieces
    // (SLO-window tracking, a rate limit too generous to ever reject)
    // observe the run without scheduling or suppressing any event, so
    // the stream must hash straight back to the committed goldens.
    // An autoscaler is NOT passive — its ScaleTick chain is an event.
    use accelflow_core::{RateLimit, SloTarget};
    for &(policy, nominal, _) in GOLDEN
        .iter()
        .filter(|(p, _, _)| matches!(p, Policy::AccelFlow | Policy::Relief | Policy::NonAcc))
    {
        let (h, _) = nominal_hash_with(policy, |cfg| {
            cfg.control.rate_limit = Some(RateLimit {
                tokens_per_sec: 1e12,
                burst: 1e12,
            });
            cfg.control.slo = Some(SloTarget {
                window: SimDuration::from_millis(1),
                p99_target: SimDuration::from_micros(200),
            });
        });
        assert_eq!(
            h, nominal,
            "{policy}: passive-control stream drifted from the golden hash"
        );
    }
}

#[test]
fn fault_streams_are_reproducible_and_distinct() {
    use accelflow_core::FaultConfig;
    let faulty = |_: &()| {
        nominal_hash_with(Policy::AccelFlow, |cfg| {
            cfg.faults = FaultConfig::uniform(5.0);
        })
    };
    let (a, events_a) = faulty(&());
    let (b, events_b) = faulty(&());
    assert_eq!(a, b, "same-seed fault runs must be byte-identical");
    assert_eq!(events_a, events_b);
    let (baseline, _) = nominal_hash(Policy::AccelFlow);
    assert_ne!(
        a, baseline,
        "injected faults must actually perturb the stream"
    );
}

#[test]
fn streams_differ_across_policies() {
    // Sanity for the snapshot itself: distinct policies must produce
    // distinct streams (otherwise the goldens prove nothing).
    let mut hashes: Vec<u64> = GOLDEN.iter().map(|&(p, _, _)| nominal_hash(p).0).collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), GOLDEN.len(), "policy streams collided");
}
