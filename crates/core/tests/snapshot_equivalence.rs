//! Checkpoint/restore equivalence: a run snapshotted mid-flight and
//! resumed in a fresh process image must be byte-identical to the run
//! that never stopped.
//!
//! Each case runs a fixed workload twice: once straight through
//! ([`MachineRun::start`] → `finish`), and once split at an instant T
//! ([`MachineRun::start`] → `run_to(T)` → `snapshot` → drop →
//! [`MachineRun::restore`] → `finish`). Both runs fold every delivered
//! `(time, event)` pair into one FNV-1a hash — the split run's
//! observer continues the accumulator the prefix left off — and the
//! final [`RunReport`]s are compared by their full `Debug` rendering.
//! Faults and online control are ON in every machine case, so the
//! fault-injector RNG, stall bookkeeping, token bucket, SLO windows,
//! and autoscaler tick chain all cross the snapshot boundary.
//!
//! The rejection half exercises the format guards: truncation,
//! corrupted magic, a bumped schema version, a mismatched
//! configuration, and trailing garbage must each fail with the
//! matching [`SnapshotError`] variant instead of producing a machine.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_arch::config::ArchConfig;
use accelflow_core::cluster::{Cluster, ClusterConfig, ClusterRun};
use accelflow_core::control::{AutoscalerConfig, RateLimit, SloTarget};
use accelflow_core::machine::{Ev, MachineRun};
use accelflow_core::policy::Policy;
use accelflow_core::request::{CallSpec, CyclesDist, ServiceSpec, StageSpec};
use accelflow_core::{poisson_arrivals, Arrival, FaultConfig};
use accelflow_sim::snapshot::SnapshotError;
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_trace::templates::{TemplateId, TraceLibrary};

/// FNV-1a over the bytes of one rendered event line.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Two services that together reach every event variant: calls, CPU
/// stages, parallel fan-out, and chained segments.
fn services() -> Vec<ServiceSpec> {
    vec![
        ServiceSpec::new(
            "Simple",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(40_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        ),
        ServiceSpec::new(
            "WithDb",
            vec![
                StageSpec::Call(CallSpec::new(TemplateId::T1)),
                StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
                StageSpec::Call(CallSpec::new(TemplateId::T4)),
                StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 2]),
                StageSpec::Call(CallSpec::new(TemplateId::T2)),
            ],
        ),
    ]
}

fn arrivals(rps: f64, duration: SimDuration, seed: u64) -> Vec<Arrival> {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
    poisson_arrivals(&services(), &lib, &timing, rps, duration, seed)
}

/// A machine with everything the snapshot must carry switched ON:
/// fault injection, a binding rate limit, SLO windows, a live-request
/// ceiling, and the reactive autoscaler's tick chain.
fn full_config(policy: Policy) -> accelflow_core::machine::MachineConfig {
    let mut cfg = accelflow_core::machine::MachineConfig::new(policy);
    cfg.warmup = SimDuration::from_millis(2);
    cfg.arch.pes_per_accelerator = 2;
    cfg.speedup_scale = 0.25;
    cfg.audit = false;
    cfg.telemetry = false;
    cfg.faults = FaultConfig::uniform(10.0);
    cfg.control.autoscaler = Some(AutoscalerConfig::reactive());
    cfg.control.rate_limit = Some(RateLimit {
        tokens_per_sec: 4_000.0,
        burst: 32.0,
    });
    cfg.control.max_live = Some(256);
    cfg.control.slo = Some(SloTarget {
        window: SimDuration::from_millis(1),
        p99_target: SimDuration::from_micros(500),
    });
    cfg
}

const DURATION: SimDuration = SimDuration::from_millis(12);
const RPS: f64 = 4_000.0;
const SEED: u64 = 23;

/// Straight run: hash every event, return `(hash, Debug(report))`.
fn straight(policy: Policy) -> (u64, String) {
    let cfg = full_config(policy);
    let services = services();
    let mut hash = FNV_OFFSET;
    let report = MachineRun::start(
        &cfg,
        &services,
        arrivals(RPS, DURATION, SEED),
        DURATION,
        SEED,
        |now, ev: &Ev| fnv1a(&mut hash, format!("{now:?}|{ev:?}\n").as_bytes()),
    )
    .finish();
    assert!(report.offered() > 0, "workload produced no load");
    (hash, format!("{report:?}"))
}

/// Split run: run to `t`, snapshot, drop the run, restore from bytes,
/// finish. The restored observer continues the prefix's accumulator.
fn split_at(policy: Policy, t: SimTime) -> (u64, String) {
    let cfg = full_config(policy);
    let services = services();
    let mut hash = FNV_OFFSET;
    let bytes = {
        let mut run = MachineRun::start(
            &cfg,
            &services,
            arrivals(RPS, DURATION, SEED),
            DURATION,
            SEED,
            |now, ev: &Ev| fnv1a(&mut hash, format!("{now:?}|{ev:?}\n").as_bytes()),
        );
        run.run_to(t);
        run.snapshot()
    };
    let report = MachineRun::restore(&cfg, &services, &bytes, |now, ev: &Ev| {
        fnv1a(&mut hash, format!("{now:?}|{ev:?}\n").as_bytes())
    })
    .expect("snapshot of a live run must restore")
    .finish();
    (hash, format!("{report:?}"))
}

#[test]
fn restored_runs_are_byte_identical_across_policies() {
    // One policy per orchestration family, faults + control on in all
    // of them. The split point sits mid-measurement so live requests,
    // in-flight accelerator work, armed faults, and pending control
    // ticks all cross the boundary.
    let t = SimTime::ZERO + SimDuration::from_millis(6);
    for policy in [
        Policy::NonAcc,
        Policy::CpuCentric,
        Policy::Relief,
        Policy::AccelFlow,
        Policy::Cohort,
    ] {
        let (sh, sr) = straight(policy);
        let (rh, rr) = split_at(policy, t);
        assert_eq!(sh, rh, "{policy}: event stream diverged after restore");
        assert_eq!(sr, rr, "{policy}: final report diverged after restore");
    }
}

#[test]
fn split_point_does_not_matter() {
    // Snapshotting during warmup, mid-run, and inside the drain window
    // all resume to the same bytes.
    let (sh, sr) = straight(Policy::AccelFlow);
    for millis in [1, 9, 13] {
        let t = SimTime::ZERO + SimDuration::from_millis(millis);
        let (rh, rr) = split_at(Policy::AccelFlow, t);
        assert_eq!(sh, rh, "split at {millis}ms diverged");
        assert_eq!(sr, rr, "split at {millis}ms: report diverged");
    }
}

#[test]
fn snapshot_does_not_disturb_the_running_machine() {
    // snapshot() is a read — the run it was taken from must keep going
    // and finish exactly like a run that was never snapshotted.
    let cfg = full_config(Policy::AccelFlow);
    let services = services();
    let mut hash = FNV_OFFSET;
    let mut run = MachineRun::start(
        &cfg,
        &services,
        arrivals(RPS, DURATION, SEED),
        DURATION,
        SEED,
        |now, ev: &Ev| fnv1a(&mut hash, format!("{now:?}|{ev:?}\n").as_bytes()),
    );
    run.run_to(SimTime::ZERO + SimDuration::from_millis(6));
    let _bytes = run.snapshot();
    let report = run.finish();
    let (sh, sr) = straight(Policy::AccelFlow);
    assert_eq!(hash, sh, "taking a snapshot perturbed the event stream");
    assert_eq!(format!("{report:?}"), sr);
}

#[test]
fn cluster_restore_is_byte_identical() {
    // Four nodes behind the dispatcher, faults + control on per node:
    // the nested per-node snapshots, dispatcher RNG, round-robin
    // cursor, backlog, and outer queue all cross the boundary.
    let cfg = ClusterConfig::new(4, full_config(Policy::AccelFlow));
    let services = services();
    let work = arrivals(4.0 * RPS, DURATION, SEED);

    let mut straight_hash = FNV_OFFSET;
    let straight_report = Cluster::run_arrivals_observed(
        &cfg,
        &services,
        work.clone(),
        DURATION,
        SEED,
        |now, node, ev| {
            fnv1a(
                &mut straight_hash,
                format!("{now:?}|{node}|{ev:?}\n").as_bytes(),
            );
        },
    );
    assert!(straight_report.offered() > 0, "cluster saw no load");

    let mut hash = FNV_OFFSET;
    let bytes = {
        let mut run = ClusterRun::start(&cfg, &services, work, DURATION, SEED, |now, node, ev| {
            fnv1a(&mut hash, format!("{now:?}|{node}|{ev:?}\n").as_bytes());
        });
        run.run_to(SimTime::ZERO + SimDuration::from_millis(6));
        run.snapshot()
    };
    let report = ClusterRun::restore(&cfg, &services, &bytes, |now, node, ev| {
        fnv1a(&mut hash, format!("{now:?}|{node}|{ev:?}\n").as_bytes());
    })
    .expect("cluster snapshot must restore")
    .finish();

    assert_eq!(straight_hash, hash, "cluster event stream diverged");
    assert_eq!(
        format!("{straight_report:?}"),
        format!("{report:?}"),
        "cluster report diverged"
    );
}

// ---------------------------------------------------------------------
// Rejection: the guards in the header and the trailing-byte check.
// ---------------------------------------------------------------------

/// A small, fast snapshot to mutate in the rejection tests.
fn sample_snapshot() -> (accelflow_core::machine::MachineConfig, Vec<u8>) {
    let cfg = full_config(Policy::AccelFlow);
    let mut run = MachineRun::start(
        &cfg,
        &services(),
        arrivals(RPS, SimDuration::from_millis(4), SEED),
        SimDuration::from_millis(4),
        SEED,
        |_, _: &Ev| {},
    );
    run.run_to(SimTime::ZERO + SimDuration::from_millis(2));
    let bytes = run.snapshot();
    (cfg, bytes)
}

#[test]
fn corrupted_magic_is_rejected() {
    let (cfg, mut bytes) = sample_snapshot();
    bytes[0] ^= 0xFF;
    match MachineRun::restore(&cfg, &services(), &bytes, |_, _: &Ev| {}) {
        Err(SnapshotError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {:?}", other.err()),
    }
}

#[test]
fn future_schema_version_is_rejected() {
    let (cfg, mut bytes) = sample_snapshot();
    // Header layout: 4 magic bytes, then the u32 schema version (LE).
    bytes[4..8].copy_from_slice(&999u32.to_le_bytes());
    match MachineRun::restore(&cfg, &services(), &bytes, |_, _: &Ev| {}) {
        Err(SnapshotError::SchemaVersion { found: 999, .. }) => {}
        other => panic!("expected SchemaVersion, got {:?}", other.err()),
    }
}

#[test]
fn different_config_is_rejected() {
    let (_, bytes) = sample_snapshot();
    let other_cfg = full_config(Policy::Relief);
    match MachineRun::restore(&other_cfg, &services(), &bytes, |_, _: &Ev| {}) {
        Err(SnapshotError::ConfigHash { .. }) => {}
        other => panic!("expected ConfigHash, got {:?}", other.err()),
    }
}

#[test]
fn different_service_names_are_rejected() {
    let (cfg, bytes) = sample_snapshot();
    let mut renamed = services();
    renamed[0].name = "Renamed".to_string();
    match MachineRun::restore(&cfg, &renamed, &bytes, |_, _: &Ev| {}) {
        Err(SnapshotError::ConfigHash { .. }) => {}
        other => panic!("expected ConfigHash, got {:?}", other.err()),
    }
}

#[test]
fn truncation_is_rejected_at_every_length() {
    // Cutting the buffer anywhere must produce a structured error (EOF
    // or a corruption report), never a machine and never a panic. A
    // stride keeps the loop fast; the header region is covered densely.
    let (cfg, bytes) = sample_snapshot();
    let mut cuts: Vec<usize> = (0..bytes.len().min(64)).collect();
    cuts.extend((64..bytes.len()).step_by(101));
    for cut in cuts {
        match MachineRun::restore(&cfg, &services(), &bytes[..cut], |_, _: &Ev| {}) {
            Err(
                SnapshotError::UnexpectedEof { .. }
                | SnapshotError::Corrupt(_)
                | SnapshotError::BadMagic { .. },
            ) => {}
            Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
            Ok(_) => panic!("cut at {cut}: truncated snapshot restored"),
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let (cfg, mut bytes) = sample_snapshot();
    bytes.push(0xAB);
    match MachineRun::restore(&cfg, &services(), &bytes, |_, _: &Ev| {}) {
        Err(SnapshotError::Corrupt(msg)) => {
            assert!(msg.contains("trailing"), "unexpected message: {msg}")
        }
        other => panic!("expected Corrupt, got {:?}", other.err()),
    }
}

#[test]
fn machine_snapshot_is_not_a_cluster_snapshot() {
    // The two magics are distinct, so feeding one kind to the other
    // restorer fails on the first four bytes.
    let (cfg, bytes) = sample_snapshot();
    let cluster = ClusterConfig::new(2, cfg);
    match ClusterRun::restore(&cluster, &services(), &bytes, |_, _, _| {}) {
        Err(SnapshotError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {:?}", other.err()),
    }
}
