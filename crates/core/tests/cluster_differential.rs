//! Cluster↔machine differential snapshots.
//!
//! The cluster drives N machines from one shared outer kernel through
//! per-node scratch queues (`docs/CLUSTER.md`). The contract that
//! makes the composition trustworthy: a **one-node cluster over a
//! zero-cost link is byte-identical to a bare [`Machine`]** — same
//! events, same timestamps, same delivery order — for every policy and
//! every balancer, and turning keep-alive polling on must not perturb
//! any node's stream (health ticks ride the outer queue only).
//!
//! The fixture duplicates `golden_events.rs` nominal runs, and the
//! bare-machine side re-asserts that suite's pinned hashes, so these
//! tests chain the cluster back to the original pre-refactor goldens.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_arch::config::ArchConfig;
use accelflow_core::cluster::{BalancerKind, Cluster, ClusterConfig, NodeLink};
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_core::request::{CallSpec, CyclesDist, ServiceSpec, StageSpec};
use accelflow_core::{poisson_arrivals, Arrival, FaultClass, FaultConfig};
use accelflow_sim::time::SimDuration;
use accelflow_trace::templates::{TemplateId, TraceLibrary};

/// FNV-1a over the bytes of one rendered event line.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The golden_events.rs fixture, verbatim.
fn services() -> Vec<ServiceSpec> {
    let mut simple = ServiceSpec::new(
        "Simple",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            StageSpec::Cpu(CyclesDist::new(40_000.0, 0.2)),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    );
    let mut with_db = ServiceSpec::new(
        "WithDb",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
            StageSpec::Call(CallSpec::new(TemplateId::T4)),
            StageSpec::Cpu(CyclesDist::new(20_000.0, 0.2)),
            StageSpec::Parallel(vec![CallSpec::new(TemplateId::T9); 2]),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    );
    simple.slo_slack = Some(1.2);
    with_db.slo_slack = Some(1.2);
    vec![simple, with_db]
}

fn arrivals(rps: f64, millis: u64, seed: u64) -> Vec<Arrival> {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
    poisson_arrivals(
        &services(),
        &lib,
        &timing,
        rps,
        SimDuration::from_millis(millis),
        seed,
    )
}

/// The golden_events.rs nominal machine config.
fn nominal_cfg(policy: Policy) -> MachineConfig {
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = SimDuration::from_millis(2);
    cfg.arch.pes_per_accelerator = 2;
    cfg.speedup_scale = 0.25;
    cfg.audit = false;
    cfg.telemetry = false;
    cfg
}

const MILLIS: u64 = 30;
const RPS: f64 = 6_000.0;
const SEED: u64 = 11;

/// Bare-machine nominal stream hash (must match golden_events.rs).
fn machine_hash(policy: Policy) -> (u64, u64) {
    let mut hash = FNV_OFFSET;
    let mut events = 0u64;
    let report = Machine::run_arrivals_observed(
        &nominal_cfg(policy),
        &services(),
        arrivals(RPS, MILLIS, SEED),
        SimDuration::from_millis(MILLIS),
        SEED,
        |now, ev| {
            events += 1;
            fnv1a(&mut hash, format!("{now:?}|{ev:?}\n").as_bytes());
        },
    );
    assert!(report.offered() > 0, "workload produced no load");
    (hash, events)
}

/// One-node zero-link cluster stream hash over the same fixture. Node
/// ids are omitted from the rendering (they are all 0 here) so the
/// lines are comparable to the bare machine's byte for byte.
fn cluster_hash(policy: Policy, tweak: impl FnOnce(&mut ClusterConfig)) -> (u64, u64) {
    let mut cfg = ClusterConfig::new(1, nominal_cfg(policy));
    cfg.link = NodeLink::zero();
    tweak(&mut cfg);
    let mut hash = FNV_OFFSET;
    let mut events = 0u64;
    let report = Cluster::run_arrivals_observed(
        &cfg,
        &services(),
        arrivals(RPS, MILLIS, SEED),
        SimDuration::from_millis(MILLIS),
        SEED,
        |now, node, ev| {
            assert_eq!(node, 0);
            events += 1;
            fnv1a(&mut hash, format!("{now:?}|{ev:?}\n").as_bytes());
        },
    );
    assert!(report.offered() > 0, "workload produced no load");
    assert_eq!(report.clamped, 0, "outer kernel must never clamp");
    (hash, events)
}

/// Policies spanning every orchestration family, with the nominal
/// hashes pinned by golden_events.rs — re-asserted here so the
/// differential chains back to the original goldens rather than to
/// whatever the machine currently does.
const PINNED: &[(Policy, u64)] = &[
    (Policy::AccelFlow, 0x5e7b620c65f26463),
    (Policy::Relief, 0x8f79795ee8369aee),
    (Policy::NonAcc, 0x010792f6d58620f1),
    (Policy::CpuCentric, 0x71a518de6ac93f3d),
];

#[test]
fn one_node_zero_link_cluster_matches_bare_machine_for_every_balancer() {
    for &(policy, golden) in PINNED {
        let (bare, bare_events) = machine_hash(policy);
        assert_eq!(
            bare, golden,
            "{policy}: bare machine drifted from the golden stream"
        );
        for kind in BalancerKind::ALL {
            let (clustered, cluster_events) = cluster_hash(policy, |cfg| cfg.balancer = kind);
            assert_eq!(
                cluster_events, bare_events,
                "{policy}/{kind}: event counts diverged"
            );
            assert_eq!(
                clustered, bare,
                "{policy}/{kind}: one-node cluster stream is not byte-identical"
            );
        }
    }
}

#[test]
fn keepalive_polling_never_perturbs_node_streams() {
    // Health ticks are outer-kernel events: they consume outer
    // sequence numbers but deliver nothing to any machine, so the
    // node-observed stream must still hash to the bare golden.
    let (bare, _) = machine_hash(Policy::AccelFlow);
    let (polled, _) = cluster_hash(Policy::AccelFlow, |cfg| {
        cfg.keepalive = Some(SimDuration::from_micros(250));
    });
    assert_eq!(polled, bare, "keep-alive ticks leaked into a node stream");
}

#[test]
fn cluster_runs_are_reproducible_and_nodes_decorrelated() {
    // Same seed twice: byte-identical fleet streams. And per-node
    // seeds differ, so two nodes fed identical configs must not
    // produce identical streams (service-time draws are per-node).
    let run = || {
        let mut cfg = ClusterConfig::new(2, nominal_cfg(Policy::AccelFlow));
        cfg.link = NodeLink::zero();
        let mut hashes = [FNV_OFFSET; 2];
        let mut events = [0u64; 2];
        Cluster::run_arrivals_observed(
            &cfg,
            &services(),
            arrivals(RPS, 10, SEED),
            SimDuration::from_millis(10),
            SEED,
            |now, node, ev| {
                events[node as usize] += 1;
                fnv1a(
                    &mut hashes[node as usize],
                    format!("{now:?}|{ev:?}\n").as_bytes(),
                );
            },
        );
        (hashes, events)
    };
    let (a, ea) = run();
    let (b, eb) = run();
    assert_eq!(a, b, "same-seed cluster runs must be byte-identical");
    assert_eq!(ea, eb);
    assert!(
        ea[0] > 100 && ea[1] > 100,
        "both nodes must see work: {ea:?}"
    );
    assert_ne!(a[0], a[1], "per-node streams must be decorrelated");
}

#[test]
fn stalled_nodes_are_suspended_and_work_relocates() {
    // Aggressive accelerator stalls + a fast keep-alive: the poll must
    // observe dark stations (suspensions), route arrivals away from
    // suspended nodes (relocations), and see stall windows expire
    // (recoveries). This is the cluster-level mirror of the machine's
    // own fault recovery, driven end to end.
    // ~1.5 stalls/ms at ~400 µs mean dark time ≈ 0.6 dark stations in
    // steady state: each node oscillates between healthy and suspended
    // instead of going permanently dark (which would leave no healthy
    // relocation target and no recoveries to count).
    let mut node = nominal_cfg(Policy::AccelFlow);
    node.faults = {
        let mut f = FaultConfig::only(FaultClass::AccelStall, 1.5);
        f.stall_duration = SimDuration::from_micros(400);
        f
    };
    let mut cfg = ClusterConfig::new(2, node);
    cfg.link = NodeLink::datacenter();
    cfg.keepalive = Some(SimDuration::from_micros(100));
    cfg.suspend_dark_stations = 1;
    let report = Cluster::run_arrivals(
        &cfg,
        &services(),
        arrivals(RPS, 10, SEED),
        SimDuration::from_millis(10),
        SEED,
    );
    assert!(report.health.polls > 50, "polls = {}", report.health.polls);
    assert!(
        report.health.suspensions > 0,
        "stall windows never suspended a node: {:?}",
        report.health
    );
    assert!(
        report.health.recoveries > 0,
        "suspended nodes never recovered: {:?}",
        report.health
    );
    assert!(
        report.health.relocations > 0,
        "no work was routed around a suspended node: {:?}",
        report.health
    );
    assert!(
        report.completion_ratio() > 0.5,
        "fleet collapsed under stalls: {}",
        report.completion_ratio()
    );
}
