//! Golden tests for the telemetry layer: the Chrome-trace export of a
//! small deterministic workload must be schema-valid, structurally
//! complete (spans, counters, flow arrows, labeled tracks), and
//! byte-identical across runs with the same seed.

use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_core::request::{CallSpec, CyclesDist, ServiceSpec, StageSpec};
use accelflow_core::stats::RunReport;
use accelflow_sim::telemetry::{validate_chrome_trace, CompKind, RecordKind};
use accelflow_sim::time::SimDuration;
use accelflow_trace::templates::TemplateId;

fn service() -> ServiceSpec {
    ServiceSpec::new(
        "TelemetryProbe",
        vec![
            StageSpec::Call(CallSpec::new(TemplateId::T1)),
            StageSpec::Cpu(CyclesDist::new(30_000.0, 0.2)),
            StageSpec::Call(CallSpec::new(TemplateId::T4)),
            StageSpec::Call(CallSpec::new(TemplateId::T2)),
        ],
    )
}

fn run(seed: u64) -> RunReport {
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    cfg.telemetry = true;
    cfg.telemetry_sample = SimDuration::from_micros(100);
    Machine::run_workload(
        &cfg,
        &[service()],
        800.0,
        SimDuration::from_millis(10),
        seed,
    )
}

#[test]
fn export_is_schema_valid_and_structurally_complete() {
    let report = run(7);
    let tel = &report.telemetry;
    assert!(tel.enabled);
    assert!(!tel.records.is_empty(), "a loaded run must emit records");
    assert_eq!(tel.dropped, 0, "small run must fit the default ring");
    assert_eq!(tel.emitted, tel.records.len() as u64);

    let json = report.telemetry.chrome_trace();
    let summary = validate_chrome_trace(&json).expect("schema-valid trace");
    assert!(summary.spans > 0, "PE/DMA work must appear as spans");
    assert!(summary.counters > 0, "sampler must add counter events");
    assert!(summary.instants > 0, "arrivals/completions are instants");
    assert!(
        summary.flows > 0,
        "multi-span requests must chain flow arrows"
    );
    assert!(summary.metadata > 2, "process + per-track thread names");

    // Every hardware component class that did work got a track label.
    for label in ["TCP#0", "A-DMA", "ATM", "machine"] {
        assert!(json.contains(label), "missing track label {label}");
    }
}

#[test]
fn export_is_byte_identical_across_runs_with_same_seed() {
    let a = run(42).telemetry.chrome_trace();
    let b = run(42).telemetry.chrome_trace();
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");
    let c = run(43).telemetry.chrome_trace();
    assert_ne!(a, c, "a different seed must actually change the run");
}

#[test]
fn records_cover_the_expected_component_classes() {
    let report = run(7);
    let kinds: std::collections::BTreeSet<CompKind> = report
        .telemetry
        .records
        .iter()
        .map(|r| r.comp.kind)
        .collect();
    for k in [
        CompKind::Machine,
        CompKind::Accelerator,
        CompKind::Dma,
        CompKind::Atm,
    ] {
        assert!(kinds.contains(&k), "no records from {k:?}");
    }
    // PE spans carry their queueing time as the free argument.
    assert!(report
        .telemetry
        .records
        .iter()
        .any(|r| r.name == "pe" && matches!(r.kind, RecordKind::Span { .. })));
}

#[test]
fn component_breakdown_and_sampler_series_populate() {
    let report = run(7);
    let rows = report.telemetry.component_breakdown();
    assert!(rows.len() >= 3, "accels + DMA at minimum, got {rows:?}");
    for row in &rows {
        assert!(row.spans > 0);
        assert!(row.busy.as_picos() > 0);
        assert!(row.max >= row.mean);
    }
    // Sampler rows exist and match the column layout.
    assert!(!report.telemetry.columns.is_empty());
    assert!(!report.telemetry.samples.is_empty());
    for (_, row) in &report.telemetry.samples {
        assert_eq!(row.len(), report.telemetry.columns.len());
    }
    let util_col = report
        .telemetry
        .column_index("util%:TCP")
        .expect("TCP utilization column");
    let spark = report.telemetry.sparkline(util_col, &['.', ':', '|', '#']);
    assert_eq!(spark.chars().count(), report.telemetry.samples.len());
}

#[test]
fn ring_overflow_is_surfaced_not_silent() {
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    cfg.telemetry = true;
    cfg.telemetry_capacity = 64; // force overflow
    let report = Machine::run_workload(&cfg, &[service()], 800.0, SimDuration::from_millis(10), 7);
    let tel = &report.telemetry;
    assert_eq!(tel.records.len(), 64, "ring keeps exactly its capacity");
    assert!(tel.dropped > 0, "overflow must be counted");
    assert_eq!(tel.emitted, tel.dropped + tel.records.len() as u64);
    // The truncated trace still exports cleanly.
    validate_chrome_trace(&tel.chrome_trace()).expect("valid despite drops");
}

#[test]
fn disabled_telemetry_yields_inert_report_and_same_results() {
    let mut cfg = MachineConfig::new(Policy::AccelFlow);
    cfg.warmup = SimDuration::from_millis(1);
    cfg.telemetry = false;
    let off = Machine::run_workload(&cfg, &[service()], 800.0, SimDuration::from_millis(10), 7);
    assert!(!off.telemetry.enabled);
    assert!(off.telemetry.records.is_empty());
    assert_eq!(off.telemetry.emitted, 0);

    // Enabling telemetry must not change the simulation itself.
    let on = run(7);
    assert_eq!(off.completed(), on.completed());
    assert_eq!(
        off.aggregate_latency().percentile(99.0),
        on.aggregate_latency().percentile(99.0)
    );
    assert_eq!(off.totals.dispatcher_instrs, on.totals.dispatcher_instrs);
    assert_eq!(off.totals.dma_bytes, on.totals.dma_bytes);
}
