//! The discrete-event loop.
//!
//! A simulation is a [`Model`] (all mutable state of the system under
//! study) plus an [`EventQueue`] of timestamped events of the model's
//! choosing. The engine pops the earliest event, hands it to the model,
//! and the model schedules follow-on events. Events with equal
//! timestamps are delivered in the order they were scheduled, which
//! makes every run bit-for-bit reproducible.
//!
//! A model that counts down, rescheduling itself until it hits zero:
//!
//! ```
//! use accelflow_sim::engine::{EventQueue, Model, Simulation};
//! use accelflow_sim::time::{SimDuration, SimTime};
//!
//! struct Countdown {
//!     remaining: u32,
//! }
//!
//! impl Model for Countdown {
//!     type Event = ();
//!     fn handle(&mut self, _now: SimTime, _ev: (), queue: &mut EventQueue<()>) {
//!         self.remaining -= 1;
//!         if self.remaining > 0 {
//!             queue.schedule(SimDuration::from_micros(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Countdown { remaining: 3 });
//! sim.queue_mut().schedule(SimDuration::ZERO, ());
//! // The deadline is exclusive: only the event at t=0 is delivered,
//! // the one sitting exactly at t=1µs stays queued.
//! sim.run_until(SimTime::ZERO + SimDuration::from_micros(1));
//! assert_eq!(sim.model().remaining, 2);
//! // Resume to completion; the last event lands at t=2µs.
//! sim.run_until(SimTime::ZERO + SimDuration::from_millis(1));
//! assert_eq!(sim.model().remaining, 0);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_micros(2));
//! ```

use std::collections::VecDeque;

use crate::calendar::CalendarQueue;
use crate::time::{SimDuration, SimTime};

/// A system being simulated.
///
/// Implementors own all mutable simulation state and define the event
/// vocabulary. See the crate-level example.
pub trait Model {
    /// The event type this model understands.
    type Event;

    /// Handles one event at simulated time `now`, scheduling any
    /// follow-on events on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// The pending-event set of a simulation.
///
/// Events are delivered in `(time, insertion order)` order. The queue
/// tracks the current simulated time; [`EventQueue::schedule`] is
/// relative to it.
///
/// Internally this is a calendar (bucket) queue — `O(1)` amortized
/// schedule and pop independent of the pending-event population — plus
/// a staging buffer that extracts the entire run of events sharing the
/// next timestamp in one queue operation, so same-instant bursts pay
/// the queue-maintenance cost once. Events a model schedules *at* the
/// current instant (including clamped past-time schedules) carry a
/// higher insertion sequence than everything already staged, so they
/// correctly fire after the drained batch; delivery order is identical
/// to the classic binary-heap implementation, bit for bit.
pub struct EventQueue<E> {
    calendar: CalendarQueue<E>,
    /// Events popped as one same-timestamp batch, awaiting delivery.
    ready: VecDeque<(u64, E)>,
    /// Shared timestamp of everything in `ready`.
    ready_at: SimTime,
    now: SimTime,
    seq: u64,
    delivered: u64,
    clamped: u64,
}

impl<E> EventQueue<E> {
    fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue sized for a steady-state population of about
    /// `capacity` pending events (the calendar ring starts at a
    /// matching bucket count instead of growing through rebuilds).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            calendar: CalendarQueue::with_capacity(capacity),
            ready: VecDeque::new(),
            ready_at: SimTime::ZERO,
            now: SimTime::ZERO,
            seq: 0,
            delivered: 0,
            clamped: 0,
        }
    }

    /// Capacity hint, retained for API stability. The calendar sizes
    /// its ring from the *live* pending-event population through
    /// adaptive rebuilds — a caller's total-event estimate (e.g. an
    /// arrival backlog) routinely overshoots the steady-state population
    /// by orders of magnitude, and an oversized ring costs more in cache
    /// footprint than rebuilds ever do — so this is a no-op.
    pub fn reserve(&mut self, additional: usize) {
        let _ = additional;
    }

    /// The current simulated time (the timestamp of the event being
    /// handled, or the last one handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is clamped to the current time (the event
    /// still fires, immediately after already-queued same-time events).
    /// Each clamp increments the [`EventQueue::clamped`] counter — a
    /// past-time schedule usually means a model computed a timestamp
    /// from stale state, so the count makes such time-travel bugs
    /// visible instead of silently rewriting them.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        if at == self.now {
            // Same-instant fast lane. Event-driven models schedule a
            // large share of their events at zero delay (cascade events
            // within one logical instant); those never need to touch
            // the calendar at all. Appending to the staging buffer is
            // exactly delivery order: everything staged was scheduled
            // earlier (lower seq), the calendar never holds an event at
            // the current instant once the batch for `now` has been
            // extracted (ties share a bucket slot and drain together),
            // and all other pending events are strictly later.
            if self.ready.is_empty() {
                self.ready_at = at;
            }
            debug_assert_eq!(self.ready_at, at, "staged batch is not at now");
            self.ready.push_back((seq, event));
        } else {
            self.calendar.schedule(at.as_picos(), seq, event);
        }
    }

    /// Number of events not yet delivered.
    pub fn len(&self) -> usize {
        self.calendar.len() + self.ready.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// How many [`EventQueue::schedule_at`] calls targeted an instant
    /// before the current time and were clamped forward. Zero in a
    /// healthy model; a growing count points at a component scheduling
    /// from stale timestamps.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Advances the queue's clock without delivering an event.
    ///
    /// Adapter hook for *outer kernels* that drive a captive [`Model`]
    /// by hand (e.g. a multi-machine composition where one shared
    /// queue interleaves several models' events): the captive model's
    /// scratch queue must agree with the outer clock before each
    /// `handle` call, or relative [`EventQueue::schedule`] calls would
    /// resolve against a stale `now`. Time only moves forward; rewinds
    /// are a caller bug.
    pub fn sync_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.now, "sync_to must not rewind the clock");
        self.now = now;
    }

    /// Removes every pending event in delivery order — `(time,
    /// insertion order)`, exactly as [`Model::handle`] would see them —
    /// handing each to `f`.
    ///
    /// The clock and the `delivered` counter are untouched: this is
    /// the second half of the outer-kernel adapter (see
    /// [`EventQueue::sync_to`]), where drained events are re-scheduled
    /// into the outer queue rather than delivered, so they must not
    /// count as deliveries or drag `now` to the drained timestamps.
    pub fn drain_pending(&mut self, mut f: impl FnMut(SimTime, E)) {
        loop {
            if let Some((_, event)) = self.ready.pop_front() {
                f(self.ready_at, event);
                continue;
            }
            match self.calendar.pop_batch(&mut self.ready) {
                Some((at, event)) => {
                    self.ready_at = SimTime::from_picos(at);
                    f(self.ready_at, event);
                }
                None => break,
            }
        }
        // The bulk pops above anchored the calendar's window on the
        // *drained* timestamps — arbitrarily far ahead of the clock.
        // Re-anchor the now-empty calendar on `now` so the model's next
        // handler call can schedule at the real current time again.
        self.calendar.reanchor(self.now.as_picos());
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = match self.ready.pop_front() {
            Some((_, event)) => (self.ready_at, event),
            None => {
                // Batched delivery: one calendar operation hands back the
                // minimum event and stages the rest of its same-timestamp
                // run (the single-event common case stages nothing).
                let (at, event) = self.calendar.pop_batch(&mut self.ready)?;
                self.ready_at = SimTime::from_picos(at);
                (self.ready_at, event)
            }
        };
        debug_assert!(at >= self.now, "event queue went backwards in time");
        self.now = at;
        self.delivered += 1;
        Some((at, event))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if !self.ready.is_empty() {
            return Some(self.ready_at);
        }
        self.calendar.peek_at().map(SimTime::from_picos)
    }
}

impl<E: crate::snapshot::Snapshot> EventQueue<E> {
    /// Serializes the queue — clock, counters, and every pending event
    /// in delivery order — without disturbing it.
    ///
    /// Internally the pending set is drained (the only way to observe
    /// delivery order) and re-scheduled back in that same order; the
    /// re-scheduled events receive fresh insertion sequences, which
    /// preserves their relative order exactly, so a queue that has been
    /// saved delivers the same event stream as one that never was.
    pub fn save_snapshot(&mut self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::Snapshot;
        self.now.save(w);
        w.u64(self.delivered);
        w.u64(self.clamped);
        let mut pending = Vec::with_capacity(self.len());
        self.drain_pending(|at, ev| pending.push((at, ev)));
        w.usize(pending.len());
        for (at, ev) in &pending {
            at.save(w);
            ev.save(w);
        }
        for (at, ev) in pending {
            self.schedule_at(at, ev);
        }
    }

    /// Rebuilds a queue from [`EventQueue::save_snapshot`] bytes.
    ///
    /// Order of operations matters: the clock is set and the calendar
    /// re-anchored on it *before* any event is scheduled, so restored
    /// events at exactly the snapshot instant take the same-instant
    /// staging lane — the same anchor hazard `CalendarQueue::reanchor`
    /// exists for (see [`EventQueue::drain_pending`]). A fresh calendar
    /// is anchored at time zero; scheduling an at-now event against it
    /// would misfile the event instead of staging it.
    pub fn load_snapshot(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::Snapshot;
        let now = SimTime::load(r)?;
        let delivered = r.u64()?;
        let clamped = r.u64()?;
        let n = r.seq_len()?;
        let mut q = EventQueue::with_capacity(n);
        q.now = now;
        q.calendar.reanchor(now.as_picos());
        let mut prev = now;
        for _ in 0..n {
            let at = SimTime::load(r)?;
            if at < prev {
                return Err(crate::snapshot::SnapshotError::Corrupt(
                    "pending events out of delivery order".into(),
                ));
            }
            prev = at;
            let ev = E::load(r)?;
            q.schedule_at(at, ev);
        }
        q.delivered = delivered;
        q.clamped = clamped;
        Ok(q)
    }
}

/// A model plus its event queue: the runnable simulation.
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation around `model` with an empty event queue at
    /// time zero. Seed initial events through [`Simulation::queue_mut`].
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Exclusive access to the event queue (e.g. to seed initial
    /// events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Simultaneous exclusive access to both halves — for operations
    /// that read or mutate the model and the queue together, like
    /// taking a checkpoint (the model serializes itself, then the
    /// queue appends its pending events).
    pub fn parts_mut(&mut self) -> (&mut M, &mut EventQueue<M::Event>) {
        (&mut self.model, &mut self.queue)
    }

    /// Consumes the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Reassembles a simulation from a model and a (possibly restored)
    /// event queue — the checkpoint/restore entry point: load both
    /// halves from a snapshot, then resume with [`Simulation::run_until`].
    pub fn from_parts(model: M, queue: EventQueue<M::Event>) -> Self {
        Simulation { model, queue }
    }

    /// Delivers the next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, ev)) => {
                self.model.handle(at, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty.
    ///
    /// Beware: a model that always schedules follow-on events never
    /// drains; use [`Simulation::run_until`] for open-loop workloads.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue is empty or the next event is at or after
    /// `deadline`. Events exactly at `deadline` are *not* delivered, so
    /// consecutive `run_until` calls partition time cleanly.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t >= deadline {
                break;
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
            self.log.push((now.as_picos(), ev));
            if ev == 1 {
                // Chain two events at the same future instant; they must
                // arrive in scheduling order.
                queue.schedule(SimDuration::from_picos(10), 2);
                queue.schedule(SimDuration::from_picos(10), 3);
            }
        }
    }

    #[test]
    fn events_fire_in_time_then_fifo_order() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.queue_mut().schedule(SimDuration::from_picos(5), 1);
        sim.queue_mut().schedule(SimDuration::from_picos(1), 0);
        sim.run();
        assert_eq!(sim.model().log, vec![(1, 0), (5, 1), (15, 2), (15, 3)]);
    }

    #[test]
    fn run_until_excludes_deadline() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        for i in 0..5 {
            sim.queue_mut()
                .schedule(SimDuration::from_picos(i * 10), 100 + i as u32);
        }
        sim.run_until(SimTime::from_picos(20));
        assert_eq!(sim.model().log.len(), 2); // events at 0 and 10 only
        sim.run_until(SimTime::from_picos(100));
        assert_eq!(sim.model().log.len(), 5);
        assert_eq!(sim.queue_mut().delivered(), 5);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        struct PastScheduler {
            fired: Vec<u64>,
        }
        impl Model for PastScheduler {
            type Event = bool;
            fn handle(&mut self, now: SimTime, ev: bool, queue: &mut EventQueue<bool>) {
                self.fired.push(now.as_picos());
                if ev {
                    queue.schedule_at(SimTime::from_picos(1), false); // in the past
                }
            }
        }
        let mut sim = Simulation::new(PastScheduler { fired: vec![] });
        sim.queue_mut().schedule(SimDuration::from_picos(50), true);
        sim.run();
        assert_eq!(sim.model().fired, vec![50, 50]);
        // The clamp is counted, not silent.
        assert_eq!(sim.queue_mut().clamped(), 1);
    }

    #[test]
    fn clamped_event_fires_after_queued_same_time_events() {
        // A past-time schedule is clamped to `now`, but it must not jump
        // ahead of events already queued for `now`: the FIFO tie-break
        // orders by scheduling sequence, and the clamped event was
        // scheduled last.
        struct Racer {
            log: Vec<(u64, u32)>,
        }
        impl Model for Racer {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
                self.log.push((now.as_picos(), ev));
                if ev == 1 {
                    queue.schedule(SimDuration::ZERO, 2); // same instant
                    queue.schedule(SimDuration::ZERO, 3); // same instant
                    queue.schedule_at(SimTime::from_picos(1), 4); // past → clamped
                    queue.schedule_at(now, 5); // exactly now: legal, not a clamp
                }
            }
        }
        let mut sim = Simulation::new(Racer { log: vec![] });
        sim.queue_mut().schedule(SimDuration::from_picos(50), 1);
        sim.run();
        assert_eq!(
            sim.model().log,
            vec![(50, 1), (50, 2), (50, 3), (50, 4), (50, 5)],
            "clamped event must run after already-queued same-time events"
        );
        assert_eq!(
            sim.queue_mut().clamped(),
            1,
            "only the past-time schedule clamps"
        );
    }

    #[test]
    fn at_now_schedule_mid_batch_fires_after_staged_events() {
        // Three events staged for t=50 drain as one batch. The first
        // handler schedules a fourth at exactly `now`: the same-instant
        // fast lane appends it to the staged batch, and it must fire
        // after the two events already staged (it has the higher seq),
        // never between or before them.
        struct MidBatch {
            log: Vec<u32>,
        }
        impl Model for MidBatch {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
                self.log.push(ev);
                if ev == 1 {
                    queue.schedule_at(now, 4);
                }
            }
        }
        let mut sim = Simulation::new(MidBatch { log: vec![] });
        for ev in 1..=3 {
            sim.queue_mut().schedule(SimDuration::from_picos(50), ev);
        }
        sim.run();
        assert_eq!(sim.model().log, vec![1, 2, 3, 4]);
        assert_eq!(sim.queue_mut().clamped(), 0, "at-now is not a clamp");
    }

    #[test]
    fn clamp_counter_matches_observed_clamps() {
        // Every past-time schedule — and nothing else — bumps the
        // counter, so it equals the number of clamps the model actually
        // performed.
        struct Mixed {
            past_schedules: u64,
            delivered: u64,
        }
        impl Model for Mixed {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
                self.delivered += 1;
                if ev < 3 {
                    // One stale (past) schedule and one healthy one per
                    // seed event.
                    queue.schedule_at(SimTime::from_picos(now.as_picos() / 2), 10 + ev);
                    self.past_schedules += 1;
                    queue.schedule(SimDuration::from_picos(7), 20 + ev);
                }
            }
        }
        let mut sim = Simulation::new(Mixed {
            past_schedules: 0,
            delivered: 0,
        });
        for i in 0..3u64 {
            sim.queue_mut()
                .schedule(SimDuration::from_picos(10 + i * 10), i as u32);
        }
        sim.run();
        let m = sim.model().past_schedules;
        assert_eq!(m, 3);
        assert_eq!(sim.queue_mut().clamped(), m, "counter == observed clamps");
        assert_eq!(sim.model().delivered, 9, "no clamped event was lost");
        assert_eq!(sim.queue_mut().delivered(), 9);
    }

    #[test]
    fn clamp_counter_starts_at_zero_and_ignores_future() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(16);
        assert_eq!(q.clamped(), 0);
        q.schedule_at(SimTime::from_picos(10), 1);
        q.schedule(SimDuration::from_picos(5), 2);
        assert_eq!(q.clamped(), 0, "future events are not clamps");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(1000);
        q.reserve(2000);
        for i in 0..1000 {
            q.schedule(SimDuration::from_picos(i), i as u32);
        }
        assert_eq!(q.len(), 1000);
    }

    #[test]
    fn drain_pending_yields_delivery_order_without_advancing_time() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
        q.sync_to(SimTime::from_picos(100));
        q.schedule(SimDuration::from_picos(50), 2);
        q.schedule(SimDuration::ZERO, 0); // at-now fast lane
        q.schedule(SimDuration::from_picos(50), 3); // tie with 2: FIFO
        q.schedule(SimDuration::ZERO, 1);
        q.schedule(SimDuration::from_picos(10), 9);
        let mut drained = Vec::new();
        q.drain_pending(|at, ev| drained.push((at.as_picos(), ev)));
        assert_eq!(
            drained,
            vec![(100, 0), (100, 1), (110, 9), (150, 2), (150, 3)],
            "drain order must match delivery order"
        );
        assert!(q.is_empty());
        // The drain is bookkeeping, not delivery: clock and counters
        // are unchanged, so a subsequent sync_to cannot go backwards.
        assert_eq!(q.now(), SimTime::from_picos(100));
        assert_eq!(q.delivered(), 0);
        q.sync_to(SimTime::from_picos(101));
    }

    #[test]
    fn sync_to_resolves_relative_schedules() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
        q.sync_to(SimTime::from_picos(40));
        q.schedule(SimDuration::from_picos(5), 7);
        let mut drained = Vec::new();
        q.drain_pending(|at, ev| drained.push((at.as_picos(), ev)));
        assert_eq!(drained, vec![(45, 7)]);
    }

    #[test]
    fn restore_reanchors_calendar_on_restored_clock() {
        use crate::snapshot::{SnapReader, SnapWriter};
        // Snapshot *mid-burst*: three events share an instant deep into
        // the run; the first has been delivered, two are still staged.
        let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
        for ev in 1..=3 {
            q.schedule_at(SimTime::from_picos(1_000_000), ev);
        }
        q.schedule_at(SimTime::from_picos(2_000_000), 9);
        let (at, ev) = q.pop().unwrap();
        assert_eq!((at.as_picos(), ev), (1_000_000, 1));

        let mut w = SnapWriter::new();
        q.save_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut restored = EventQueue::<u32>::load_snapshot(&mut r).unwrap();
        assert!(r.is_exhausted(), "queue snapshot left trailing bytes");
        assert_eq!(restored.now(), SimTime::from_picos(1_000_000));
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.delivered(), 1);

        // The regression case: an at-now schedule straight after restore
        // must join the staging lane *behind* the restored burst. With
        // the calendar still anchored at time zero (the pre-reanchor
        // bug), the event would be misfiled instead of staged.
        restored.schedule_at(restored.now(), 4);
        assert_eq!(restored.clamped(), 0, "at-now after restore is not a clamp");
        let mut order = Vec::new();
        while let Some((at, ev)) = restored.pop() {
            order.push((at.as_picos(), ev));
        }
        assert_eq!(
            order,
            vec![(1_000_000, 2), (1_000_000, 3), (1_000_000, 4), (2_000_000, 9)],
            "restored burst must keep delivery order, at-now event last in batch"
        );
        assert_eq!(restored.delivered(), 5);
    }

    #[test]
    fn save_snapshot_does_not_disturb_the_queue() {
        use crate::snapshot::SnapWriter;
        // Identical queues; one is saved mid-run, one never is. Both
        // must deliver the same stream afterwards.
        let build = || {
            let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
            q.sync_to(SimTime::from_picos(100));
            q.schedule(SimDuration::from_picos(50), 2);
            q.schedule(SimDuration::ZERO, 0); // at-now staging lane
            q.schedule(SimDuration::from_picos(50), 3); // tie with 2: FIFO
            q.schedule(SimDuration::ZERO, 1);
            q
        };
        let mut saved = build();
        let mut w = SnapWriter::new();
        saved.save_snapshot(&mut w);
        let mut untouched = build();
        let drain = |q: &mut EventQueue<u32>| {
            let mut out = Vec::new();
            while let Some((at, ev)) = q.pop() {
                out.push((at.as_picos(), ev));
            }
            out
        };
        assert_eq!(drain(&mut saved), drain(&mut untouched));
        assert_eq!(saved.delivered(), untouched.delivered());
    }

    #[test]
    fn empty_queue_reports() {
        let mut sim: Simulation<Recorder> = Simulation::new(Recorder { log: vec![] });
        assert!(sim.queue_mut().is_empty());
        assert_eq!(sim.queue_mut().len(), 0);
        assert!(!sim.step());
    }
}
