//! Seeded randomness and the distributions used by the workload
//! generators.
//!
//! Every stochastic element of the reproduction (arrival processes,
//! payload sizes, branch outcomes, app-logic variability) draws from a
//! [`SimRng`] seeded explicitly, so experiments are reproducible and
//! comparable across orchestration policies (common random numbers).
//!
//! The generator is a self-contained xoshiro256++ (the algorithm behind
//! `rand`'s 64-bit `SmallRng`), seeded through SplitMix64 exactly as
//! `SmallRng::seed_from_u64` does, with the same `u64 -> f64` and
//! bounded-integer mappings `rand` 0.8 used. Streams are therefore
//! bit-identical to the `rand`-backed original while the crate stays
//! dependency-free (the build environment has no package registry).

/// The simulation's random-number generator.
///
/// A thin wrapper over a small, fast, seedable PRNG plus the inverse-CDF
/// samplers the workloads need.
///
/// # Example
///
/// ```
/// use accelflow_sim::rng::SimRng;
///
/// let mut rng = SimRng::seed(42);
/// let x = rng.exponential(1000.0); // mean-1000 exponential
/// assert!(x > 0.0);
/// // Same seed, same stream.
/// assert_eq!(SimRng::seed(42).exponential(1000.0), x);
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion,
    /// matching `SmallRng::seed_from_u64`).
    pub fn seed(seed: u64) -> Self {
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        SimRng { s }
    }

    /// The raw xoshiro256++ step.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Derives an independent child stream; useful to give each service
    /// or component its own stream while staying reproducible.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// Uniform in `[0, 1)` (53 random mantissa bits).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (widening-multiply with rejection,
    /// the exact sampler `rand` 0.8 used for `gen_range(0..n)`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        let range = n as u64;
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = (v as u128) * (range as u128);
            let lo = m as u64;
            if lo <= zone {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given mean (inverse-CDF method). Used for
    /// Poisson inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal parameterized by the *median* and the shape `sigma`
    /// (the std-dev of the underlying normal). Payload sizes in the
    /// paper are "a few KB median with a long tail" (Fig 5 / §III Q3);
    /// log-normal matches that shape.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not positive or `sigma` is negative.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(
            median.is_finite() && median > 0.0,
            "log-normal median must be positive"
        );
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "log-normal sigma must be non-negative"
        );
        (median.ln() + sigma * self.standard_normal()).exp()
    }

    /// Bounded Pareto on `[lo, hi]` with shape `alpha`; used for
    /// heavy-tailed serverless execution times.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not `0 < lo < hi` or `alpha <= 0`.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && lo < hi, "bounded pareto needs 0 < lo < hi");
        assert!(alpha > 0.0, "bounded pareto needs alpha > 0");
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Samples one entry of `weights` proportionally to its value.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty and positive"
        );
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl crate::snapshot::Snapshot for SimRng {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        for word in &self.s {
            w.u64(*word);
        }
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        Ok(SimRng { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn matches_reference_vectors() {
        // First outputs of xoshiro256++ seeded via SplitMix64(0),
        // exactly what `SmallRng::seed_from_u64(0)` produced under
        // rand 0.8. Guards the stream against accidental algorithm
        // drift (every calibrated threshold in the repo depends on it).
        let mut r = SimRng::seed(0);
        let expect: [u64; 4] = {
            // Independently recompute from the published constants.
            const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
            let mut state = 0u64;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            let mut out = [0u64; 4];
            for o in &mut out {
                let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                *o = result;
            }
            out
        };
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn index_is_unbiased_at_small_n() {
        let mut rng = SimRng::seed(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.index(5)] += 1;
        }
        for c in counts {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.2).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut parent1 = SimRng::seed(1);
        let mut parent2 = SimRng::seed(1);
        let mut c1 = parent1.fork(99);
        let mut c2 = parent2.fork(99);
        assert_eq!(c1.uniform().to_bits(), c2.uniform().to_bits());
        let mut c3 = parent1.fork(99); // second fork: different stream
        assert_ne!(c1.uniform().to_bits(), c3.uniform().to_bits());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn log_normal_median_is_close() {
        let mut rng = SimRng::seed(4);
        let mut xs: Vec<f64> = (0..100_001).map(|_| rng.log_normal(2048.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median / 2048.0 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = SimRng::seed(5);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.0, 100.0, 1.2);
            assert!((1.0..=100.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = SimRng::seed(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac = counts[2] as f64 / 30_000.0;
        assert!((frac - 0.7).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_range_rejects_empty() {
        SimRng::seed(0).uniform_range(2.0, 1.0);
    }
}
