//! A free-list slab with generation-tagged handles.
//!
//! Simulation models park per-entity state (requests, calls, jobs) for
//! the entity's lifetime and address it from events. A `Vec<Option<T>>`
//! indexed by a global entity id works, but its footprint grows with
//! *every entity ever created* — a long run's table spans megabytes
//! while only a handful of entries are live, so every lookup is a
//! near-guaranteed cache miss. A slab recycles freed slots through a
//! free list: live entries cluster in the first few dozen slots,
//! keeping the whole working set a few cache lines wide regardless of
//! run length.
//!
//! Recycling makes stale handles a hazard: a dangling index would
//! silently read the slot's *next* occupant. Every slot therefore
//! carries a generation counter, bumped on each removal; a [`SlotId`]
//! captures the generation at insertion and is rejected (`None`) once
//! the slot moves on. Use-after-free reads become observable misses
//! instead of aliasing bugs.

/// Handle to one slab entry: slot index plus the generation observed at
/// insertion. Stale handles (outliving their entry) fail lookups
/// instead of aliasing the slot's next occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotId {
    index: u32,
    gen: u32,
}

impl SlotId {
    /// A handle no slab ever issues; lookups always miss. Useful as the
    /// initial value of dense id→slot maps.
    pub const INVALID: SlotId = SlotId {
        index: u32::MAX,
        gen: u32::MAX,
    };

    /// The raw slot index (diagnostics only — not a stable identifier,
    /// slots are recycled).
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Debug)]
struct Slot<T> {
    /// Bumped every time the slot's occupant is removed; odd/even says
    /// nothing — only equality with a handle's captured value matters.
    gen: u32,
    val: Option<T>,
}

/// A slab allocator over `T` with O(1) insert/remove and
/// generation-checked lookups. See the module docs for why.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Indices of vacant slots, reused LIFO (the hottest line first).
    free: Vec<u32>,
    live: usize,
    /// Generation floor for slots created after a tail trim: every new
    /// slot starts here, strictly above any generation a retired slot
    /// ever issued, so handles into trimmed slots can never alias a
    /// later occupant of the same index.
    floor_gen: u32,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            floor_gen: 0,
        }
    }

    /// An empty slab with room for `capacity` entries before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            floor_gen: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots ever allocated (live + vacant) — the table's high-water
    /// mark, and so its resident footprint.
    pub fn capacity_used(&self) -> usize {
        self.slots.len()
    }

    /// Inserts `val`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, val: T) -> SlotId {
        self.live += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.val.is_none(), "free list pointed at a live slot");
                slot.val = Some(val);
                SlotId {
                    index,
                    gen: slot.gen,
                }
            }
            None => {
                let index = self.slots.len() as u32;
                let gen = self.floor_gen;
                self.slots.push(Slot {
                    gen,
                    val: Some(val),
                });
                SlotId { index, gen }
            }
        }
    }

    /// Removes and returns the entry behind `id`, or `None` if the
    /// handle is stale or invalid. The slot's generation advances, so
    /// copies of `id` held elsewhere miss from now on.
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.index);
        self.live -= 1;
        if self.slots.len() >= 64 && self.live * 4 < self.slots.len() {
            self.trim_tail();
        }
        Some(val)
    }

    /// Retires vacant slots off the tail once the live population has
    /// fallen to a quarter of the table's high-water mark, capping the
    /// footprint at roughly 2× the live set instead of letting one
    /// burst pin it forever. LIFO free-list reuse keeps live entries
    /// clustered at the low indices, so the tail is where vacancy
    /// accumulates. Every retired slot raises `floor_gen` past its
    /// last generation, keeping stale handles unambiguous if the table
    /// later re-grows over the same indices.
    fn trim_tail(&mut self) {
        let keep = (self.live * 2).max(32);
        let mut new_len = self.slots.len();
        while new_len > keep && self.slots[new_len - 1].val.is_none() {
            new_len -= 1;
        }
        if new_len == self.slots.len() {
            return;
        }
        for slot in &self.slots[new_len..] {
            self.floor_gen = self.floor_gen.max(slot.gen.wrapping_add(1));
        }
        self.slots.truncate(new_len);
        self.slots.shrink_to_fit();
        self.free.retain(|&i| (i as usize) < new_len);
        self.free.shrink_to_fit();
    }

    /// The entry behind `id`, or `None` for stale/invalid handles.
    #[inline]
    pub fn get(&self, id: SlotId) -> Option<&T> {
        match self.slots.get(id.index as usize) {
            Some(slot) if slot.gen == id.gen => slot.val.as_ref(),
            _ => None,
        }
    }

    /// Mutable access to the entry behind `id`, or `None` for
    /// stale/invalid handles.
    #[inline]
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        match self.slots.get_mut(id.index as usize) {
            Some(slot) if slot.gen == id.gen => slot.val.as_mut(),
            _ => None,
        }
    }
}

impl crate::snapshot::Snapshot for SlotId {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.u32(self.index);
        w.u32(self.gen);
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(SlotId {
            index: r.u32()?,
            gen: r.u32()?,
        })
    }
}

impl<T: crate::snapshot::Snapshot> crate::snapshot::Snapshot for Slab<T> {
    /// The full table round-trips — slot generations, the free list,
    /// and the trim-floor included — so handles captured in the same
    /// snapshot keep resolving (or keep missing) exactly as before.
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.u32(slot.gen);
            slot.val.save(w);
        }
        self.free.save(w);
        w.usize(self.live);
        w.u32(self.floor_gen);
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let n = r.seq_len()?;
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let gen = r.u32()?;
            let val = Option::<T>::load(r)?;
            slots.push(Slot { gen, val });
        }
        let free = Vec::<u32>::load(r)?;
        let live = r.usize()?;
        let floor_gen = r.u32()?;
        if slots.iter().filter(|s| s.val.is_some()).count() != live {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "slab live count disagrees with occupied slots".into(),
            ));
        }
        Ok(Slab {
            slots,
            free,
            live,
            floor_gen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.remove(a);
        let c = slab.insert(3);
        assert_eq!(c.index(), a.index(), "freed slot is recycled first");
        assert_eq!(slab.capacity_used(), 2, "no new slot allocated");
    }

    #[test]
    fn stale_handles_miss_after_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let c = slab.insert(3);
        assert_eq!(c.index(), a.index());
        // The stale handle must not alias the new occupant.
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(c), Some(&3));
    }

    #[test]
    fn invalid_handle_always_misses() {
        let mut slab: Slab<u32> = Slab::new();
        assert_eq!(slab.get(SlotId::INVALID), None);
        slab.insert(7);
        assert_eq!(slab.get(SlotId::INVALID), None);
        assert_eq!(slab.remove(SlotId::INVALID), None);
    }

    #[test]
    fn double_remove_is_inert() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        assert_eq!(slab.remove(a), Some(1));
        assert_eq!(slab.remove(a), None, "second remove must not free again");
        assert_eq!(slab.len(), 0);
        // The free list holds the slot exactly once.
        let b = slab.insert(2);
        let c = slab.insert(3);
        assert_ne!(b.index(), c.index());
    }

    #[test]
    fn tail_trims_after_burst_drains() {
        let mut slab = Slab::new();
        let ids: Vec<_> = (0..1000).map(|i| slab.insert(i)).collect();
        assert_eq!(slab.capacity_used(), 1000);
        // Drain the burst newest-first so vacancy lands on the tail.
        for id in ids.iter().skip(8).rev() {
            slab.remove(*id);
        }
        assert!(
            slab.capacity_used() < 1000,
            "table stayed at {} slots with 8 live entries",
            slab.capacity_used()
        );
        // Survivors are untouched, and handles into the retired range
        // miss rather than alias anything newly grown.
        for (i, id) in ids.iter().enumerate().take(8) {
            assert_eq!(slab.get(*id), Some(&(i as i32)));
        }
        let regrown: Vec<_> = (0..1000).map(|i| slab.insert(i + 1000)).collect();
        for id in ids.iter().skip(8) {
            assert_eq!(slab.get(*id), None, "stale handle aliased after regrow");
        }
        for (i, id) in regrown.iter().enumerate() {
            assert_eq!(slab.get(*id), Some(&(i as i32 + 1000)));
        }
    }

    #[test]
    fn generations_isolate_many_reuses() {
        let mut slab = Slab::new();
        let mut old = Vec::new();
        for i in 0..100 {
            let id = slab.insert(i);
            old.push(id);
            slab.remove(id);
        }
        assert_eq!(slab.capacity_used(), 1, "one slot serves all cycles");
        let live = slab.insert(999);
        for id in old {
            assert_eq!(slab.get(id), None);
        }
        assert_eq!(slab.get(live), Some(&999));
    }
}
