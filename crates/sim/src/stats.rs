//! Streaming statistics for simulation output.
//!
//! The evaluation reports P99 tail latency, average latency, throughput,
//! utilization, and event counters. This module provides:
//!
//! - [`Histogram`] — a log-bucketed (HDR-style) histogram over `u64`
//!   values (we record latencies in picoseconds) with ~1% relative
//!   error at any magnitude, O(1) record, and exact count/sum.
//! - [`BusyTracker`] — accumulates busy time of a server to report
//!   utilization.
//! - [`Counter`] — a named event counter.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Number of linear sub-buckets per power-of-two bucket. 64 sub-buckets
/// give a worst-case relative error of 1/64 ≈ 1.6%.
const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// A log-bucketed histogram of `u64` samples.
///
/// Values are grouped into power-of-two ranges, each split into 64
/// linear sub-buckets, bounding relative error at ~1.6% — more than
/// enough resolution for latency percentiles.
///
/// # Example
///
/// ```
/// use accelflow_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.05);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        // Values below SUB_BUCKETS map 1:1 into the first SUB_BUCKETS
        // slots; above that, each power-of-two range contributes
        // SUB_BUCKETS slots addressed by the top SUB_BUCKET_BITS bits
        // below the leading one.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        let range = (msb - SUB_BUCKET_BITS + 1) as usize;
        range * SUB_BUCKETS + sub
    }

    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let range = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        let shift = (range - 1) as u32;
        // Midpoint-ish representative: top of the sub-bucket.
        ((SUB_BUCKETS as u64 + sub) << shift) + (1u64 << shift) - 1
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`SimDuration`] sample (stored as picoseconds).
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_picos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The largest recorded sample (exact), or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at the given percentile (0–100), within ~1.6% relative
    /// error. Returns 0 for an empty histogram. `p = 0` is the exact
    /// minimum and `p = 100` the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 {
            return 0;
        }
        if p == 0.0 {
            // The rank formula below floors at rank 1, which is p~ε,
            // not p0: a histogram of {1, 1000} must report p0 = 1 even
            // though bucket resolution would round rank 1 upward.
            return self.min;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Mean as a [`SimDuration`] (interpreting samples as picoseconds).
    pub fn mean_duration(&self) -> SimDuration {
        SimDuration::from_picos(self.mean().round() as u64)
    }

    /// Percentile as a [`SimDuration`] (interpreting samples as
    /// picoseconds).
    pub fn percentile_duration(&self, p: f64) -> SimDuration {
        SimDuration::from_picos(self.percentile(p))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

/// Accumulates the busy time of a single logical server, for
/// utilization reporting.
///
/// # Example
///
/// ```
/// use accelflow_sim::stats::BusyTracker;
/// use accelflow_sim::time::{SimDuration, SimTime};
///
/// let mut b = BusyTracker::new();
/// b.add_busy(SimDuration::from_micros(30));
/// let util = b.utilization(SimTime::ZERO + SimDuration::from_micros(100));
/// assert!((util - 0.3).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct BusyTracker {
    busy: SimDuration,
}

impl BusyTracker {
    /// Creates a tracker with no accumulated busy time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a span of busy time.
    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy += d;
    }

    /// Total accumulated busy time.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Busy fraction of the window `[0, now]`; 0.0 when `now` is zero.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let total = now.as_picos();
        if total == 0 {
            0.0
        } else {
            (self.busy.as_picos() as f64 / total as f64).min(1.0)
        }
    }
}

/// A named event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// This counter as a fraction of `denom` (0.0 if `denom` is zero).
    pub fn rate_per(&self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.value as f64 / denom as f64
        }
    }
}

impl crate::snapshot::Snapshot for Histogram {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        self.buckets.save(w);
        w.u64(self.count);
        // u128 travels as two u64 halves, low word first.
        w.u64(self.sum as u64);
        w.u64((self.sum >> 64) as u64);
        w.u64(self.min);
        w.u64(self.max);
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let buckets = Vec::<u64>::load(r)?;
        let count = r.u64()?;
        let lo = r.u64()?;
        let hi = r.u64()?;
        let sum = (lo as u128) | ((hi as u128) << 64);
        let min = r.u64()?;
        let max = r.u64()?;
        Ok(Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_accurate() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let expect = p / 100.0 * 100_000.0;
            let got = h.percentile(p) as f64;
            assert!(
                (got - expect).abs() / expect < 0.02,
                "p{p}: got {got}, expected {expect}"
            );
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_handles_small_and_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 2);
    }

    #[test]
    fn histogram_large_values() {
        let mut h = Histogram::new();
        let big = 3_000_000_000_000u64; // 3 seconds in ps
        h.record(big);
        let p = h.percentile(50.0);
        assert!((p as f64 / big as f64 - 1.0).abs() < 0.02, "got {p}");
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
            both.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.percentile(99.0), both.percentile(99.0));
        assert_eq!(a.mean(), both.mean());
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_range_checked() {
        Histogram::new().percentile(101.0);
    }

    /// Sorted-vec reference: exact p0/p100, nearest-rank interior.
    fn oracle(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn percentile_edges_match_sorted_oracle() {
        // Regression: p0 used to floor the rank at 1, returning p~ε
        // instead of the minimum — {1, 1000} reported p0 ≈ 1000.
        let mut h = Histogram::new();
        h.record(1);
        h.record(1000);
        assert_eq!(h.percentile(0.0), 1, "p0 must be the minimum");
        assert_eq!(h.percentile(100.0), 1000);

        let mut rng = crate::rng::SimRng::seed(0x5EED);
        let mut values: Vec<u64> = (0..5_000)
            .map(|_| rng.uniform_range(1.0, 1e10) as u64)
            .collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        assert_eq!(h.percentile(0.0), values[0], "p0 == exact min");
        assert_eq!(
            h.percentile(100.0),
            *values.last().unwrap(),
            "p100 == exact max"
        );
        for p in [10.0, 50.0, 90.0, 99.0] {
            let want = oracle(&values, p) as f64;
            let got = h.percentile(p) as f64;
            assert!(
                (got - want).abs() / want < 0.02,
                "p{p}: got {got}, oracle {want}"
            );
        }
    }

    /// Metamorphic check: merging N partial histograms must equal one
    /// histogram of the concatenated stream — exactly for count, sum,
    /// mean, min, max, and every percentile (identical bucket arrays).
    #[test]
    fn merge_is_metamorphic_over_partitions() {
        let mut rng = crate::rng::SimRng::seed(0xACC0);
        let values: Vec<u64> = (0..4_000)
            .map(|_| {
                // Mixed magnitudes: sub-bucket linear range up to ~1e12.
                let exp = rng.uniform_range(0.0, 12.0);
                10f64.powf(exp) as u64
            })
            .collect();
        for parts in [2usize, 3, 7] {
            let mut partials = vec![Histogram::new(); parts];
            let mut whole = Histogram::new();
            for (i, &v) in values.iter().enumerate() {
                partials[i % parts].record(v);
                whole.record(v);
            }
            let mut merged = Histogram::new();
            for p in &partials {
                merged.merge(p);
            }
            assert_eq!(merged.count(), whole.count());
            assert_eq!(merged.min(), whole.min());
            assert_eq!(merged.max(), whole.max());
            assert_eq!(merged.mean(), whole.mean(), "sums must match exactly");
            for p in [0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 99.9, 100.0] {
                assert_eq!(
                    merged.percentile(p),
                    whole.percentile(p),
                    "p{p} diverged with {parts} partitions"
                );
            }
        }
    }

    #[test]
    fn merge_disjoint_ranges_and_bucket_counts() {
        // `a` only has small values (short bucket array); `b` only huge
        // ones (long bucket array). Merge in both directions and check
        // against recording the concatenated stream.
        let small: Vec<u64> = (1..=100).collect();
        let huge: Vec<u64> = (1..=100).map(|v| v * 1_000_000_000).collect();
        let build = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let mut whole = Histogram::new();
        for &v in small.iter().chain(huge.iter()) {
            whole.record(v);
        }
        for (first, second) in [(&small, &huge), (&huge, &small)] {
            let mut m = build(first);
            m.merge(&build(second));
            assert_eq!(m.count(), whole.count());
            assert_eq!(m.mean(), whole.mean());
            assert_eq!(m.percentile(0.0), 1, "global min survives merge");
            assert_eq!(m.percentile(100.0), 100_000_000_000);
            for p in [10.0, 50.0, 90.0] {
                assert_eq!(m.percentile(p), whole.percentile(p));
            }
        }
    }

    #[test]
    fn busy_tracker_utilization() {
        let mut b = BusyTracker::new();
        b.add_busy(SimDuration::from_micros(25));
        b.add_busy(SimDuration::from_micros(25));
        let now = SimTime::ZERO + SimDuration::from_micros(200);
        assert!((b.utilization(now) - 0.25).abs() < 1e-12);
        assert_eq!(b.utilization(SimTime::ZERO), 0.0);
        assert_eq!(b.busy(), SimDuration::from_micros(50));
    }

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.rate_per(100) - 0.1).abs() < 1e-12);
        assert_eq!(c.rate_per(0), 0.0);
    }

    #[test]
    fn duration_recording_roundtrip() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_micros(100));
        let p = h.percentile_duration(50.0);
        assert!((p.as_micros_f64() - 100.0).abs() / 100.0 < 0.02);
        assert!((h.mean_duration().as_micros_f64() - 100.0).abs() < 1e-6);
    }
}

/// Time-bucketed samples for time-series diagnostics: values recorded
/// at instants are grouped into fixed-width buckets, each summarizable
/// by count, mean, or percentile.
///
/// # Example
///
/// ```
/// use accelflow_sim::stats::TimeSeries;
/// use accelflow_sim::time::{SimDuration, SimTime};
///
/// let mut ts = TimeSeries::new(SimDuration::from_millis(1), SimDuration::from_millis(10));
/// ts.record(SimTime::from_picos(500_000_000), 42); // 0.5 ms
/// ts.record(SimTime::from_picos(1_500_000_000), 7); // 1.5 ms
/// assert_eq!(ts.buckets(), 10);
/// assert_eq!(ts.count(0), 1);
/// assert_eq!(ts.percentile(1, 50.0), Some(7));
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: SimDuration,
    data: Vec<Vec<u64>>,
    clamped: u64,
}

impl TimeSeries {
    /// Creates a series covering `[0, span)` with the given bucket
    /// width. Samples beyond the span land in the last bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero or wider than `span`.
    pub fn new(bucket: SimDuration, span: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        assert!(
            bucket.as_picos() <= span.as_picos(),
            "bucket wider than span"
        );
        let buckets = span.as_picos().div_ceil(bucket.as_picos()) as usize;
        TimeSeries {
            bucket,
            data: vec![Vec::new(); buckets],
            clamped: 0,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.data.len()
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Records a sample at instant `at`. Samples past the configured
    /// span are folded into the last bucket and counted in
    /// [`clamped`](TimeSeries::clamped).
    pub fn record(&mut self, at: SimTime, value: u64) {
        let idx = (at.as_picos() / self.bucket.as_picos()) as usize;
        if idx >= self.data.len() {
            self.clamped += 1;
        }
        let idx = idx.min(self.data.len() - 1);
        self.data[idx].push(value);
    }

    /// Samples that fell past the configured span and were folded into
    /// the last bucket. A non-zero value means that bucket mixes
    /// in-window and out-of-window data — the distortion is counted
    /// here rather than happening silently.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Samples in bucket `i`.
    pub fn count(&self, i: usize) -> usize {
        self.data[i].len()
    }

    /// Mean of bucket `i`, or `None` if empty.
    pub fn mean(&self, i: usize) -> Option<f64> {
        let v = &self.data[i];
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<u64>() as f64 / v.len() as f64)
        }
    }

    /// Percentile `p` (0–100) of bucket `i`, or `None` if empty.
    pub fn percentile(&self, i: usize, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let v = &self.data[i];
        if v.is_empty() {
            return None;
        }
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Renders one character per bucket, scaled to the series maximum,
    /// using the provided glyph ramp (e.g. `['.', ':', '|', '#']`).
    pub fn sparkline(&self, ramp: &[char], stat: impl Fn(&TimeSeries, usize) -> f64) -> String {
        assert!(!ramp.is_empty(), "ramp must be non-empty");
        let values: Vec<f64> = (0..self.buckets()).map(|i| stat(self, i)).collect();
        let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        values
            .iter()
            .map(|&v| {
                let idx = ((v / max) * (ramp.len() - 1) as f64).round() as usize;
                ramp[idx.min(ramp.len() - 1)]
            })
            .collect()
    }
}

#[cfg(test)]
mod timeseries_tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(SimDuration::from_millis(1), SimDuration::from_millis(5))
    }

    #[test]
    fn buckets_partition_time() {
        let mut ts = series();
        assert_eq!(ts.buckets(), 5);
        for ms in 0..5u64 {
            ts.record(
                SimTime::ZERO + SimDuration::from_micros(ms * 1000 + 500),
                ms,
            );
        }
        for i in 0..5 {
            assert_eq!(ts.count(i), 1, "bucket {i}");
            assert_eq!(ts.mean(i), Some(i as f64));
        }
    }

    #[test]
    fn overflow_lands_in_last_bucket() {
        let mut ts = series();
        ts.record(SimTime::ZERO + SimDuration::from_millis(99), 7);
        assert_eq!(ts.count(4), 1);
    }

    #[test]
    fn overflow_clamps_are_counted_not_silent() {
        // Regression: out-of-span samples used to fold into the last
        // bucket with no trace that its data was distorted.
        let mut ts = series();
        ts.record(SimTime::ZERO + SimDuration::from_millis(2), 1);
        assert_eq!(ts.clamped(), 0);
        ts.record(SimTime::ZERO + SimDuration::from_millis(99), 7);
        ts.record(SimTime::ZERO + SimDuration::from_millis(5), 8);
        assert_eq!(ts.clamped(), 2, "both out-of-span samples counted");
        // Landing exactly in the last bucket is not a clamp.
        ts.record(SimTime::ZERO + SimDuration::from_micros(4_500), 9);
        assert_eq!(ts.clamped(), 2);
    }

    #[test]
    fn percentiles_per_bucket() {
        let mut ts = series();
        for v in 1..=100u64 {
            ts.record(SimTime::ZERO, v);
        }
        assert_eq!(ts.percentile(0, 0.0), Some(1));
        assert_eq!(ts.percentile(0, 100.0), Some(100));
        let p50 = ts.percentile(0, 50.0).unwrap();
        assert!((49..=52).contains(&p50), "{p50}");
        assert_eq!(ts.percentile(1, 50.0), None);
    }

    #[test]
    fn sparkline_scales_to_max() {
        let mut ts = series();
        ts.record(SimTime::ZERO, 1);
        ts.record(SimTime::ZERO + SimDuration::from_millis(2), 10);
        let art = ts.sparkline(&['.', '#'], |t, i| t.mean(i).unwrap_or(0.0));
        assert_eq!(art.len(), 5);
        assert_eq!(art.chars().nth(2), Some('#'));
        assert_eq!(art.chars().next(), Some('.'));
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO, SimDuration::from_millis(1));
    }
}
