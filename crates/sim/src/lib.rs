//! Deterministic discrete-event simulation kernel for the AccelFlow
//! reproduction.
//!
//! This crate is the foundation substrate: the paper evaluates AccelFlow
//! with full-system simulation (QEMU + SST); we reproduce the evaluation
//! with a deterministic discrete-event simulator built on this kernel.
//!
//! The kernel is deliberately small and generic:
//!
//! - [`time`] — picosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) and clock-frequency conversions ([`Frequency`]).
//! - [`engine`] — the event loop: a [`Model`] handles its own event type
//!   and schedules future events through an [`EventQueue`]. Ties in time
//!   are broken by insertion order, so runs are exactly reproducible.
//! - [`rng`] — a seeded random-number source and the distributions used
//!   by the workload generators (exponential, log-normal, bounded
//!   Pareto, empirical).
//! - [`stats`] — streaming statistics: a log-bucketed latency
//!   [`Histogram`], counters, and busy-time (utilization) trackers.
//! - [`resource`] — helpers for modeling pools of identical servers
//!   (DMA engines, processing elements, CPU cores).
//! - [`trace_log`] — an event-tracing wrapper for debugging models.
//! - [`snapshot`] — versioned checkpoint serialization: the
//!   [`Snapshot`](snapshot::Snapshot) trait and wire format behind
//!   `Machine::{snapshot,restore}` (see `docs/CHECKPOINT.md`).
//! - [`telemetry`] — structured observability: component-keyed event
//!   records, windowed time-series sampling, and a Chrome `trace_event`
//!   exporter (see `docs/METRICS.md` for the metric glossary).
//!
//! # Example
//!
//! ```
//! use accelflow_sim::engine::{EventQueue, Model, Simulation};
//! use accelflow_sim::time::{SimDuration, SimTime};
//!
//! struct Pinger {
//!     bounces: u32,
//! }
//!
//! enum Ev {
//!     Ping,
//! }
//!
//! impl Model for Pinger {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, _ev: Ev, queue: &mut EventQueue<Ev>) {
//!         self.bounces += 1;
//!         if self.bounces < 10 {
//!             queue.schedule(SimDuration::from_nanos(5), Ev::Ping);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Pinger { bounces: 0 });
//! sim.queue_mut().schedule(SimDuration::ZERO, Ev::Ping);
//! sim.run();
//! assert_eq!(sim.model().bounces, 10);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_nanos(45));
//! ```

#![warn(missing_docs)]

mod calendar;
pub mod engine;
pub mod resource;
pub mod rng;
pub mod slab;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace_log;

pub use engine::{EventQueue, Model, Simulation};
pub use rng::SimRng;
pub use stats::Histogram;
pub use telemetry::{CompId, CompKind, Record, RecordKind, Sampler, Telemetry, TelemetryReport};
pub use time::{Frequency, SimDuration, SimTime};
