//! Structured simulation telemetry: ring-buffered event records,
//! windowed time-series sampling, and a Chrome `trace_event` exporter.
//!
//! The end-of-run [stats](crate::stats) answer *how much*; this module
//! answers *where and when*. Models emit [`Record`]s — spans, instants,
//! and counters keyed by a [`CompId`] (an accelerator station, a DMA
//! engine, the manager, the ATM, …) — into a bounded [`Telemetry`] ring
//! buffer. A [`Sampler`] captures windowed occupancy/utilization rows
//! on a fixed cadence. The drained [`TelemetryReport`] renders as:
//!
//! - a Chrome `trace_event` JSON timeline ([`TelemetryReport::chrome_trace`])
//!   loadable in Perfetto / `chrome://tracing`, one track per component
//!   with flow arrows following each request across its trace chain;
//! - a per-component latency-breakdown table
//!   ([`TelemetryReport::component_breakdown`]);
//! - textual sparkline timelines over the sampled series
//!   ([`TelemetryReport::sparkline`]).
//!
//! # Cost model
//!
//! Telemetry is designed to be a single predictable branch when
//! disabled: emission helpers return immediately without evaluating
//! their arguments' side costs (see [`Telemetry::emit_with`]), and the
//! machine model holds its whole telemetry state in an `Option` so the
//! disabled hot path pays one `None` check per emission site. The ring
//! buffer bounds memory when enabled; overflow drops the *oldest*
//! records and counts them in [`Telemetry::dropped`] rather than
//! failing silently.
//!
//! # Example
//!
//! ```
//! use accelflow_sim::telemetry::{CompId, CompKind, Telemetry};
//! use accelflow_sim::time::{SimDuration, SimTime};
//!
//! let mut tel = Telemetry::new(1024);
//! let tcp = CompId::new(CompKind::Accelerator, 1);
//! tel.set_label(tcp, "TCP#0");
//! tel.span(SimTime::from_picos(1_000), tcp, "pe", SimDuration::from_nanos(5), Some(7), 512);
//! tel.instant(SimTime::from_picos(9_000), CompId::ATM, "atm_read", Some(7));
//! let report = tel.into_report();
//! let json = report.chrome_trace();
//! assert!(json.contains("\"ph\":\"X\""));
//! accelflow_sim::telemetry::validate_chrome_trace(&json).unwrap();
//! ```

use std::collections::{BTreeMap, VecDeque};

use crate::stats::Histogram;
use crate::time::{SimDuration, SimTime};

/// The class of component a record belongs to.
///
/// The variant order defines the track order in the Chrome-trace
/// export (machine-wide events first, then accelerators, then the
/// movement/orchestration engines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompKind {
    /// Machine-wide events with no finer home (arrivals, timeouts).
    Machine,
    /// One accelerator station (index = flat station index).
    Accelerator,
    /// The shared A-DMA engine pool (lanes are split out per engine at
    /// export time).
    Dma,
    /// The centralized manager (RELIEF family and ablation fallbacks).
    Manager,
    /// The Accelerator Trace Memory.
    Atm,
    /// An accelerator-side TLB (index = flat station index).
    Tlb,
    /// A mesh/interconnect link.
    Link,
}

impl CompKind {
    fn fallback_label(self) -> &'static str {
        match self {
            CompKind::Machine => "machine",
            CompKind::Accelerator => "accel",
            CompKind::Dma => "A-DMA",
            CompKind::Manager => "manager",
            CompKind::Atm => "ATM",
            CompKind::Tlb => "TLB",
            CompKind::Link => "link",
        }
    }
}

/// A component identity: kind plus instance index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId {
    /// The component class.
    pub kind: CompKind,
    /// Instance index within the class (0 for singletons).
    pub index: u16,
}

impl CompId {
    /// The machine-wide pseudo-component.
    pub const MACHINE: CompId = CompId::new(CompKind::Machine, 0);
    /// The (singleton) A-DMA pool.
    pub const DMA: CompId = CompId::new(CompKind::Dma, 0);
    /// The centralized manager.
    pub const MANAGER: CompId = CompId::new(CompKind::Manager, 0);
    /// The Accelerator Trace Memory.
    pub const ATM: CompId = CompId::new(CompKind::Atm, 0);

    /// A component id of `kind` with instance `index`.
    pub const fn new(kind: CompKind, index: u16) -> Self {
        CompId { kind, index }
    }

    /// The accelerator station with flat index `station`.
    pub const fn accelerator(station: u16) -> Self {
        CompId::new(CompKind::Accelerator, station)
    }
}

/// What a [`Record`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A duration of activity on the component (Chrome `ph:"X"`).
    Span {
        /// How long the activity lasted.
        dur: SimDuration,
    },
    /// A point event (Chrome `ph:"i"`).
    Instant,
    /// A sampled counter value (Chrome `ph:"C"`).
    Counter {
        /// The counter value at [`Record::at`].
        value: u64,
    },
}

/// One telemetry record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// When the record begins (spans) or occurs (instants, counters).
    pub at: SimTime,
    /// Which component emitted it.
    pub comp: CompId,
    /// Event name — a short static identifier (`"pe"`, `"dma"`,
    /// `"glue"`, …); the per-name contracts live in `docs/METRICS.md`.
    pub name: &'static str,
    /// Span, instant, or counter.
    pub kind: RecordKind,
    /// The request this record belongs to, if any. Consecutive spans of
    /// the same request become flow arrows in the Chrome export.
    pub req: Option<u32>,
    /// A free numeric argument whose meaning is per-`name` (bytes for
    /// `"dma"`, glue instructions for `"glue"`, queueing picoseconds
    /// for `"pe"`); exported under `args.arg`.
    pub arg: u64,
}

/// A bounded, component-keyed event sink.
///
/// Records are kept in emission order in a ring buffer of fixed
/// capacity; when full, the oldest record is dropped and counted (the
/// tail of a run is usually the interesting part). A disabled sink
/// ([`Telemetry::disabled`]) accepts and discards everything with a
/// single branch.
#[derive(Clone, Debug)]
pub struct Telemetry {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<Record>,
    emitted: u64,
    dropped: u64,
    labels: BTreeMap<CompId, String>,
}

impl Telemetry {
    /// An enabled sink keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "telemetry capacity must be positive");
        Telemetry {
            enabled: true,
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            emitted: 0,
            dropped: 0,
            labels: BTreeMap::new(),
        }
    }

    /// A sink that discards every record (for overhead measurement; the
    /// machine model uses `Option<…>::None` instead, which is cheaper
    /// still).
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            capacity: 0,
            ring: VecDeque::new(),
            emitted: 0,
            dropped: 0,
            labels: BTreeMap::new(),
        }
    }

    /// Whether records are being captured.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Names a component's track in the Chrome export (e.g. `"TCP#0"`).
    pub fn set_label(&mut self, comp: CompId, label: impl Into<String>) {
        if self.enabled {
            self.labels.insert(comp, label.into());
        }
    }

    #[inline]
    fn push(&mut self, record: Record) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
        self.emitted += 1;
    }

    /// Emits the record built by `f` — `f` runs only when the sink is
    /// enabled, so argument construction costs nothing when disabled.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> Record) {
        if self.enabled {
            self.push(f());
        }
    }

    /// Emits a span of `dur` starting at `at`.
    #[inline]
    pub fn span(
        &mut self,
        at: SimTime,
        comp: CompId,
        name: &'static str,
        dur: SimDuration,
        req: Option<u32>,
        arg: u64,
    ) {
        if self.enabled {
            self.push(Record {
                at,
                comp,
                name,
                kind: RecordKind::Span { dur },
                req,
                arg,
            });
        }
    }

    /// Emits a point event at `at`.
    #[inline]
    pub fn instant(&mut self, at: SimTime, comp: CompId, name: &'static str, req: Option<u32>) {
        if self.enabled {
            self.push(Record {
                at,
                comp,
                name,
                kind: RecordKind::Instant,
                req,
                arg: 0,
            });
        }
    }

    /// Emits a point event at `at` carrying a payload in `arg` (e.g. a
    /// packed call position identifying which of several in-flight
    /// calls of one request the event belongs to).
    #[inline]
    pub fn instant_arg(
        &mut self,
        at: SimTime,
        comp: CompId,
        name: &'static str,
        req: Option<u32>,
        arg: u64,
    ) {
        if self.enabled {
            self.push(Record {
                at,
                comp,
                name,
                kind: RecordKind::Instant,
                req,
                arg,
            });
        }
    }

    /// Emits a counter sample at `at`.
    #[inline]
    pub fn counter(&mut self, at: SimTime, comp: CompId, name: &'static str, value: u64) {
        if self.enabled {
            self.push(Record {
                at,
                comp,
                name,
                kind: RecordKind::Counter { value },
                req: None,
                arg: 0,
            });
        }
    }

    /// Records currently buffered, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.ring.iter()
    }

    /// Total records accepted (including ones later dropped).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records evicted because the ring was full. Non-zero means the
    /// timeline is truncated at the front — resize the capacity or
    /// shorten the run; the loss is *reported*, never silent.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the sink into a report (no sampler series).
    pub fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            enabled: self.enabled,
            records: self.ring.into_iter().collect(),
            emitted: self.emitted,
            dropped: self.dropped,
            labels: self.labels,
            columns: Vec::new(),
            samples: Vec::new(),
            samples_missed: 0,
        }
    }

    /// Drains the sink and a [`Sampler`] into one report. Call
    /// [`Sampler::close`] with the run horizon first so trailing empty
    /// windows are counted in `samples_missed` instead of vanishing.
    pub fn into_report_with_samples(self, sampler: Sampler) -> TelemetryReport {
        let mut report = self.into_report();
        report.columns = sampler.columns;
        report.samples = sampler.rows;
        report.samples_missed = sampler.missed;
        report
    }
}

/// Fixed-cadence time-series capture: one row of named columns per
/// sampling window (per-accelerator utilization, queue occupancy,
/// tenant-slot pressure, …).
///
/// The owner checks [`Sampler::due`] on its own schedule (the machine
/// model piggybacks on event delivery, so sampling never perturbs the
/// event queue) and pushes a row of values matching the column layout.
#[derive(Clone, Debug)]
pub struct Sampler {
    interval: SimDuration,
    next: SimTime,
    columns: Vec<String>,
    rows: Vec<(SimTime, Vec<u64>)>,
    missed: u64,
}

impl Sampler {
    /// A sampler with the given window width and column names.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `columns` is empty.
    pub fn new(interval: SimDuration, columns: Vec<String>) -> Self {
        assert!(!interval.is_zero(), "sample interval must be positive");
        assert!(!columns.is_empty(), "sampler needs at least one column");
        Sampler {
            interval,
            next: SimTime::ZERO + interval,
            columns,
            rows: Vec::new(),
            missed: 0,
        }
    }

    /// The sampling window width.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// True when a sample is due at `now`.
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next
    }

    /// Appends a row at `at` and advances the next-due instant past
    /// `at`. Windows with no events are skipped, not back-filled — but
    /// each skipped window is counted in [`Sampler::missed`] (the
    /// [`Telemetry::dropped`] philosophy: loss is reported, never
    /// silent).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column layout.
    pub fn push_row(&mut self, at: SimTime, values: Vec<u64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((at, values));
        // The first advance closes the window this row samples; every
        // further advance is a window that elapsed with no row.
        let mut advances = 0u64;
        while self.next <= at {
            self.next += self.interval;
            advances += 1;
        }
        self.missed += advances.saturating_sub(1);
    }

    /// Closes the series at the run horizon: windows that ended at or
    /// before `horizon` but never received a row (the run went quiet,
    /// or the horizon landed exactly on a window edge after the last
    /// delivered event) are counted as missed instead of vanishing.
    /// Idempotent for a fixed `horizon`.
    pub fn close(&mut self, horizon: SimTime) {
        while self.next <= horizon {
            self.next += self.interval;
            self.missed += 1;
        }
    }

    /// Sampling windows that elapsed without a captured row (including
    /// tail windows counted by [`Sampler::close`]). Non-zero means the
    /// series has gaps — surface it next to any rendered sparkline.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The captured rows, oldest first.
    pub fn rows(&self) -> &[(SimTime, Vec<u64>)] {
        &self.rows
    }
}

/// Per-component aggregate of the captured spans (the latency-breakdown
/// table of the `stats_profile` binary).
#[derive(Clone, Debug)]
pub struct ComponentRow {
    /// The component.
    pub comp: CompId,
    /// Its display label.
    pub label: String,
    /// Number of spans captured on it.
    pub spans: u64,
    /// Total busy time across its spans.
    pub busy: SimDuration,
    /// Mean span duration.
    pub mean: SimDuration,
    /// 99th-percentile span duration.
    pub p99: SimDuration,
    /// Longest span.
    pub max: SimDuration,
}

/// The drained result of a telemetry run: records, loss accounting,
/// track labels, and sampler series. Attached to the machine's run
/// report; render with [`chrome_trace`](TelemetryReport::chrome_trace),
/// [`component_breakdown`](TelemetryReport::component_breakdown), or
/// [`sparkline`](TelemetryReport::sparkline).
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// Whether telemetry was on (a disabled report is empty and inert).
    pub enabled: bool,
    /// Captured records, oldest first.
    pub records: Vec<Record>,
    /// Total records accepted, including later-dropped ones.
    pub emitted: u64,
    /// Records lost to ring overflow (`emitted - records.len()` when
    /// nothing else drained the ring). Never silently zero: consumers
    /// should surface this next to any rendered timeline.
    pub dropped: u64,
    /// Component display labels.
    pub labels: BTreeMap<CompId, String>,
    /// Sampler column names (empty when sampling was off).
    pub columns: Vec<String>,
    /// Sampler rows `(instant, values)`, oldest first.
    pub samples: Vec<(SimTime, Vec<u64>)>,
    /// Sampling windows that elapsed without a row — skipped mid-run
    /// (no event delivered inside the window) or ending at the run
    /// horizon with nothing left to trigger a sample. The sampler
    /// analogue of [`TelemetryReport::dropped`]: a gap in the series
    /// is reported, never silent.
    pub samples_missed: u64,
}

impl TelemetryReport {
    /// The report of a run with telemetry off.
    pub fn disabled() -> Self {
        TelemetryReport {
            enabled: false,
            records: Vec::new(),
            emitted: 0,
            dropped: 0,
            labels: BTreeMap::new(),
            columns: Vec::new(),
            samples: Vec::new(),
            samples_missed: 0,
        }
    }

    fn label_of(&self, comp: CompId) -> String {
        match self.labels.get(&comp) {
            Some(l) => l.clone(),
            None => format!("{}{}", comp.kind.fallback_label(), comp.index),
        }
    }

    /// Index of a sampler column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Renders sampler column `col` as one glyph per row, scaled to the
    /// column maximum (a textual utilization timeline).
    ///
    /// # Panics
    ///
    /// Panics if `ramp` is empty or `col` is out of range.
    pub fn sparkline(&self, col: usize, ramp: &[char]) -> String {
        assert!(!ramp.is_empty(), "ramp must be non-empty");
        assert!(col < self.columns.len(), "column out of range");
        let max = self
            .samples
            .iter()
            .map(|(_, v)| v[col])
            .max()
            .unwrap_or(0)
            .max(1);
        self.samples
            .iter()
            .map(|(_, v)| {
                let idx = (v[col] * (ramp.len() as u64 - 1) + max / 2) / max;
                ramp[(idx as usize).min(ramp.len() - 1)]
            })
            .collect()
    }

    /// Aggregates span records per component, busiest first.
    pub fn component_breakdown(&self) -> Vec<ComponentRow> {
        let mut per: BTreeMap<CompId, Histogram> = BTreeMap::new();
        for r in &self.records {
            if let RecordKind::Span { dur } = r.kind {
                per.entry(r.comp).or_default().record(dur.as_picos());
            }
        }
        let mut rows: Vec<ComponentRow> = per
            .into_iter()
            .map(|(comp, h)| ComponentRow {
                comp,
                label: self.label_of(comp),
                spans: h.count(),
                busy: SimDuration::from_picos(h.mean().round() as u64 * h.count()),
                mean: h.mean_duration(),
                p99: h.percentile_duration(99.0),
                max: SimDuration::from_picos(h.max()),
            })
            .collect();
        rows.sort_by(|a, b| b.busy.cmp(&a.busy).then_with(|| a.comp.cmp(&b.comp)));
        rows
    }

    /// Exports the records as Chrome `trace_event` JSON (the "JSON
    /// Array Format" with a `traceEvents` wrapper), loadable in
    /// Perfetto or `chrome://tracing`.
    ///
    /// Layout: one process (`pid` 0); one thread track per component,
    /// with overlapping spans on a component split onto extra lanes
    /// (so the ten-engine A-DMA pool renders as up to ten stacked
    /// tracks). Spans become `ph:"X"` complete events with
    /// microsecond `ts`/`dur`; instants `ph:"i"`; counters `ph:"C"`;
    /// and each request's span chain is connected with `ph:"s"/"t"/"f"`
    /// flow arrows keyed by request id. Output is byte-deterministic
    /// for a given record set.
    pub fn chrome_trace(&self) -> String {
        // --- Assign each span a lane within its component so
        // overlapping spans (parallel engines/PEs) get their own rows.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        struct Track {
            comp: CompId,
            lane: u16,
        }
        let mut lane_of: Vec<u16> = vec![0; self.records.len()];
        {
            // Sort span indices per comp by start time; greedy lanes.
            let mut per: BTreeMap<CompId, Vec<usize>> = BTreeMap::new();
            for (i, r) in self.records.iter().enumerate() {
                if matches!(r.kind, RecordKind::Span { .. }) {
                    per.entry(r.comp).or_default().push(i);
                }
            }
            for idxs in per.into_values() {
                let mut sorted = idxs;
                sorted.sort_by_key(|&i| (self.records[i].at, i));
                let mut lane_free: Vec<u64> = Vec::new(); // end ps per lane
                for i in sorted {
                    let r = &self.records[i];
                    let start = r.at.as_picos();
                    let end = match r.kind {
                        RecordKind::Span { dur } => start + dur.as_picos(),
                        _ => unreachable!(),
                    };
                    let lane = match lane_free.iter().position(|&e| e <= start) {
                        Some(l) => l,
                        None => {
                            lane_free.push(0);
                            lane_free.len() - 1
                        }
                    };
                    lane_free[lane] = end;
                    lane_of[i] = lane as u16;
                }
            }
        }
        // --- Map (comp, lane) pairs to small integer tids.
        let mut tracks: Vec<Track> = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| Track {
                comp: r.comp,
                lane: lane_of[i],
            })
            .collect();
        tracks.sort();
        tracks.dedup();
        let tid_of = |comp: CompId, lane: u16| -> usize {
            tracks
                .binary_search(&Track { comp, lane })
                .expect("every record's track is registered")
                + 1
        };

        let mut out = String::with_capacity(256 + self.records.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        let mut push_event = |out: &mut String, ev: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&ev);
        };

        // --- Metadata: process and per-track thread names.
        push_event(
            &mut out,
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"accelflow-sim\"}}"
                .to_string(),
        );
        for (i, t) in tracks.iter().enumerate() {
            let mut label = self.label_of(t.comp);
            if t.lane > 0 {
                label.push_str(&format!(" lane {}", t.lane));
            }
            push_event(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    i + 1,
                    escape_json(&label),
                ),
            );
        }

        // --- Events, stably ordered by timestamp (ties keep emission
        // order, so the export is byte-deterministic).
        let mut events: Vec<(u64, String)> = Vec::with_capacity(self.records.len() + 16);
        for (i, r) in self.records.iter().enumerate() {
            let ts = r.at.as_picos();
            let tid = tid_of(r.comp, lane_of[i]);
            let args = match r.req {
                Some(req) => format!("{{\"req\":{},\"arg\":{}}}", req, r.arg),
                None => format!("{{\"arg\":{}}}", r.arg),
            };
            let ev = match r.kind {
                RecordKind::Span { dur } => format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"args\":{args}}}",
                    micros(ts),
                    micros(dur.as_picos()),
                    escape_json(r.name),
                ),
                RecordKind::Instant => format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
                     \"name\":\"{}\",\"args\":{args}}}",
                    micros(ts),
                    escape_json(r.name),
                ),
                RecordKind::Counter { value } => format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
                     \"name\":\"{}\",\"args\":{{\"value\":{value}}}}}",
                    micros(ts),
                    escape_json(r.name),
                ),
            };
            events.push((ts, ev));
        }
        // --- Flow arrows: chain each request's spans in record order.
        let mut chains: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            if let (Some(req), RecordKind::Span { .. }) = (r.req, r.kind) {
                chains.entry(req).or_default().push(i);
            }
        }
        for (req, idxs) in chains {
            if idxs.len() < 2 {
                continue;
            }
            let last = idxs.len() - 1;
            for (pos, &i) in idxs.iter().enumerate() {
                let r = &self.records[i];
                let ph = if pos == 0 {
                    "s"
                } else if pos == last {
                    "f\",\"bp\":\"e"
                } else {
                    "t"
                };
                let ts = r.at.as_picos();
                events.push((
                    ts,
                    format!(
                        "{{\"ph\":\"{ph}\",\"pid\":0,\"tid\":{},\"ts\":{},\
                         \"id\":{req},\"cat\":\"req\",\"name\":\"req\"}}",
                        tid_of(r.comp, lane_of[i]),
                        micros(ts),
                    ),
                ));
            }
        }
        events.sort_by_key(|&(ts, _)| ts);
        for (_, ev) in events {
            push_event(&mut out, ev);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Formats picoseconds as a decimal-microsecond JSON number with fixed
/// six-digit fraction (exact, so exports are byte-deterministic).
fn micros(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// --------------------------------------------------------------------
// Chrome-trace validation: a dependency-free JSON subset parser used by
// the golden tests and the `stats_profile` binary to prove the export
// is schema-valid (the build environment has no serde to round-trip
// through).

/// Shape summary returned by [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `ph:"X"` complete (span) events.
    pub spans: usize,
    /// `ph:"C"` counter events.
    pub counters: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
    /// `ph:"s"/"t"/"f"` flow events.
    pub flows: usize,
    /// `ph:"M"` metadata events.
    pub metadata: usize,
}

#[derive(Debug)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number,
    Bool,
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn is_number(&self) -> bool {
        matches!(self, Json::Number)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(|_| Json::Number)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses `json` and checks the Chrome `trace_event` schema: a
/// top-level object with a `traceEvents` array, every event an object
/// carrying a one-character string `ph`, numeric `ts` (except `ph:"M"`
/// metadata, where it is optional), numeric `pid`/`tid`, and a string
/// `name`; `ph:"X"` spans must also carry a numeric `dur`.
///
/// Returns a shape summary, or a description of the first violation.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let mut p = Parser::new(json);
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .pipe_array()?;
    let mut summary = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: {field}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string ph"))?;
        if ph.len() != 1 {
            return Err(ctx("ph must be one character"));
        }
        for field in ["pid", "tid"] {
            if !ev.get(field).is_some_and(Json::is_number) {
                return Err(ctx(&format!("missing numeric {field}")));
            }
        }
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(ctx("missing string name"));
        }
        let has_ts = ev.get("ts").is_some_and(Json::is_number);
        match ph {
            "M" => summary.metadata += 1,
            _ if !has_ts => return Err(ctx("missing numeric ts")),
            "X" => {
                if !ev.get("dur").is_some_and(Json::is_number) {
                    return Err(ctx("span missing numeric dur"));
                }
                summary.spans += 1;
            }
            "C" => summary.counters += 1,
            "i" => summary.instants += 1,
            "s" | "t" | "f" => {
                if ev.get("id").is_none() {
                    return Err(ctx("flow event missing id"));
                }
                summary.flows += 1;
            }
            other => return Err(ctx(&format!("unexpected ph '{other}'"))),
        }
        summary.events += 1;
    }
    Ok(summary)
}

impl Json {
    fn pipe_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err("traceEvents is not an array".into()),
        }
    }
}

impl crate::snapshot::Snapshot for CompKind {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.u8(match self {
            CompKind::Machine => 0,
            CompKind::Accelerator => 1,
            CompKind::Dma => 2,
            CompKind::Manager => 3,
            CompKind::Atm => 4,
            CompKind::Tlb => 5,
            CompKind::Link => 6,
        });
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => CompKind::Machine,
            1 => CompKind::Accelerator,
            2 => CompKind::Dma,
            3 => CompKind::Manager,
            4 => CompKind::Atm,
            5 => CompKind::Tlb,
            6 => CompKind::Link,
            other => {
                return Err(crate::snapshot::SnapshotError::Corrupt(format!(
                    "unknown CompKind tag {other}"
                )))
            }
        })
    }
}

impl crate::snapshot::Snapshot for CompId {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        self.kind.save(w);
        w.u16(self.index);
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(CompId {
            kind: CompKind::load(r)?,
            index: r.u16()?,
        })
    }
}

impl crate::snapshot::Snapshot for Sampler {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        self.interval.save(w);
        self.next.save(w);
        self.columns.save(w);
        self.rows.save(w);
        w.u64(self.missed);
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let interval = SimDuration::load(r)?;
        if interval.is_zero() {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "sampler interval is zero".into(),
            ));
        }
        let next = SimTime::load(r)?;
        let columns = Vec::<String>::load(r)?;
        if columns.is_empty() {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "sampler has no columns".into(),
            ));
        }
        let rows = Vec::<(SimTime, Vec<u64>)>::load(r)?;
        for (_, row) in &rows {
            if row.len() != columns.len() {
                return Err(crate::snapshot::SnapshotError::Corrupt(
                    "sampler row width disagrees with columns".into(),
                ));
            }
        }
        let missed = r.u64()?;
        Ok(Sampler {
            interval,
            next,
            columns,
            rows,
            missed,
        })
    }
}

impl crate::snapshot::Snapshot for Telemetry {
    /// Captures the sink's configuration, counters, and labels — **not**
    /// the ring contents. [`Record::name`] is a `&'static str` interned
    /// at compile time, so buffered records cannot round-trip through a
    /// file; a restored sink resumes with an empty ring while `emitted`
    /// and `dropped` carry on from their saved values. The restored
    /// run's timeline therefore starts at the snapshot instant — see
    /// `docs/CHECKPOINT.md` for the full accounting of this exclusion.
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.bool(self.enabled);
        w.usize(self.capacity);
        w.u64(self.emitted);
        w.u64(self.dropped);
        w.usize(self.labels.len());
        for (comp, label) in &self.labels {
            comp.save(w);
            label.save(w);
        }
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let enabled = r.bool()?;
        let capacity = r.usize()?;
        if enabled && capacity == 0 {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "enabled telemetry sink with zero capacity".into(),
            ));
        }
        let emitted = r.u64()?;
        let dropped = r.u64()?;
        let n = r.seq_len()?;
        let mut labels = BTreeMap::new();
        for _ in 0..n {
            let comp = CompId::load(r)?;
            let label = String::load(r)?;
            labels.insert(comp, label);
        }
        Ok(Telemetry {
            enabled,
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            emitted,
            dropped,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_picos(ns * 1000)
    }

    fn d(ns: u64) -> SimDuration {
        SimDuration::from_picos(ns * 1000)
    }

    #[test]
    fn disabled_sink_is_inert_and_skips_closures() {
        let mut tel = Telemetry::disabled();
        let mut evaluated = false;
        tel.emit_with(|| {
            evaluated = true;
            Record {
                at: t(1),
                comp: CompId::MACHINE,
                name: "x",
                kind: RecordKind::Instant,
                req: None,
                arg: 0,
            }
        });
        tel.span(t(1), CompId::DMA, "dma", d(5), None, 64);
        tel.instant(t(2), CompId::ATM, "atm_read", None);
        tel.counter(t(3), CompId::MACHINE, "live", 9);
        assert!(!evaluated, "closure must not run when disabled");
        assert!(!tel.is_enabled());
        assert_eq!(tel.emitted(), 0);
        assert_eq!(tel.records().count(), 0);
        let report = tel.into_report();
        assert!(!report.enabled);
        assert!(report.records.is_empty());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut tel = Telemetry::new(3);
        for i in 0..5u64 {
            tel.instant(t(i), CompId::MACHINE, "tick", None);
        }
        assert_eq!(tel.emitted(), 5);
        assert_eq!(tel.dropped(), 2);
        let kept: Vec<u64> = tel.records().map(|r| r.at.as_picos() / 1000).collect();
        assert_eq!(kept, vec![2, 3, 4], "the tail survives");
        let report = tel.into_report();
        assert_eq!(report.dropped, 2);
        assert_eq!(report.emitted, 5);
        assert_eq!(report.records.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Telemetry::new(0);
    }

    #[test]
    fn sampler_cadence_and_rows() {
        let mut s = Sampler::new(d(100), vec!["a".into(), "b".into()]);
        assert!(!s.due(t(50)));
        assert!(s.due(t(100)));
        s.push_row(t(100), vec![1, 2]);
        assert!(!s.due(t(150)));
        assert!(s.due(t(230)));
        s.push_row(t(230), vec![3, 4]);
        // The next-due instant advanced past the pushed row.
        assert!(!s.due(t(290)));
        assert!(s.due(t(300)));
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.columns(), ["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn sampler_rejects_ragged_rows() {
        let mut s = Sampler::new(d(10), vec!["a".into()]);
        s.push_row(t(10), vec![1, 2]);
    }

    #[test]
    fn sampler_counts_missed_windows() {
        let mut s = Sampler::new(d(100), vec!["a".into()]);
        s.push_row(t(100), vec![1]);
        assert_eq!(s.missed(), 0, "on-cadence row misses nothing");
        // Window edges at 200 and 300 pass before the next row at 310;
        // the late row covers one elapsed window, the other is missed.
        s.push_row(t(310), vec![2]);
        assert_eq!(s.missed(), 1, "skipped window counted");
        // A run ending exactly on a window edge: the window that ends
        // at the horizon got no row — counted, not silently dropped.
        s.close(t(400));
        assert_eq!(s.missed(), 2, "horizon-edge window counted");
        // Idempotent for the same horizon.
        s.close(t(400));
        assert_eq!(s.missed(), 2);
        let report = Telemetry::new(8).into_report_with_samples(s);
        assert_eq!(report.samples_missed, 2);
        assert_eq!(report.samples.len(), 2);
    }

    fn sample_report() -> TelemetryReport {
        let mut tel = Telemetry::new(64);
        let acc = CompId::accelerator(0);
        tel.set_label(acc, "TCP#0");
        tel.set_label(CompId::DMA, "A-DMA");
        // Two overlapping DMA spans: must split onto two lanes.
        tel.span(t(0), CompId::DMA, "dma", d(100), Some(1), 2048);
        tel.span(t(50), CompId::DMA, "dma", d(100), Some(2), 1024);
        // A request chain: dma -> pe -> manager.
        tel.span(t(100), acc, "pe", d(40), Some(1), 0);
        tel.span(t(150), CompId::MANAGER, "manager", d(20), Some(1), 0);
        tel.instant(t(160), CompId::ATM, "atm_read", Some(1));
        tel.counter(t(200), CompId::MACHINE, "live", 2);
        let mut sampler = Sampler::new(d(100), vec!["util:TCP".into()]);
        sampler.push_row(t(100), vec![3]);
        sampler.push_row(t(200), vec![9]);
        tel.into_report_with_samples(sampler)
    }

    #[test]
    fn chrome_trace_is_valid_and_deterministic() {
        let report = sample_report();
        let a = report.chrome_trace();
        let b = report.chrome_trace();
        assert_eq!(a, b, "export must be byte-deterministic");
        let summary = validate_chrome_trace(&a).expect("schema-valid");
        assert_eq!(summary.spans, 4);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.flows, 3, "req 1 chains three spans");
        assert!(summary.metadata >= 4, "process + thread names");
        // Overlapping DMA spans landed on separate lanes.
        assert!(a.contains("A-DMA lane 1"), "{a}");
        // Labels propagate.
        assert!(a.contains("TCP#0"));
    }

    #[test]
    fn component_breakdown_aggregates_spans() {
        let report = sample_report();
        let rows = report.component_breakdown();
        assert_eq!(rows.len(), 3, "dma + accel + manager");
        assert_eq!(rows[0].label, "A-DMA", "busiest first");
        assert_eq!(rows[0].spans, 2);
        assert_eq!(rows[0].busy, d(200));
        let pe = rows.iter().find(|r| r.label == "TCP#0").unwrap();
        assert_eq!(pe.spans, 1);
        assert_eq!(pe.mean, d(40));
    }

    #[test]
    fn sparkline_scales_to_column_max() {
        let report = sample_report();
        let art = report.sparkline(0, &['.', ':', '#']);
        assert_eq!(art, ":#", "3/9 rounds to middle glyph, 9/9 to top");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err(), "no traceEvents");
        assert!(validate_chrome_trace("not json").is_err());
        let missing_ph = r#"{"traceEvents":[{"ts":1,"pid":0,"tid":1,"name":"x"}]}"#;
        assert!(validate_chrome_trace(missing_ph).is_err());
        let missing_ts = r#"{"traceEvents":[{"ph":"X","pid":0,"tid":1,"name":"x","dur":1}]}"#;
        assert!(validate_chrome_trace(missing_ts).is_err());
        let span_no_dur = r#"{"traceEvents":[{"ph":"X","ts":1,"pid":0,"tid":1,"name":"x"}]}"#;
        assert!(validate_chrome_trace(span_no_dur).is_err());
        let ok = r#"{"traceEvents":[{"ph":"X","ts":1.5,"pid":0,"tid":1,"name":"x","dur":2}]}"#;
        let s = validate_chrome_trace(ok).unwrap();
        assert_eq!(s.spans, 1);
    }

    #[test]
    fn micros_formatting_is_exact() {
        assert_eq!(micros(0), "0.000000");
        assert_eq!(micros(1), "0.000001");
        assert_eq!(micros(1_000_000), "1.000000");
        assert_eq!(micros(1_234_567), "1.234567");
        assert_eq!(micros(987_654_321_012), "987654.321012");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
        assert_eq!(escape_json("plain"), "plain");
    }
}
