//! Versioned checkpoint serialization for simulation state.
//!
//! Long runs and wide parameter sweeps re-simulate identical prefixes;
//! a checkpoint lets a run snapshot its full dynamic state and a later
//! process (or a forked sweep probe) resume byte-identically. This
//! module is the wire layer: a small hand-rolled binary format (the
//! build environment has no serde) with a [`Snapshot`] trait over the
//! state-bearing types, a length-checked [`SnapReader`], and a
//! versioned header carrying a configuration hash that
//! [`check_header`] refuses on mismatch — restoring state into a
//! machine built from a *different* configuration would silently
//! diverge, so it is an error, never a best-effort merge.
//!
//! Format rules (see `docs/CHECKPOINT.md` for the full contract):
//!
//! - All integers are little-endian and fixed-width; `usize` travels
//!   as `u64`; `f64` travels as its IEEE-754 bit pattern (exact
//!   round-trip, no text formatting).
//! - Sequences are a `u64` length followed by the elements.
//! - There is no self-description: reader and writer must agree on the
//!   layout, which is what [`SCHEMA_VERSION`] pins. Any layout change
//!   must bump it.

use std::collections::VecDeque;

/// Current layout version; bump on any wire-format change.
pub const SCHEMA_VERSION: u32 = 1;

/// Why a snapshot failed to load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the expected data.
    UnexpectedEof {
        /// Read position where the data ran out.
        at: usize,
    },
    /// The leading magic bytes did not match.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The snapshot was written by a different layout version.
    SchemaVersion {
        /// Version recorded in the snapshot.
        found: u32,
        /// Version this binary understands.
        expected: u32,
    },
    /// The snapshot was taken under a different configuration.
    ConfigHash {
        /// Hash recorded in the snapshot.
        found: u64,
        /// Hash of the configuration the restore target was built from.
        expected: u64,
    },
    /// A decoded value was structurally impossible (bad enum tag,
    /// non-UTF-8 string, inconsistent lengths).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnexpectedEof { at } => {
                write!(f, "snapshot truncated at byte {at}")
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot (magic {found:?})")
            }
            SnapshotError::SchemaVersion { found, expected } => {
                write!(f, "snapshot schema v{found}, this binary reads v{expected}")
            }
            SnapshotError::ConfigHash { found, expected } => {
                write!(
                    f,
                    "snapshot config hash {found:#018x} != restore target {expected:#018x}"
                )
            }
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only encoder producing the snapshot byte stream.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Consumes the writer into its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes with no length prefix (header fields).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked decoder over a snapshot byte stream.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current read position (for error reporting).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::UnexpectedEof { at: self.pos })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads a length that must be plausible for the remaining bytes —
    /// each sequence element occupies at least one byte, so a length
    /// beyond the remainder is corruption, caught *before* allocating.
    pub fn seq_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(SnapshotError::Corrupt(format!(
                "sequence of {n} elements with only {} bytes left",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads `n` raw bytes (header fields).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }
}

/// State that can round-trip through a snapshot byte stream.
///
/// `load` must reproduce a value observably identical to the one
/// `save` captured — the restore-equivalence tests pin the composed
/// machine-level guarantee (run-to-T, snapshot, restore, run-to-end is
/// byte-identical to a straight run).
pub trait Snapshot: Sized {
    /// Appends this value's state to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Reads a value back from `r`.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! prim_snapshot {
    ($t:ty, $w:ident, $r:ident) => {
        impl Snapshot for $t {
            fn save(&self, w: &mut SnapWriter) {
                w.$w(*self);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                r.$r()
            }
        }
    };
}

prim_snapshot!(u8, u8, u8);
prim_snapshot!(u16, u16, u16);
prim_snapshot!(u32, u32, u32);
prim_snapshot!(u64, u64, u64);
prim_snapshot!(usize, usize, usize);
prim_snapshot!(f64, f64, f64);
prim_snapshot!(bool, bool, bool);

impl Snapshot for String {
    fn save(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        r.str()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(SnapshotError::Corrupt(format!("Option tag {b}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for std::sync::Arc<T> {
    /// Serialized by content. Sharing is not preserved: two `Arc`s to
    /// the same allocation restore as two independent allocations.
    /// Checkpoint users only share immutable values (e.g. traces), so
    /// the duplicated copy is behaviorally identical.
    fn save(&self, w: &mut SnapWriter) {
        T::save(self, w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(std::sync::Arc::new(T::load(r)?))
    }
}

impl<T: Snapshot> Snapshot for Box<T> {
    fn save(&self, w: &mut SnapWriter) {
        T::save(self, w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Box::new(T::load(r)?))
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<T: Snapshot + Copy + Default, const N: usize> Snapshot for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::load(r)?;
        }
        Ok(out)
    }
}

impl Snapshot for crate::time::SimTime {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.as_picos());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::time::SimTime::from_picos(r.u64()?))
    }
}

impl Snapshot for crate::time::SimDuration {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.as_picos());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(crate::time::SimDuration::from_picos(r.u64()?))
    }
}

impl Snapshot for crate::stats::BusyTracker {
    fn save(&self, w: &mut SnapWriter) {
        self.busy().save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let mut t = crate::stats::BusyTracker::new();
        t.add_busy(crate::time::SimDuration::load(r)?);
        Ok(t)
    }
}

/// FNV-1a over `bytes` — the configuration-identity hash carried in
/// snapshot headers. Stable, dependency-free, and good enough to catch
/// a mismatched restore target (the guard is against *accidents*, not
/// adversaries).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes the versioned snapshot header: 4 magic bytes,
/// [`SCHEMA_VERSION`], and the configuration hash.
pub fn write_header(w: &mut SnapWriter, magic: [u8; 4], config_hash: u64) {
    w.raw(&magic);
    w.u32(SCHEMA_VERSION);
    w.u64(config_hash);
}

/// Checks a snapshot header against the expected magic and the restore
/// target's configuration hash, refusing version or config mismatches.
pub fn check_header(
    r: &mut SnapReader<'_>,
    magic: [u8; 4],
    expected_config_hash: u64,
) -> Result<(), SnapshotError> {
    let found: [u8; 4] = r.raw(4)?.try_into().expect("len 4");
    if found != magic {
        return Err(SnapshotError::BadMagic { found });
    }
    let version = r.u32()?;
    if version != SCHEMA_VERSION {
        return Err(SnapshotError::SchemaVersion {
            found: version,
            expected: SCHEMA_VERSION,
        });
    }
    let hash = r.u64()?;
    if hash != expected_config_hash {
        return Err(SnapshotError::ConfigHash {
            found: hash,
            expected: expected_config_hash,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.usize(usize::MAX);
        w.f64(-0.1);
        w.bool(true);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), usize::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn containers_round_trip() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].save(&mut w);
        Option::<u32>::None.save(&mut w);
        Some(9u8).save(&mut w);
        VecDeque::from([4u16, 5]).save(&mut w);
        (1u8, 2u64).save(&mut w);
        [7u32; 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u64>::load(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<u32>::load(&mut r).unwrap(), None);
        assert_eq!(Option::<u8>::load(&mut r).unwrap(), Some(9));
        assert_eq!(VecDeque::<u16>::load(&mut r).unwrap(), VecDeque::from([4, 5]));
        assert_eq!(<(u8, u64)>::load(&mut r).unwrap(), (1, 2));
        assert_eq!(<[u32; 3]>::load(&mut r).unwrap(), [7; 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        assert!(matches!(
            r.u64(),
            Err(SnapshotError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn absurd_sequence_length_is_rejected_before_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Vec::<u8>::load(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn header_guards_magic_version_and_config() {
        let mut w = SnapWriter::new();
        write_header(&mut w, *b"AFSN", 0xABCD);
        let good = w.into_bytes();
        assert!(check_header(&mut SnapReader::new(&good), *b"AFSN", 0xABCD).is_ok());
        assert!(matches!(
            check_header(&mut SnapReader::new(&good), *b"XXXX", 0xABCD),
            Err(SnapshotError::BadMagic { .. })
        ));
        assert!(matches!(
            check_header(&mut SnapReader::new(&good), *b"AFSN", 0x1234),
            Err(SnapshotError::ConfigHash { .. })
        ));
        // Corrupt the version field in place.
        let mut stale = good.clone();
        stale[4] = 0xFF;
        assert!(matches!(
            check_header(&mut SnapReader::new(&stale), *b"AFSN", 0xABCD),
            Err(SnapshotError::SchemaVersion { .. })
        ));
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"accelflow"), fnv1a(b"accelflow"));
    }
}
