//! A calendar (bucket) queue: the engine's pending-event set.
//!
//! A classic binary heap pays `O(log n)` per operation with poor cache
//! behavior — every sift walks pointer-distant nodes, and the cost
//! grows with the pending-event population. A calendar queue exploits
//! what an event-driven simulator actually does: almost every event is
//! scheduled a short, bounded horizon ahead of the current time, and
//! time only moves forward. It hashes events by timestamp into a ring
//! of time-width buckets ("days" on a calendar) and pops by scanning
//! the ring from the current day, giving `O(1)` amortized schedule and
//! pop regardless of population (Brown, CACM 1988).
//!
//! This implementation keeps the engine's delivery contract exactly:
//! events are delivered in `(time, insertion sequence)` order, so runs
//! are bit-for-bit reproducible and the golden event-hash tests hold
//! across the heap → calendar swap.
//!
//! Layout:
//!
//! - **Bucket ring** — `2^k` buckets, each `2^shift` picoseconds wide.
//!   An event at time `t` has *virtual bucket* `vb = t >> shift` and
//!   lives in ring slot `vb & (2^k - 1)`, kept sorted ascending by
//!   `(time, seq)`. The ring covers the window `[cursor, cursor + 2^k)`
//!   of virtual buckets, where `cursor` is the virtual bucket of the
//!   last event popped. Because time never runs backwards and the
//!   window only slides forward, every stored event's virtual bucket
//!   lies inside the window — a nonempty slot holds events of exactly
//!   one virtual bucket, so the first nonempty slot in ring order from
//!   the cursor holds the global minimum.
//! - **Overflow level** — events beyond the window land in a min-heap
//!   keyed on `(time, seq)`. When the window slides over the heap
//!   minimum, in-window events migrate into the ring by popping the
//!   heap — `O(log overflow)` per migrated event and, crucially, *no
//!   scan of the rest*: a population whose horizon dwarfs the ring
//!   window (a saturated machine backlogging far-future completions)
//!   degrades to plain heap behavior instead of rescanning the spill
//!   on every window advance.
//! - **Occupancy bitset** — one bit per ring slot; the pop-side scan
//!   skips empty days a word (64 slots) at a time.
//! - **Adaptive rebuild** — when the population outgrows the ring, the
//!   queue re-derives `shift` from the observed spacing of pending
//!   events and re-hashes everything. The same machinery runs in
//!   reverse: when the population falls to a quarter of the ring size,
//!   a pop-side rebuild downsizes the ring and releases every slot's
//!   retained capacity, so a burst's high-water mark does not pin the
//!   queue's footprint for the rest of the run.

/// One pending event: absolute timestamp in picoseconds, the insertion
/// sequence number that breaks timestamp ties FIFO, and the payload.
#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub at: u64,
    pub seq: u64,
    pub event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// Overflow-heap wrapper ordering [`Entry`]s as a *min*-heap on
/// `(at, seq)` (the payload never participates in ordering).
#[derive(Debug)]
struct Spill<E>(Entry<E>);

impl<E> PartialEq for Spill<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for Spill<E> {}
impl<E> PartialOrd for Spill<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Spill<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, so the peek is the min.
        other.0.key().cmp(&self.0.key())
    }
}

/// Initial bucket width of 2^16 ps ≈ 66 ns, a good fit for the
/// nanosecond-scale dispatch gaps the machine model produces; the first
/// rebuild re-derives it from the live event spacing anyway.
const INITIAL_SHIFT: u32 = 16;
/// Ring sizes stay in this range: small enough that the occupancy
/// bitset scan stays cheap, large enough to keep slot occupancy near
/// one event.
const MIN_BUCKETS: usize = 64;
const MAX_BUCKETS: usize = 1 << 14;

/// A monotonic-time calendar queue delivering in `(time, seq)` order.
///
/// The caller owns the clock: timestamps passed to
/// [`CalendarQueue::schedule`] must never be less than the timestamp of
/// the last popped event (the engine's `EventQueue` enforces this by
/// clamping past-time schedules to *now*), and `seq` must be strictly
/// increasing across calls.
#[derive(Debug)]
pub(crate) struct CalendarQueue<E> {
    /// Ring of days; each slot sorted ascending by `(at, seq)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// `buckets.len() - 1`; the ring size is a power of two.
    mask: usize,
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// One bit per ring slot: set while the slot is nonempty.
    occupied: Vec<u64>,
    /// Virtual bucket (`at >> shift`) of the last popped event.
    cursor: u64,
    /// Events currently stored in the ring.
    in_ring: usize,
    /// Events beyond the ring window: a min-heap on `(at, seq)`.
    overflow: std::collections::BinaryHeap<Spill<E>>,
    /// Timestamp of the last popped event (rebuild re-anchors on it).
    last_popped: u64,
    /// Population high-water mark that triggers a growth rebuild.
    rebuild_at: usize,
    /// Population low-water mark that triggers a shrink rebuild (0 when
    /// the ring is already at its minimum size). Without it the ring —
    /// and every slot `Vec`'s retained capacity — would only ever grow,
    /// so one population spike would pin the queue's footprint at its
    /// high-water mark for the rest of the run.
    shrink_at: usize,
    /// Cached pop candidate: ring slot of the current minimum, with its
    /// timestamp for cheap invalidation on schedule.
    candidate: Option<(u64, usize)>,
    /// Front cache: when `Some`, this entry's `(at, seq)` is strictly
    /// below every key in the ring and the overflow heap, so it is the
    /// next event out. An event scheduled into an otherwise-empty queue
    /// parks here and is popped straight back out without ever touching
    /// the ring — the schedule-then-pop churn pattern of a model whose
    /// pending population hovers near one (a self-rescheduling timer, a
    /// machine draining its last request) costs an `Option` write and a
    /// take instead of bucket hashing, occupancy bookkeeping, and the
    /// candidate scan.
    front: Option<Entry<E>>,
}

impl<E> CalendarQueue<E> {
    #[cfg(test)]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut q = CalendarQueue {
            buckets: Vec::new(),
            mask: 0,
            shift: INITIAL_SHIFT,
            occupied: Vec::new(),
            cursor: 0,
            in_ring: 0,
            overflow: std::collections::BinaryHeap::new(),
            last_popped: 0,
            rebuild_at: 0,
            shrink_at: 0,
            candidate: None,
            front: None,
        };
        q.init_ring(n, INITIAL_SHIFT, 0);
        q
    }

    fn init_ring(&mut self, n: usize, shift: u32, cursor: u64) {
        debug_assert!(n.is_power_of_two());
        self.buckets = (0..n).map(|_| Vec::new()).collect();
        self.mask = n - 1;
        self.shift = shift;
        self.occupied = vec![0u64; n.div_ceil(64)];
        self.cursor = cursor;
        self.in_ring = 0;
        self.rebuild_at = n * 4;
        // Shrink when the population falls to a quarter of the ring
        // size; with growth at 4× the ring size the two thresholds
        // leave a 16× hysteresis band, so a population oscillating
        // around either edge cannot thrash rebuilds.
        self.shrink_at = if n > MIN_BUCKETS { n / 4 } else { 0 };
        self.candidate = None;
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.front.is_some() as usize + self.in_ring + self.overflow.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring size in buckets (footprint diagnostics / shrink tests).
    #[cfg(test)]
    pub fn ring_size(&self) -> usize {
        self.buckets.len()
    }

    /// `(at, seq)` of the earliest overflow event, if any.
    #[inline]
    fn overflow_min(&self) -> Option<(u64, u64)> {
        self.overflow.peek().map(|s| s.0.key())
    }

    /// Inserts an event. `at` is absolute picoseconds (≥ the last
    /// popped timestamp); `seq` breaks ties FIFO and must be strictly
    /// increasing across calls.
    pub fn schedule(&mut self, at: u64, seq: u64, event: E) {
        debug_assert!(at >= self.last_popped, "scheduled before the last pop");
        match &self.front {
            // Empty queue: the sole event parks in the front cache.
            None if self.in_ring == 0 && self.overflow.is_empty() => {
                self.front = Some(Entry { at, seq, event });
                return;
            }
            // The front cache holds the strict minimum. A yet-smaller
            // event takes the cache over and the old front demotes to
            // the ring (its timestamp is still ≥ `last_popped`: the
            // front was the global minimum the whole time it was
            // cached, so no pop can have advanced the clock past it).
            Some(f) if (at, seq) < f.key() => {
                let prev = self
                    .front
                    .replace(Entry { at, seq, event })
                    .expect("front checked Some");
                self.schedule_inner(prev);
                return;
            }
            _ => {}
        }
        self.schedule_inner(Entry { at, seq, event });
    }

    /// [`CalendarQueue::schedule`]'s slow half: routes an entry into
    /// the ring or the overflow heap, maintaining the candidate cache.
    fn schedule_inner(&mut self, entry: Entry<E>) {
        let Entry { at, seq, event } = entry;
        if self.in_ring + self.overflow.len() + 1 > self.rebuild_at {
            self.rebuild(self.in_ring + self.overflow.len() + 1);
        }
        let vb = at >> self.shift;
        if vb < self.cursor + (self.mask as u64 + 1) {
            // In-window: keep the pop candidate warm. A valid candidate
            // is the global minimum (overflow events sit beyond the
            // window, strictly after every in-window timestamp), so a
            // smaller in-window timestamp *is* the new minimum and can
            // take the cache over directly instead of invalidating it;
            // and when the queue was empty the sole event is trivially
            // the minimum. Both cases save the pop-side bitset re-scan —
            // the dominant cost of the schedule-then-pop churn pattern
            // that keeps the population near one.
            let idx = (vb as usize) & self.mask;
            match self.candidate {
                // Equal timestamps lose on seq: the cache stays valid.
                Some((cand_at, _)) if at >= cand_at => {}
                Some(_) => self.candidate = Some((at, idx)),
                None if self.in_ring == 0 && self.overflow.is_empty() => {
                    self.candidate = Some((at, idx));
                }
                // Unknown minimum stays unknown; the next pop re-scans.
                None => {}
            }
            self.insert_ring(Entry { at, seq, event });
        } else {
            self.overflow.push(Spill(Entry { at, seq, event }));
        }
    }

    #[inline]
    fn insert_ring(&mut self, entry: Entry<E>) {
        let idx = ((entry.at >> self.shift) as usize) & self.mask;
        let slot = &mut self.buckets[idx];
        // Ascending `(at, seq)`; events usually arrive in roughly
        // increasing time order, so the common case is a plain append.
        if slot.last().is_none_or(|tail| tail.key() < entry.key()) {
            slot.push(entry);
        } else {
            let mut i = slot.len() - 1;
            while i > 0 && slot[i - 1].key() > entry.key() {
                i -= 1;
            }
            slot.insert(i, entry);
        }
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
        self.in_ring += 1;
    }

    /// Timestamp of the next event, if any.
    ///
    /// Unlike the pop path this never moves the cursor: the caller may
    /// schedule new (earlier, but still ≥ *now*) events between a peek
    /// and the next pop, and a peek-time window jump would strand those
    /// behind the cursor.
    #[inline]
    pub fn peek_at(&mut self) -> Option<u64> {
        if let Some(f) = &self.front {
            return Some(f.at);
        }
        loop {
            if let Some((at, _)) = self.candidate {
                return Some(at);
            }
            if self.in_ring == 0 {
                let (min_at, _) = self.overflow_min()?;
                if min_at >> self.shift < self.cursor + (self.mask as u64 + 1) {
                    self.migrate();
                    continue;
                }
                // Beyond the window: report it without jumping.
                return Some(min_at);
            }
            return self.refresh_in_ring().map(|(at, _)| at);
        }
    }

    /// Pops the minimum event.
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        if let Some(f) = self.take_cached_front() {
            return Some((f.at, f.seq, f.event));
        }
        let (_, idx) = self.refresh()?;
        let entry = self.take_front(idx);
        Some((entry.at, entry.seq, entry.event))
    }

    /// Takes the front cache, re-anchoring the clock on it. The cached
    /// entry is the strict global minimum, so popping it is legal from
    /// any state; the window only ever moves forward because the front
    /// was scheduled at or after the last popped instant (and its
    /// virtual bucket is ≤ every stored event's, so nothing is
    /// stranded behind the cursor).
    #[inline]
    fn take_cached_front(&mut self) -> Option<Entry<E>> {
        let f = self.front.take()?;
        self.cursor = f.at >> self.shift;
        self.last_popped = f.at;
        Some(f)
    }

    /// After a front-cache pop at `at`, drains every remaining event
    /// with the same timestamp into `out` in seq order. Ring ties are
    /// the sorted prefix of the cursor's slot; overflow ties exist when
    /// they were scheduled while the window sat further back than the
    /// front pop just slid it (the front pop migrates nothing), and
    /// their seqs interleave with the ring run, so a merged batch is
    /// re-sorted. Cold by construction: ties behind a cached front are
    /// rare, and the empty-queue churn path never gets here.
    fn stage_ties(&mut self, at: u64, out: &mut std::collections::VecDeque<(u64, E)>) {
        let start = out.len();
        if self.in_ring != 0 {
            let idx = ((at >> self.shift) as usize) & self.mask;
            let slot = &mut self.buckets[idx];
            if slot.first().is_some_and(|e| e.at == at) {
                let run = slot.iter().take_while(|e| e.at == at).count();
                out.extend(slot.drain(..run).map(|e| (e.seq, e.event)));
                self.in_ring -= run;
                if slot.is_empty() {
                    self.occupied[idx / 64] &= !(1u64 << (idx % 64));
                }
                // The drained run was the remaining minimum; whatever
                // follows needs a full refresh (stale in-window overflow
                // may undercut this slot's next entry).
                self.candidate = None;
            }
        }
        let ring_ties = out.len() > start;
        let mut merged = false;
        while self.overflow_min().is_some_and(|(m, _)| m == at) {
            let Spill(e) = self.overflow.pop().expect("peeked nonempty");
            out.push_back((e.seq, e.event));
            merged = ring_ties;
        }
        if merged {
            // Ring and overflow ties carry interleaved seqs.
            out.make_contiguous()[start..].sort_unstable_by_key(|&(seq, _)| seq);
        }
    }

    /// Pops the minimum event and stages the *rest* of its
    /// same-timestamp run (if any) into `out` as `(seq, event)` pairs in
    /// delivery order. Ties in time always hash to the same ring slot,
    /// so the run is one contiguous prefix of one slot and drains in a
    /// single pass; the common single-event case never touches `out`.
    pub fn pop_batch(
        &mut self,
        out: &mut std::collections::VecDeque<(u64, E)>,
    ) -> Option<(u64, E)> {
        // The front cache short-circuits the whole ring machinery. Any
        // ring or overflow events tying its timestamp (higher seq, or
        // they would be the front) must still come out as part of the
        // batch: the engine's same-instant fast lane relies on the
        // queue never holding an event at the delivered instant once a
        // batch is extracted. The empty-queue churn case skips all of
        // it.
        if let Some(f) = self.take_cached_front() {
            if self.in_ring != 0 || !self.overflow.is_empty() {
                self.stage_ties(f.at, out);
            }
            return Some((f.at, f.event));
        }
        let (at, idx) = self.refresh()?;
        let first = self.take_front(idx);
        debug_assert_eq!(first.at, at);
        if self.candidate == Some((at, idx)) {
            // The slot still leads with the same instant: drain the run.
            let slot = &mut self.buckets[idx];
            let run = slot.iter().take_while(|e| e.at == at).count();
            out.extend(slot.drain(..run).map(|e| (e.seq, e.event)));
            self.in_ring -= run;
            self.set_candidate_from_slot(idx);
        }
        Some((at, first.event))
    }

    /// Removes and returns the front (minimum) event of ring slot
    /// `idx`, maintaining the occupancy bit, cursor, and counters.
    #[inline]
    fn take_front(&mut self, idx: usize) -> Entry<E> {
        let entry = self.buckets[idx].remove(0);
        self.in_ring -= 1;
        self.cursor = entry.at >> self.shift;
        self.last_popped = entry.at;
        self.set_candidate_from_slot(idx);
        entry
    }

    /// Re-derives the cached candidate after slot `idx` lost its front,
    /// clearing the occupancy bit when the slot emptied.
    ///
    /// A nonempty slot's new front is the global ring minimum: the slot
    /// holds only the just-popped virtual bucket (anything a full window
    /// later could never have been inserted), every other slot's bucket
    /// is strictly later, and overflow events sit beyond the window —
    /// the cursor only advances through `refresh`, which migrates any
    /// overflow that slid into the window first.
    #[inline]
    fn set_candidate_from_slot(&mut self, idx: usize) {
        match self.buckets[idx].first() {
            Some(next) => {
                debug_assert!(self.overflow_min().is_none_or(|(m, _)| next.at <= m));
                self.candidate = Some((next.at, idx));
            }
            None => {
                self.occupied[idx / 64] &= !(1u64 << (idx % 64));
                self.candidate = None;
            }
        }
    }

    /// Ensures the cached candidate points at the global minimum,
    /// migrating overflow events that have entered the window and
    /// sliding the window over empty stretches.
    ///
    /// Pop-side only: the window jump it performs over an empty ring is
    /// legal only because the caller pops (and so re-anchors the cursor
    /// on the popped timestamp) before control returns to the model.
    fn refresh(&mut self) -> Option<(u64, usize)> {
        if let Some(c) = self.candidate {
            return Some(c);
        }
        // Already on the slow path (no cached candidate), so the
        // low-water check costs two compares; a shrink rebuild here
        // frees the over-sized ring and every slot's retained capacity.
        // Pop-side only: rebuild re-anchors the cursor, which the peek
        // path must never do.
        let pop = self.in_ring + self.overflow.len();
        if pop < self.shrink_at {
            self.rebuild(pop.max(1));
        }
        loop {
            if self.in_ring == 0 {
                let (min_at, _) = self.overflow_min()?;
                // Jump the window to the first overflow event, then
                // migrate everything that now fits.
                self.cursor = min_at >> self.shift;
                self.migrate();
                continue;
            }
            return self.refresh_in_ring();
        }
    }

    /// Candidate refresh when the ring is known nonempty: migrate any
    /// overflow events that slid into the window, then scan.
    fn refresh_in_ring(&mut self) -> Option<(u64, usize)> {
        if let Some((min_at, _)) = self.overflow_min() {
            if min_at >> self.shift < self.cursor + (self.mask as u64 + 1) {
                self.migrate();
            }
        }
        let idx = self.scan_from_cursor();
        let at = self.buckets[idx][0].at;
        self.candidate = Some((at, idx));
        Some((at, idx))
    }

    /// First nonempty ring slot in ring order from the cursor's slot.
    /// Ring order from the cursor is increasing virtual-bucket (and so
    /// increasing time) order, and every stored event's virtual bucket
    /// is inside the window, so this is the slot of the global minimum.
    /// Caller guarantees `in_ring > 0`.
    #[inline]
    fn scan_from_cursor(&self) -> usize {
        let start = (self.cursor as usize) & self.mask;
        let words = self.occupied.len();
        let mut word = start / 64;
        // Mask off slots before the cursor in its word.
        let mut bits = self.occupied[word] & !0u64 << (start % 64);
        for _ in 0..=words {
            if bits != 0 {
                let idx = word * 64 + bits.trailing_zeros() as usize;
                if idx <= self.mask {
                    return idx;
                }
            }
            word = (word + 1) % words;
            bits = self.occupied[word];
        }
        unreachable!("scan_from_cursor called on an empty ring");
    }

    /// Moves every overflow event whose virtual bucket fits the current
    /// window into the ring. The heap yields them in ascending `(at,
    /// seq)` order, so the first out-of-window peek ends the migration —
    /// cost is `O(log overflow)` per migrated event, independent of how
    /// many events remain spilled.
    fn migrate(&mut self) {
        let horizon = self.cursor + (self.mask as u64 + 1);
        while let Some(top) = self.overflow.peek() {
            if top.0.at >> self.shift >= horizon {
                break;
            }
            let Spill(entry) = self.overflow.pop().expect("peeked nonempty");
            self.insert_ring(entry);
        }
    }

    /// Re-anchors an **empty** queue's window and clock at `at`. Bulk
    /// drains (the engine's outer-kernel adapter) pop events sitting
    /// arbitrarily far in the future, dragging `last_popped` and the
    /// cursor out to the drained horizon; once nothing is stored those
    /// anchors are meaningless, and leaving them there would reject —
    /// or worse, strand behind the window — the caller's next schedule
    /// at the *real* current time.
    pub(crate) fn reanchor(&mut self, at: u64) {
        debug_assert!(self.is_empty(), "reanchor requires an empty queue");
        self.cursor = at >> self.shift;
        self.last_popped = at;
        self.candidate = None;
    }

    /// Re-hashes every pending event into a ring resized for the
    /// population, with the bucket width re-derived from the observed
    /// event spacing.
    fn rebuild(&mut self, target_len: usize) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len());
        for slot in &mut self.buckets {
            all.append(slot);
        }
        all.extend(std::mem::take(&mut self.overflow).into_iter().map(|s| s.0));

        let n = target_len
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let shift = if all.len() >= 2 {
            // Width ≈ spacing of the densest three quarters of pending
            // events, so one far-future outlier (e.g. a drain deadline)
            // cannot blow the bucket width up. Floor: the ring must
            // still span that dense range, or populations past the
            // maximum ring size would thrash straight back to overflow.
            let k = all.len() * 3 / 4;
            let k = k.clamp(1, all.len() - 1);
            let (lo, kth, _) = all.select_nth_unstable_by_key(k, |e| e.at);
            let min_at = lo.iter().map(|e| e.at).min().unwrap_or(kth.at).min(kth.at);
            let near_span = kth.at - min_at;
            let gap = (near_span / k as u64).max(1);
            let gap_shift = 63 - gap.leading_zeros();
            let cover_shift = 64 - (near_span.max(1) / n as u64).leading_zeros();
            gap_shift.max(cover_shift).min(46)
        } else {
            self.shift
        };
        // Anchor on the last popped instant — the one timestamp no
        // pending or future event may precede.
        let cursor = self.last_popped >> shift;
        self.init_ring(n, shift, cursor);
        // Above-window events fall back into overflow naturally.
        let horizon = self.cursor + (self.mask as u64 + 1);
        for entry in all {
            if entry.at >> shift < horizon {
                self.insert_ring(entry);
            } else {
                self.overflow.push(Spill(entry));
            }
        }
        self.rebuild_at = (self.len() * 2).max(n * 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn delivers_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.schedule(500, 0, 1);
        q.schedule(100, 1, 2);
        q.schedule(500, 2, 3);
        q.schedule(100, 3, 4);
        assert_eq!(q.len(), 4);
        assert_eq!(
            drain(&mut q),
            vec![(100, 1, 2), (100, 3, 4), (500, 0, 1), (500, 2, 3)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = CalendarQueue::with_capacity(64);
        // Far beyond the initial 64-bucket × 2^16 ps window.
        let far = 1u64 << 40;
        q.schedule(far, 0, 1);
        q.schedule(10, 1, 2);
        q.schedule(far + 1, 2, 3);
        assert_eq!(q.peek_at(), Some(10));
        assert_eq!(
            drain(&mut q),
            vec![(10, 1, 2), (far, 0, 1), (far + 1, 2, 3)]
        );
    }

    #[test]
    fn same_timestamp_runs_pop_in_one_batch() {
        let mut q = CalendarQueue::new();
        for seq in 0..5u64 {
            q.schedule(777, seq, seq as u32);
        }
        q.schedule(9999, 5, 99);
        let mut out = std::collections::VecDeque::new();
        assert_eq!(q.pop_batch(&mut out), Some((777, 0)));
        let staged: Vec<_> = out.iter().map(|&(s, e)| (s, e)).collect();
        assert_eq!(staged, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(q.len(), 1);
        // A lone event stages nothing.
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some((9999, 99)));
        assert!(out.is_empty());
    }

    #[test]
    fn rebuild_preserves_order_under_growth() {
        let mut q = CalendarQueue::with_capacity(64);
        // Enough events to force at least one growth rebuild.
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for seq in 0..2000u64 {
            let at = (seq * 7919) % 100_000;
            q.schedule(at, seq, seq as u32);
            expect.push((at, seq));
        }
        expect.sort();
        let got: Vec<(u64, u64)> = drain(&mut q).into_iter().map(|(a, s, _)| (a, s)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn ring_shrinks_after_population_drains() {
        let mut q = CalendarQueue::with_capacity(64);
        // Grow the ring with a dense burst...
        for seq in 0..20_000u64 {
            q.schedule((seq * 131) % 2_000_000, seq, seq as u32);
        }
        let grown = q.ring_size();
        assert!(grown > 64, "burst should have grown the ring");
        // ...drain it down to a trickle, and keep popping: the
        // low-water rebuild must kick in and downsize the ring.
        let mut last = 0;
        for _ in 0..19_990 {
            let (at, _, _) = q.pop().expect("still populated");
            assert!(at >= last);
            last = at;
        }
        // Pops only shrink on the candidate-miss slow path; a few
        // schedule/pop rounds at the tail guarantee one.
        for seq in 20_000..20_020u64 {
            q.schedule(last + (seq - 20_000) * 3, seq, seq as u32);
            let (at, _, _) = q.pop().expect("nonempty");
            last = at;
        }
        assert!(
            q.ring_size() < grown,
            "ring stayed at {} buckets with ~10 events pending",
            q.ring_size()
        );
        // Order still holds through the shrink.
        let rest = drain(&mut q);
        assert!(rest.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }

    #[test]
    fn idle_queue_reanchors_after_long_gap() {
        let mut q = CalendarQueue::new();
        q.schedule(50, 0, 1);
        assert_eq!(q.pop(), Some((50, 0, 1)));
        // Next event eons later: must not strand the window.
        let late = 1u64 << 50;
        q.schedule(late, 1, 2);
        assert_eq!(q.pop(), Some((late, 1, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_stays_sorted() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut last = 0u64;
        let mut sched = |q: &mut CalendarQueue<u32>, at: u64| {
            let s = seq;
            seq += 1;
            q.schedule(at, s, s as u32);
        };
        sched(&mut q, 10);
        sched(&mut q, 20);
        for round in 0..1000u64 {
            let (at, _, _) = q.pop().expect("nonempty");
            assert!(at >= last, "time went backwards");
            last = at;
            sched(&mut q, at + 3 + (round % 11) * 97);
        }
    }
}
