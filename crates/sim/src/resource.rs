//! Helpers for modeling pools of identical servers.
//!
//! Many structures in the machine model are "k identical servers with
//! FIFO overflow": the 10 A-DMA engines, the 8 PEs of an accelerator,
//! the 36 CPU cores, the centralized RELIEF manager (k = 1). The
//! [`ServerPool`] books work onto the earliest-available server and
//! returns the scheduled start/finish instants, accumulating busy time
//! for utilization reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::stats::BusyTracker;
use crate::time::{SimDuration, SimTime};

/// A booking made on a [`ServerPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Booking {
    /// When the work begins (>= the request time).
    pub start: SimTime,
    /// When the work completes.
    pub finish: SimTime,
}

impl Booking {
    /// Time spent waiting for a free server.
    pub fn queueing(&self, requested: SimTime) -> SimDuration {
        self.start.saturating_since(requested)
    }
}

/// `k` identical servers with an implicit FIFO queue.
///
/// `acquire` books a job of a given service time on the server that
/// frees up earliest. This is the classic event-calculus shortcut for
/// M/G/k stations whose queueing discipline does not reorder jobs: the
/// pool tracks only each server's next-free instant.
///
/// # Example
///
/// ```
/// use accelflow_sim::resource::ServerPool;
/// use accelflow_sim::time::{SimDuration, SimTime};
///
/// let mut dma = ServerPool::new(2);
/// let t0 = SimTime::ZERO;
/// let d = SimDuration::from_nanos(100);
/// let a = dma.acquire(t0, d);
/// let b = dma.acquire(t0, d);
/// let c = dma.acquire(t0, d); // must wait for a server
/// assert_eq!(a.start, t0);
/// assert_eq!(b.start, t0);
/// assert_eq!(c.start, t0 + d);
/// ```
#[derive(Clone, Debug)]
pub struct ServerPool {
    /// Next-free instant per server. A min-heap: `acquire` is O(log k)
    /// regardless of where the new finish time lands. (A sorted-array
    /// variant with an O(k) slide-down pass was tried and measurably
    /// regressed fig14-shape throughput on the 36-core CPU pool, where
    /// most bookings finish last and slide the whole array.)
    free_at: BinaryHeap<Reverse<SimTime>>,
    busy: BusyTracker,
    jobs: u64,
}

impl ServerPool {
    /// Creates a pool of `servers` identical servers, all free at time
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "server pool must have at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        ServerPool {
            free_at,
            busy: BusyTracker::new(),
            jobs: 0,
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Books a job requested at `now` with service time `service`,
    /// returning its start/finish instants. The job starts when the
    /// earliest server frees up (or immediately if one is idle).
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Booking {
        let Reverse(free) = self.free_at.pop().expect("pool is never empty");
        let start = free.max(now);
        let finish = start + service;
        self.free_at.push(Reverse(finish));
        self.busy.add_busy(service);
        self.jobs += 1;
        Booking { start, finish }
    }

    /// The earliest instant at which a server is (or becomes) free.
    pub fn earliest_free(&self) -> SimTime {
        self.free_at.peek().expect("pool is never empty").0
    }

    /// Whether a server is idle at `now`.
    pub fn has_idle(&self, now: SimTime) -> bool {
        self.earliest_free() <= now
    }

    /// Number of servers busy at `now`.
    pub fn busy_at(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|Reverse(t)| *t > now).count()
    }

    /// Total jobs booked so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Aggregate utilization over `[0, now]`, averaged across servers.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let window = now.as_picos() as f64 * self.servers() as f64;
        if window == 0.0 {
            0.0
        } else {
            (self.busy.busy().as_picos() as f64 / window).min(1.0)
        }
    }
}

impl crate::snapshot::Snapshot for ServerPool {
    /// Serializes a *sorted* next-free multiset: heap iteration order
    /// is unspecified, and equal-time servers are interchangeable, so
    /// sorting makes the bytes canonical without changing observable
    /// behavior.
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        let mut free: Vec<SimTime> = self.free_at.iter().map(|Reverse(t)| *t).collect();
        free.sort_unstable();
        free.save(w);
        self.busy.save(w);
        w.u64(self.jobs);
    }
    fn load(
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let free = Vec::<SimTime>::load(r)?;
        if free.is_empty() {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "empty server pool".into(),
            ));
        }
        let busy = crate::stats::BusyTracker::load(r)?;
        let jobs = r.u64()?;
        Ok(ServerPool {
            free_at: free.into_iter().map(Reverse).collect(),
            busy,
            jobs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_queue_fifo_across_servers() {
        let mut pool = ServerPool::new(2);
        let d = SimDuration::from_nanos(10);
        let t0 = SimTime::ZERO;
        let b1 = pool.acquire(t0, d);
        let b2 = pool.acquire(t0, d);
        let b3 = pool.acquire(t0, d);
        let b4 = pool.acquire(t0, d);
        assert_eq!(b1.start, t0);
        assert_eq!(b2.start, t0);
        assert_eq!(b3.start, t0 + d);
        assert_eq!(b4.start, t0 + d);
        assert_eq!(b4.finish, t0 + d * 2);
        assert_eq!(b3.queueing(t0), d);
        assert_eq!(pool.jobs(), 4);
    }

    #[test]
    fn idle_servers_start_immediately() {
        let mut pool = ServerPool::new(1);
        let d = SimDuration::from_nanos(10);
        let b1 = pool.acquire(SimTime::ZERO, d);
        // Request long after the first finishes: no queueing.
        let late = SimTime::from_picos(1_000_000);
        let b2 = pool.acquire(late, d);
        assert_eq!(b1.finish, SimTime::ZERO + d);
        assert_eq!(b2.start, late);
        assert_eq!(b2.queueing(late), SimDuration::ZERO);
    }

    #[test]
    fn busy_accounting() {
        let mut pool = ServerPool::new(4);
        let d = SimDuration::from_micros(1);
        for _ in 0..4 {
            pool.acquire(SimTime::ZERO, d);
        }
        let now = SimTime::ZERO + SimDuration::from_micros(2);
        // 4 us of busy across 4 servers over a 2 us window = 50%.
        assert!((pool.utilization(now) - 0.5).abs() < 1e-9);
        assert_eq!(
            pool.busy_at(SimTime::ZERO + SimDuration::from_nanos(500)),
            4
        );
        assert_eq!(pool.busy_at(now), 0);
    }

    #[test]
    fn earliest_free_and_idle() {
        let mut pool = ServerPool::new(2);
        assert!(pool.has_idle(SimTime::ZERO));
        let d = SimDuration::from_nanos(100);
        pool.acquire(SimTime::ZERO, d);
        assert!(pool.has_idle(SimTime::ZERO)); // second server idle
        pool.acquire(SimTime::ZERO, d);
        assert!(!pool.has_idle(SimTime::ZERO));
        assert_eq!(pool.earliest_free(), SimTime::ZERO + d);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = ServerPool::new(0);
    }
}
