//! Simulated time with picosecond resolution.
//!
//! All simulated quantities are integers (picoseconds), so arithmetic is
//! exact and runs are reproducible regardless of evaluation order. One
//! CPU cycle at the paper's 2.4 GHz is ~417 ps, so the rounding error of
//! a cycle→duration conversion is below 0.1% and does not accumulate
//! (conversions always start from a cycle count, never chain).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in picoseconds since the start
/// of the simulation.
///
/// `SimTime` is ordered and copyable; subtracting two instants yields a
/// [`SimDuration`].
///
/// # Example
///
/// ```
/// use accelflow_sim::time::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(3);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(3000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw picoseconds since simulation start.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picoseconds since simulation start.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

/// A span of simulated time, measured in picoseconds.
///
/// # Example
///
/// ```
/// use accelflow_sim::time::SimDuration;
///
/// let d = SimDuration::from_nanos(10) * 3;
/// assert_eq!(d.as_nanos_f64(), 30.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest picosecond. Negative or non-finite inputs yield zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e12).round() as u64)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest picosecond. Negative or non-finite inputs yield zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw picoseconds.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Nanoseconds, as a float.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.1}ns", self.0 as f64 / 1e3)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A clock frequency, used to convert cycle counts into durations.
///
/// # Example
///
/// ```
/// use accelflow_sim::time::Frequency;
///
/// let clk = Frequency::from_ghz(2.4);
/// // 2400 cycles at 2.4 GHz is exactly 1 microsecond.
/// assert_eq!(clk.cycles(2400.0).as_micros_f64(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not finite and positive.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Frequency { hz }
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz(ghz * 1e9)
    }

    /// The frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.hz
    }

    /// The frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.hz / 1e9
    }

    /// The duration of `n` clock cycles, rounded to the nearest
    /// picosecond. Negative cycle counts yield zero.
    pub fn cycles(self, n: f64) -> SimDuration {
        if n <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_picos((n * 1e12 / self.hz).round() as u64)
    }

    /// The duration of one clock cycle.
    pub fn cycle(self) -> SimDuration {
        self.cycles(1.0)
    }

    /// How many cycles (fractional) fit into `d`.
    pub fn cycles_in(self, d: SimDuration) -> f64 {
        d.as_secs_f64() * self.hz
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GHz", self.as_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(5) + SimDuration::from_nanos(250);
        assert_eq!(t.as_picos(), 5_250_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_picos(5_250_000));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(
            SimDuration::from_micros_f64(1.5),
            SimDuration::from_nanos(1500)
        );
    }

    #[test]
    fn duration_from_float_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(4));
        let t = SimTime::from_picos(100);
        assert_eq!(
            t.saturating_since(SimTime::from_picos(400)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn frequency_cycle_conversion() {
        let f = Frequency::from_ghz(2.4);
        assert_eq!(f.cycles(2400.0), SimDuration::from_micros(1));
        assert_eq!(f.cycles(0.0), SimDuration::ZERO);
        assert_eq!(f.cycles(-5.0), SimDuration::ZERO);
        let d = f.cycles(36.0);
        assert!((f.cycles_in(d) - 36.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::from_hz(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12.0ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Frequency::from_ghz(2.4)), "2.40GHz");
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d * 3u64, SimDuration::from_nanos(300));
        assert_eq!(d * 0.5f64, SimDuration::from_nanos(50));
        assert_eq!(d / 4, SimDuration::from_nanos(25));
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_nanos(300));
    }
}
