//! Event tracing for debugging simulations.
//!
//! Wrap any [`Model`] in a [`Traced`] to capture a bounded log of the
//! events it handles — the discrete-event analogue of a waveform dump.
//! The log is a ring buffer, so long runs keep only the most recent
//! window, and tracing can be toggled at run time to capture just the
//! interval under investigation.

use std::collections::VecDeque;
use std::fmt;

use crate::engine::{EventQueue, Model};
use crate::time::SimTime;

/// One captured event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// When the event was delivered.
    pub at: SimTime,
    /// Delivery index (monotonic across the run, even when paused).
    pub seq: u64,
    /// The event, rendered at capture time.
    pub event: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} #{}] {}", self.at, self.seq, self.event)
    }
}

/// A [`Model`] wrapper that records delivered events.
///
/// # Example
///
/// ```
/// use accelflow_sim::engine::{EventQueue, Model, Simulation};
/// use accelflow_sim::time::{SimDuration, SimTime};
/// use accelflow_sim::trace_log::Traced;
///
/// struct Counter(u32);
/// impl Model for Counter {
///     type Event = u32;
///     fn handle(&mut self, _t: SimTime, ev: u32, q: &mut EventQueue<u32>) {
///         self.0 += ev;
///         if ev > 1 {
///             q.schedule(SimDuration::from_nanos(1), ev - 1);
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Traced::new(Counter(0), 16));
/// sim.queue_mut().schedule(SimDuration::ZERO, 3);
/// sim.run();
/// let log = sim.model().log();
/// assert_eq!(log.len(), 3); // events 3, 2, 1
/// assert!(log[0].event.contains('3'));
/// ```
#[derive(Clone, Debug)]
pub struct Traced<M> {
    inner: M,
    log: VecDeque<LogEntry>,
    capacity: usize,
    enabled: bool,
    delivered: u64,
    dropped: u64,
}

impl<M> Traced<M> {
    /// Wraps `inner`, keeping at most `capacity` recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: M, capacity: usize) -> Self {
        assert!(capacity > 0, "trace log capacity must be positive");
        Traced {
            inner,
            log: VecDeque::with_capacity(capacity),
            capacity,
            enabled: true,
            delivered: 0,
            dropped: 0,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Exclusive access to the wrapped model.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Unwraps, discarding the log.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Pauses or resumes capture (delivery indices keep advancing).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The captured entries, oldest first.
    pub fn log(&self) -> &VecDeque<LogEntry> {
        &self.log
    }

    /// Discards captured entries.
    pub fn clear(&mut self) {
        self.log.clear();
    }

    /// Total events delivered to the wrapped model.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Entries evicted because the ring was full. A non-zero value
    /// means [`log`](Traced::log) shows only the tail of the run —
    /// the loss is counted here rather than happening silently.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the log, one entry per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for entry in &self.log {
            out.push_str(&entry.to_string());
            out.push('\n');
        }
        out
    }
}

impl<M> Model for Traced<M>
where
    M: Model,
    M::Event: fmt::Debug,
{
    type Event = M::Event;

    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>) {
        if self.enabled {
            if self.log.len() == self.capacity {
                self.log.pop_front();
                self.dropped += 1;
            }
            self.log.push_back(LogEntry {
                at: now,
                seq: self.delivered,
                event: format!("{event:?}"),
            });
        }
        self.delivered += 1;
        self.inner.handle(now, event, queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::time::SimDuration;

    struct Chain {
        left: u32,
    }

    impl Model for Chain {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
            self.left = ev;
            if ev > 0 {
                queue.schedule(SimDuration::from_nanos(10), ev - 1);
            }
        }
    }

    fn run_chain(capacity: usize, start: u32) -> Traced<Chain> {
        let mut sim = Simulation::new(Traced::new(Chain { left: 0 }, capacity));
        sim.queue_mut().schedule(SimDuration::ZERO, start);
        sim.run();
        sim.into_model()
    }

    #[test]
    fn captures_events_in_order() {
        let traced = run_chain(16, 4);
        let events: Vec<&str> = traced.log().iter().map(|e| e.event.as_str()).collect();
        assert_eq!(events, vec!["4", "3", "2", "1", "0"]);
        assert_eq!(traced.delivered(), 5);
        assert_eq!(traced.inner().left, 0);
        // Sequence numbers and times are monotone.
        for w in traced.log().iter().collect::<Vec<_>>().windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let traced = run_chain(3, 9);
        assert_eq!(traced.log().len(), 3);
        let events: Vec<&str> = traced.log().iter().map(|e| e.event.as_str()).collect();
        assert_eq!(events, vec!["2", "1", "0"]);
        assert_eq!(traced.delivered(), 10);
    }

    #[test]
    fn evictions_are_counted_not_silent() {
        // Regression: overflow used to pop the oldest entry with no
        // trace that anything was lost.
        let traced = run_chain(3, 9);
        assert_eq!(traced.dropped(), 7, "10 delivered, 3 kept");
        let full_fit = run_chain(16, 4);
        assert_eq!(full_fit.dropped(), 0);
    }

    #[test]
    fn pausing_skips_capture_but_counts_delivery() {
        let mut sim = Simulation::new(Traced::new(Chain { left: 0 }, 16));
        sim.model_mut().set_enabled(false);
        sim.queue_mut().schedule(SimDuration::ZERO, 2);
        sim.run();
        assert!(sim.model().log().is_empty());
        assert_eq!(sim.model().delivered(), 3);
    }

    #[test]
    fn dump_renders_lines() {
        let traced = run_chain(16, 1);
        let dump = traced.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("#0"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Traced::new(Chain { left: 0 }, 0);
    }
}
