//! Differential test: the calendar-queue `EventQueue` against a plain
//! binary-heap reference implementing the same delivery contract —
//! `(time, insertion-order)` with past-time schedules clamped to now.
//!
//! Both sides run the same reactive workload from the same `SimRng`
//! seed. The workload's scheduling decisions depend only on the rng
//! stream, which both sides consume in delivery order — so the logs
//! stay in lockstep exactly as long as delivery order is identical,
//! and any divergence (a reordering, a lost or duplicated event, a
//! clamp miscount) shows up as a log mismatch at the first bad pop.
//! The delay shapes deliberately stress the calendar's edges:
//! same-instant bursts (the fast lane), adjacent slots, power-of-two
//! jumps across bucket and window boundaries, far-future events that
//! land in the overflow spill, and past-time schedules that clamp.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use accelflow_sim::{EventQueue, Model, SimRng, SimTime, Simulation};

/// Reactive workload step, shared verbatim by both sides: after an
/// event fires at `now`, draw 0–3 follow-up events with adversarial
/// delay shapes.
fn react(rng: &mut SimRng, now: u64, sched: &mut dyn FnMut(u64, u64)) {
    let n = rng.index(4);
    for _ in 0..n {
        let at = match rng.index(8) {
            0 => now,                                             // same-instant burst
            1 => now + 1 + rng.index(4) as u64,                   // adjacent slots
            2 => now + rng.index(512) as u64,                     // in-bucket
            3 => now + (1u64 << (6 + rng.index(22))),             // bucket/window edges
            4 => now + rng.index(60_000_000) as u64,              // overflow spill
            5 => now.saturating_sub(1 + rng.index(5_000) as u64), // past → clamp
            6 => now + rng.index(16) as u64,
            _ => now + rng.index(4_096) as u64,
        };
        sched(at, rng.index(1 << 30) as u64);
    }
}

const INITIAL: &[(u64, u64)] = &[
    (0, 100),
    (0, 101), // same-instant tie at t=0
    (17, 102),
    (1 << 20, 103),
    (1 << 20, 104), // tie at a power-of-two boundary
    (55_000_000, 105),
];

struct Recorder {
    rng: SimRng,
    log: Vec<(u64, u64)>,
    budget: usize,
}

impl Model for Recorder {
    type Event = u64;
    fn handle(&mut self, now: SimTime, ev: u64, queue: &mut EventQueue<u64>) {
        self.log.push((now.as_picos(), ev));
        if self.log.len() >= self.budget {
            return; // stop breeding; drain what is queued
        }
        react(&mut self.rng, now.as_picos(), &mut |at, id| {
            queue.schedule_at(SimTime::from_picos(at), id);
        });
    }
}

/// Runs the workload through the production engine (calendar queue).
fn calendar_run(seed: u64, budget: usize) -> (Vec<(u64, u64)>, u64) {
    let mut sim = Simulation::new(Recorder {
        rng: SimRng::seed(seed),
        log: Vec::new(),
        budget,
    });
    for &(at, id) in INITIAL {
        sim.queue_mut().schedule_at(SimTime::from_picos(at), id);
    }
    sim.run();
    let clamped = sim.queue_mut().clamped();
    (sim.into_model().log, clamped)
}

/// Runs the workload through a trivially-correct reference: a binary
/// heap of `(at, seq, id)` with the same clamp-to-now rule.
fn reference_run(seed: u64, budget: usize) -> (Vec<(u64, u64)>, u64) {
    let mut rng = SimRng::seed(seed);
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut clamped = 0u64;
    let mut log = Vec::new();
    for &(at, id) in INITIAL {
        heap.push(Reverse((at, seq, id)));
        seq += 1;
    }
    while let Some(Reverse((at, _, id))) = heap.pop() {
        let now = at;
        log.push((now, id));
        if log.len() >= budget {
            continue;
        }
        react(&mut rng, now, &mut |a, i| {
            if a < now {
                clamped += 1;
            }
            heap.push(Reverse((a.max(now), seq, i)));
            seq += 1;
        });
    }
    (log, clamped)
}

#[test]
fn calendar_matches_reference_heap_exactly() {
    for seed in [1u64, 42, 0xDEAD_BEEF, 7_777_777] {
        let (cal_log, cal_clamped) = calendar_run(seed, 20_000);
        let (ref_log, ref_clamped) = reference_run(seed, 20_000);
        assert!(
            cal_log.len() >= 20_000,
            "seed {seed}: workload fizzled at {} events",
            cal_log.len()
        );
        assert_eq!(
            cal_log.len(),
            ref_log.len(),
            "seed {seed}: delivery counts diverge"
        );
        if let Some(i) = (0..cal_log.len()).find(|&i| cal_log[i] != ref_log[i]) {
            panic!(
                "seed {seed}: first divergence at pop {i}: calendar {:?} vs reference {:?}",
                cal_log[i], ref_log[i]
            );
        }
        assert_eq!(
            cal_clamped, ref_clamped,
            "seed {seed}: clamp counts diverge"
        );
    }
}

#[test]
fn monotone_and_fifo_within_timestamp() {
    // Structural sanity independent of the reference: time never goes
    // backwards across the log.
    let (log, _) = calendar_run(99, 10_000);
    for w in log.windows(2) {
        assert!(w[1].0 >= w[0].0, "time regressed: {:?} -> {:?}", w[0], w[1]);
    }
}
