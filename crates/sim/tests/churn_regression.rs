//! Churn-throughput regression guard.
//!
//! The self-rescheduling timer pattern — deliver one event, schedule
//! one follow-on a few nanoseconds out, population hovering near one —
//! is the event kernel's worst case for queue-maintenance overhead,
//! and the shape that regressed when the calendar queue first replaced
//! the binary heap (before the front-cache fix). This test pins the
//! fix in CI: the calendar-backed [`EventQueue`] must stay within a
//! generous factor of a plain `BinaryHeap` reference driven through
//! the identical pattern, **measured in the same process on the same
//! host**, so the ratio is robust to machine speed and build profile
//! even though absolute wall-clock is not.
//!
//! The ratio floor is deliberately loose (the calendar actually *beats*
//! the heap on this shape thanks to the front cache): it only trips on
//! a genuine constant-factor collapse, not scheduler jitter.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use accelflow_sim::engine::{EventQueue, Model, Simulation};
use accelflow_sim::time::{SimDuration, SimTime};

/// Deliveries per repetition — enough to swamp timer granularity in
/// debug builds while keeping the test under a second.
const OPS: u64 = 200_000;
/// Minimum acceptable calendar/heap throughput ratio. The heap-era
/// kernel scored 1.0 by definition; the regression this guards against
/// was a >2× collapse on exactly this shape.
const FLOOR: f64 = 0.5;
/// Best-of repetitions, filtering scheduler noise.
const REPS: usize = 3;

/// The bench_record `engine_churn_1m` model, scaled down: every
/// delivery schedules one follow-on at a staggered nanosecond delay.
struct Churn {
    left: u64,
}

impl Model for Churn {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
        if self.left > 0 {
            self.left -= 1;
            queue.schedule(
                SimDuration::from_nanos(u64::from(ev % 97) + 1),
                ev.wrapping_add(1),
            );
        }
    }
}

/// Events/second through the real engine (calendar-backed queue).
fn engine_churn_rate() -> f64 {
    let t0 = Instant::now();
    let mut sim = Simulation::new(Churn { left: OPS });
    sim.queue_mut().schedule(SimDuration::ZERO, 1);
    sim.run();
    let delivered = sim.queue_mut().delivered();
    assert_eq!(delivered, OPS + 1, "churn model lost events");
    delivered as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Events/second through an inline `BinaryHeap` kernel driving the
/// identical pattern: min-heap on `(time, seq)`, same delays, same
/// event payloads, same delivery count.
fn heap_churn_rate() -> f64 {
    let t0 = Instant::now();
    let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut left = OPS;
    let mut delivered = 0u64;
    heap.push(Reverse((0, seq, 1u32)));
    seq += 1;
    while let Some(Reverse((now, _, ev))) = heap.pop() {
        delivered += 1;
        if left > 0 {
            left -= 1;
            let delay_ps = (u64::from(ev % 97) + 1) * 1_000;
            heap.push(Reverse((now + delay_ps, seq, ev.wrapping_add(1))));
            seq += 1;
        }
    }
    assert_eq!(delivered, OPS + 1, "heap reference lost events");
    delivered as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

fn best_of(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(0.0f64, f64::max)
}

#[test]
fn calendar_churn_keeps_pace_with_the_binary_heap() {
    let engine = best_of(engine_churn_rate);
    let heap = best_of(heap_churn_rate);
    let ratio = engine / heap;
    println!(
        "churn throughput: engine {engine:.0}/s, heap reference {heap:.0}/s, ratio {ratio:.2}"
    );
    assert!(
        ratio >= FLOOR,
        "calendar kernel regressed on the churn shape: {engine:.0}/s vs heap {heap:.0}/s \
         (ratio {ratio:.2} < floor {FLOOR})"
    );
}
