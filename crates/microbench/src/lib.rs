//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no package registry, so the workspace
//! vendors the small subset of criterion's API its benches actually
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! (with `sample_size` / `finish`), [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Bench
//! sources compile unchanged against either this shim or the real
//! crate.
//!
//! Measurement model: each `iter` call is auto-calibrated to batches
//! long enough to dwarf timer overhead, then `sample_size` batches are
//! timed and the median per-iteration nanoseconds reported. That is
//! deliberately simpler than criterion's bootstrap analysis, but the
//! medians are stable enough to compare runs of the same machine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time one measured batch must cover; batches are
/// doubled until they do, so `Instant` overhead stays below ~0.1%.
const MIN_BATCH: Duration = Duration::from_millis(10);
const DEFAULT_SAMPLES: usize = 20;

/// Per-target timing loop handed to the closure in
/// [`Criterion::bench_function`].
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time in nanoseconds, filled by `iter`.
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm caches and lazy statics outside the measurement.
        black_box(routine());

        // Calibrate the batch size.
        let mut iters: u64 = 1;
        let mut batch = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_BATCH || iters >= 1 << 24 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(2);
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        samples.push(batch);
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            batch = start.elapsed().as_nanos() as f64 / iters as f64;
            samples.push(batch);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Top-level harness handle; collects and prints one line per target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs one benchmark target and prints its median time.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut b);
        println!("{:<40} {:>14}", name, format_ns(b.median_ns));
        self
    }

    /// Starts a named group of related targets.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.into(),
            sample_size: self.sample_size,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named group; `bench_function` targets print as `group/target`.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    // Tie the group's lifetime to the Criterion borrow like the real
    // API does, so sources stay compatible with upstream criterion.
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches per target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark target within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut b);
        let full = format!("{}/{}", self.prefix, name.into());
        println!("{:<40} {:>14}", full, format_ns(b.median_ns));
        self
    }

    /// Ends the group (upstream criterion runs its analysis here; the
    /// shim has nothing left to do).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
/// Ignores harness CLI flags (`--bench`, filters) that cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_finite_median() {
        // Capture isn't needed; just ensure the pipeline runs and the
        // bencher records a sane median for a trivial workload.
        let mut b = Bencher {
            sample_size: 3,
            median_ns: f64::NAN,
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.median_ns.is_finite() && b.median_ns >= 0.0);
    }

    #[test]
    fn group_sample_size_floors_at_two() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(0);
        assert_eq!(g.sample_size, 2);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(f64::NAN).contains("n/a"));
    }
}
