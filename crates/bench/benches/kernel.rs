//! Criterion micro-benchmarks of the simulation kernel's hot paths:
//! the event queue, the latency histogram, the RNG samplers, the
//! server-pool booking used for PEs/cores/DMA engines, and the
//! parallel sweep runner's scaling.

use accelflow_bench::sweep;
use accelflow_sim::engine::{EventQueue, Model, Simulation};
use accelflow_sim::resource::ServerPool;
use accelflow_sim::rng::SimRng;
use accelflow_sim::stats::Histogram;
use accelflow_sim::telemetry::{CompId, Telemetry};
use accelflow_sim::time::{SimDuration, SimTime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

struct Churn {
    left: u64,
}

impl Model for Churn {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
        if self.left > 0 {
            self.left -= 1;
            // Two follow-ons at staggered delays: keeps the heap busy.
            queue.schedule(
                SimDuration::from_nanos(u64::from(ev % 97) + 1),
                ev.wrapping_add(1),
            );
        }
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Churn { left: 100_000 });
            sim.queue_mut().schedule(SimDuration::ZERO, 1);
            sim.run();
            black_box(sim.now())
        })
    });
}

/// The Churn model instrumented exactly the way `Machine` is: an
/// `Option<Box<Telemetry>>` field checked once per event, with the
/// record constructed inside the branch. Against the bare
/// `engine/100k_events` baseline, the `_off` variant measures the full
/// disabled-path tax (one `None` check per event) — the acceptance bar
/// is under 1%.
struct ChurnTelemetry {
    left: u64,
    tel: Option<Box<Telemetry>>,
}

impl Model for ChurnTelemetry {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
        if let Some(t) = self.tel.as_mut() {
            t.span(
                now,
                CompId::accelerator((ev % 9) as u16),
                "pe",
                SimDuration::from_nanos(u64::from(ev % 97) + 1),
                Some(ev),
                0,
            );
        }
        if self.left > 0 {
            self.left -= 1;
            queue.schedule(
                SimDuration::from_nanos(u64::from(ev % 97) + 1),
                ev.wrapping_add(1),
            );
        }
    }
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let run = |tel: Option<Box<Telemetry>>| {
        let mut sim = Simulation::new(ChurnTelemetry { left: 100_000, tel });
        sim.queue_mut().schedule(SimDuration::ZERO, 1);
        sim.run();
        black_box(sim.now())
    };
    c.bench_function("telemetry/100k_events_off", |b| b.iter(|| run(None)));
    c.bench_function("telemetry/100k_events_on", |b| {
        b.iter(|| run(Some(Box::new(Telemetry::new(1 << 18)))))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = SimRng::seed(1);
    let values: Vec<u64> = (0..100_000)
        .map(|_| (rng.log_normal(200_000_000.0, 1.0)) as u64)
        .collect();
    c.bench_function("stats/record_100k", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            black_box(h.percentile(99.0))
        })
    });
    let mut h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    c.bench_function("stats/p99", |b| b.iter(|| black_box(h.percentile(99.0))));
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exponential_10k", |b| {
        let mut rng = SimRng::seed(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exponential(100.0);
            }
            black_box(acc)
        })
    });
    c.bench_function("rng/log_normal_10k", |b| {
        let mut rng = SimRng::seed(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.log_normal(2048.0, 0.7);
            }
            black_box(acc)
        })
    });
}

fn bench_schedule_pop(c: &mut Criterion) {
    // Raw event-queue throughput, isolated from any model logic:
    // schedule a batch at pseudo-random offsets, then drain it.
    struct Sink;
    impl Model for Sink {
        type Event = u64;
        fn handle(&mut self, _now: SimTime, _ev: u64, _queue: &mut EventQueue<u64>) {}
    }
    c.bench_function("engine/schedule_pop_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Sink);
            sim.queue_mut().reserve(100_000);
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..100_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                sim.queue_mut()
                    .schedule(SimDuration::from_nanos(x % 1_000_000), i);
            }
            sim.run();
            black_box(sim.queue_mut().delivered())
        })
    });
}

fn bench_sweep_scaling(c: &mut Criterion) {
    // The sweep runner over a CPU-bound deterministic task, at one
    // thread vs the configured parallelism. On a multi-core machine
    // the N-thread variant should approach a linear speedup; the
    // per-item work (~1M RNG draws) dwarfs the fan-out overhead.
    let work = |seed: u64| {
        let mut rng = SimRng::seed(seed);
        let mut acc = 0.0f64;
        for _ in 0..1_000_000 {
            acc += rng.uniform();
        }
        acc
    };
    let inputs: Vec<u64> = (0..8).collect();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("8x1M_draws_1_thread", |b| {
        std::env::set_var("ACCELFLOW_THREADS", "1");
        b.iter(|| black_box(sweep::map(inputs.clone(), work)));
        std::env::remove_var("ACCELFLOW_THREADS");
    });
    group.bench_function("8x1M_draws_N_threads", |b| {
        b.iter(|| black_box(sweep::map(inputs.clone(), work)));
    });
    group.finish();
}

fn bench_server_pool(c: &mut Criterion) {
    c.bench_function("resource/pool_acquire_10k", |b| {
        b.iter(|| {
            let mut pool = ServerPool::new(8);
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                t += SimDuration::from_nanos(i % 300);
                black_box(pool.acquire(t, SimDuration::from_nanos(2_300)));
            }
            pool.jobs()
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_telemetry_overhead,
    bench_schedule_pop,
    bench_histogram,
    bench_rng,
    bench_server_pool,
    bench_sweep_scaling
);
criterion_main!(benches);
