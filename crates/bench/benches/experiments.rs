//! Criterion benchmarks running scaled-down versions of the paper's
//! experiments — one group per figure family — so `cargo bench`
//! exercises the full machine under every orchestration policy.

use accelflow_bench::harness::{self, Scale};
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn tiny_scale() -> Scale {
    Scale {
        duration: SimDuration::from_millis(10),
        warmup: SimDuration::from_millis(1),
        rps: 2_000.0,
        seed: 42,
    }
}

fn bench_policies(c: &mut Criterion) {
    let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
    let scale = tiny_scale();
    let arrivals = harness::shared_arrivals(&services, scale);
    let mut group = c.benchmark_group("fig11_scaled");
    group.sample_size(10);
    for policy in Policy::HEADLINE {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let cfg = harness::machine_config(policy, scale);
                black_box(Machine::run_arrivals(
                    &cfg,
                    &services,
                    arrivals.clone(),
                    scale.duration,
                    scale.seed,
                ))
            })
        });
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let services = vec![socialnetwork::read_home_timeline()];
    let scale = tiny_scale();
    let arrivals = harness::shared_arrivals(&services, scale);
    let mut group = c.benchmark_group("fig13_scaled");
    group.sample_size(10);
    for policy in [Policy::Relief, Policy::Direct, Policy::AccelFlow] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let cfg = harness::machine_config(policy, scale);
                black_box(Machine::run_arrivals(
                    &cfg,
                    &services,
                    arrivals.clone(),
                    scale.duration,
                    scale.seed,
                ))
            })
        });
    }
    group.finish();
}

fn bench_chiplets(c: &mut Criterion) {
    let services = vec![socialnetwork::store_post()];
    let scale = tiny_scale();
    let arrivals = harness::shared_arrivals(&services, scale);
    let mut group = c.benchmark_group("fig18_scaled");
    group.sample_size(10);
    for chiplets in [2usize, 6] {
        group.bench_function(format!("{chiplets}-chiplet"), |b| {
            b.iter(|| {
                let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
                cfg.chiplets = chiplets;
                black_box(Machine::run_arrivals(
                    &cfg,
                    &services,
                    arrivals.clone(),
                    scale.duration,
                    scale.seed,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_ablation, bench_chiplets);
criterion_main!(benches);
