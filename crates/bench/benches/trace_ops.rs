//! Criterion benchmarks of the trace machinery: the output-dispatcher
//! walk (`advance`), packed encode/decode, and program sampling.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::Frequency;
use accelflow_trace::cond::PayloadFlags;
use accelflow_trace::ir::{Next, PositionMark};
use accelflow_trace::packed;
use accelflow_trace::templates::{TemplateId, TraceLibrary};
use accelflow_workloads::socialnetwork;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_advance(c: &mut Criterion) {
    let lib = TraceLibrary::standard();
    let t1 = lib.entry(TemplateId::T1).clone();
    let flags = PayloadFlags {
        compressed: true,
        ..Default::default()
    };
    c.bench_function("trace/dispatcher_walk_t1", |b| {
        b.iter(|| {
            let mut adv = t1.first(&flags);
            let mut hops = 0;
            while let Next::Invoke { pm, .. } = adv.next {
                hops += 1;
                adv = t1.advance(black_box(pm), &flags);
            }
            let _ = PositionMark(0);
            black_box(hops)
        })
    });
}

fn bench_pack(c: &mut Criterion) {
    let lib = TraceLibrary::standard();
    let t6 = lib.entry(TemplateId::T6).clone();
    c.bench_function("trace/pack_t6", |b| {
        b.iter(|| black_box(packed::pack(&t6).unwrap()))
    });
    let bytes = packed::pack(&t6).unwrap();
    c.bench_function("trace/unpack_t6", |b| {
        b.iter(|| black_box(packed::unpack("t6", &bytes).unwrap()))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
    let svc = socialnetwork::compose_post();
    c.bench_function("workload/sample_cpost_program", |b| {
        let mut rng = SimRng::seed(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(svc.sample(&lib, &timing, &mut rng, i << 32))
        })
    });
}

fn bench_library(c: &mut Criterion) {
    c.bench_function("trace/build_library", |b| {
        b.iter(|| black_box(TraceLibrary::standard()))
    });
    let lib = TraceLibrary::standard();
    c.bench_function("trace/connectivity_matrix", |b| {
        b.iter(|| black_box(lib.connectivity()))
    });
}

criterion_group!(
    benches,
    bench_advance,
    bench_pack,
    bench_sampling,
    bench_library
);
criterion_main!(benches);
