//! The parallel harness's determinism contract: fanning simulations
//! across sweep workers must produce results bit-for-bit identical to
//! a sequential loop, because parallelism exists only *across*
//! simulations — each simulation still runs single-threaded with its
//! own seeded RNG.
//!
//! `RunReport` doesn't implement `PartialEq`, so reports are compared
//! through their full `Debug` rendering, which covers every counter,
//! histogram bucket, and timestamp a run produces.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::sweep;
use accelflow_core::policy::Policy;
use accelflow_core::stats::RunReport;
use accelflow_workloads::socialnetwork;

/// All (policy × seed) simulation cells of the test matrix.
fn cells() -> Vec<(Policy, u64)> {
    let policies = [Policy::AccelFlow, Policy::Relief];
    let seeds = [7u64, 42, 1234];
    policies
        .iter()
        .flat_map(|&p| seeds.iter().map(move |&s| (p, s)))
        .collect()
}

fn run_cell(policy: Policy, seed: u64) -> RunReport {
    let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
    let mut scale = Scale::quick();
    scale.seed = seed;
    harness::run_poisson(policy, &services, 1_500.0, scale)
}

fn render(reports: &[RunReport]) -> Vec<String> {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn parallel_sweep_reports_are_byte_identical_to_sequential() {
    // Sequential reference: a plain loop, no sweep involved.
    let sequential: Vec<RunReport> = cells().into_iter().map(|(p, s)| run_cell(p, s)).collect();

    // The sweep path. Whatever ACCELFLOW_THREADS says, this exercises
    // the worker fan-out machinery (order restoration, slot handoff);
    // on a multi-core box it also exercises true concurrency.
    let swept = sweep::map(cells(), |(p, s)| run_cell(p, s));

    let seq = render(&sequential);
    let par = render(&swept);
    assert_eq!(seq.len(), par.len());
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(a, b, "cell {i} diverged between sequential and sweep");
    }
}

#[test]
fn repeated_sweeps_are_stable() {
    // Two sweeps of the same matrix must agree with each other —
    // catches any hidden shared mutable state across simulations
    // (memoized libraries handed out by reference, RNG leakage...).
    let first = render(&sweep::map(cells(), |(p, s)| run_cell(p, s)));
    let second = render(&sweep::map(cells(), |(p, s)| run_cell(p, s)));
    assert_eq!(first, second);
}

#[test]
fn fault_injection_is_sweep_invariant() {
    // Same-seed fault runs must stay byte-identical when fanned across
    // sweep workers: the injector owns its own seeded RNG stream, so
    // neither worker count nor execution order may leak into a run.
    use accelflow_core::machine::Machine;
    use accelflow_core::FaultConfig;
    let run_faulty = |(policy, seed): (Policy, u64)| {
        let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
        let mut cfg = harness::machine_config(policy, Scale::quick());
        cfg.faults = FaultConfig::uniform(10.0);
        Machine::run_workload(&cfg, &services, 1_500.0, Scale::quick().duration, seed)
    };
    let sequential: Vec<RunReport> = cells().into_iter().map(run_faulty).collect();
    let swept = sweep::map(cells(), run_faulty);
    assert_eq!(render(&sequential), render(&swept));
    // The faults actually fired (otherwise this proves nothing).
    assert!(sequential.iter().all(|r| r.faults.injected() > 0));
}

#[test]
fn cluster_sweeps_are_byte_identical_to_sequential() {
    // Cluster runs fan out the same way machine runs do: every cell is
    // a pure function of (nodes, balancer, seed), so the sweep must
    // reproduce the sequential loop byte for byte — including the
    // balancers' placement decisions (the round-robin cursor and the
    // dispatcher's weighted-random draws live inside the run, never in
    // worker state).
    use accelflow_core::cluster::{BalancerKind, Cluster, ClusterConfig, ClusterReport};
    fn cluster_cells() -> Vec<(usize, BalancerKind, u64)> {
        let mut cells = Vec::new();
        for nodes in [1usize, 3] {
            for balancer in BalancerKind::ALL {
                cells.push((nodes, balancer, 7u64));
            }
        }
        cells
    }
    fn run_cluster(nodes: usize, balancer: BalancerKind, seed: u64) -> ClusterReport {
        let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
        let scale = Scale::quick();
        let mut cfg = ClusterConfig::new(nodes, harness::machine_config(Policy::AccelFlow, scale));
        cfg.balancer = balancer;
        cfg.keepalive = Some(accelflow_sim::time::SimDuration::from_micros(200));
        Cluster::run_workload(&cfg, &services, 1_000.0, scale.duration, seed)
    }
    let sequential: Vec<String> = cluster_cells()
        .into_iter()
        .map(|(n, b, s)| format!("{:?}", run_cluster(n, b, s)))
        .collect();
    let swept: Vec<String> = sweep::map(cluster_cells(), |(n, b, s)| run_cluster(n, b, s))
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    assert_eq!(sequential.len(), swept.len());
    for (i, (a, b)) in sequential.iter().zip(&swept).enumerate() {
        assert_eq!(
            a, b,
            "cluster cell {i} diverged between sequential and sweep"
        );
    }
}

#[test]
fn openloop_generators_are_seed_deterministic() {
    // Every arrival generator must produce a byte-identical stream for
    // a fixed seed — the open-loop engine's whole determinism contract
    // (docs/WORKLOADS.md) rests on this.
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_arch::config::ArchConfig;
    use accelflow_sim::time::SimDuration;
    use accelflow_trace::templates::TraceLibrary;
    use accelflow_workloads::openloop::{
        openloop_arrivals, ArrivalProcess, ColdStartStorm, CorrelatedBursts, Diurnal, FlashCrowd,
        Steady,
    };

    let dur = SimDuration::from_millis(20);
    let generators: Vec<Box<dyn ArrivalProcess>> = vec![
        Box::new(Steady),
        Box::new(Diurnal::day(dur, 0.8)),
        Box::new(FlashCrowd::for_run(dur, 6.0)),
        Box::new(CorrelatedBursts::alibaba(dur, 5)),
        Box::new(ColdStartStorm::azure(dur, 5)),
    ];
    let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
    let stream = |g: &dyn ArrivalProcess, seed: u64| {
        format!(
            "{:?}",
            openloop_arrivals(g, &services, &lib, &timing, 2_000.0, dur, seed)
        )
    };
    let mut fingerprints = Vec::new();
    for g in &generators {
        let a = stream(g.as_ref(), 7);
        let b = stream(g.as_ref(), 7);
        assert_eq!(a, b, "{}: same seed must be byte-identical", g.name());
        let c = stream(g.as_ref(), 8);
        assert_ne!(a, c, "{}: different seed must differ", g.name());
        fingerprints.push(a);
    }
    // Distinct generators shape distinct streams (otherwise the
    // gallery proves nothing).
    fingerprints.sort_unstable();
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), generators.len());
}

#[test]
fn openloop_sweeps_are_thread_count_invariant() {
    // An open-loop scenario sweep (the stats_openloop shape: generator
    // feeding a controlled machine) must render identically at any
    // worker count.
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_arch::config::ArchConfig;
    use accelflow_core::control::{AutoscalerConfig, RateLimit};
    use accelflow_core::machine::Machine;
    use accelflow_sim::time::SimDuration;
    use accelflow_trace::templates::TraceLibrary;
    use accelflow_workloads::openloop::{openloop_arrivals, Diurnal, FlashCrowd};

    let run_cell = |(flash, seed): (bool, u64)| {
        let services = vec![socialnetwork::uniq_id(), socialnetwork::login()];
        let lib = TraceLibrary::standard();
        let timing = ServiceTimeModel::calibrated(ArchConfig::icelake().core_clock);
        let dur = SimDuration::from_millis(10);
        let arrivals = if flash {
            openloop_arrivals(
                &FlashCrowd::for_run(dur, 5.0),
                &services,
                &lib,
                &timing,
                2_000.0,
                dur,
                seed,
            )
        } else {
            openloop_arrivals(
                &Diurnal::day(dur, 0.7),
                &services,
                &lib,
                &timing,
                2_000.0,
                dur,
                seed,
            )
        };
        let mut cfg = harness::machine_config(Policy::AccelFlow, Scale::quick());
        cfg.instances_per_accel = 2;
        cfg.control.rate_limit = Some(RateLimit {
            tokens_per_sec: 1_800.0,
            burst: 16.0,
        });
        cfg.control.autoscaler = Some(AutoscalerConfig::reactive());
        Machine::run_arrivals(&cfg, &services, arrivals, dur, seed)
    };
    let cells = vec![(false, 7u64), (true, 7), (false, 42), (true, 42)];
    let with_threads = |n: &str| {
        std::env::set_var("ACCELFLOW_THREADS", n);
        let out = render(&sweep::map(cells.clone(), run_cell));
        std::env::remove_var("ACCELFLOW_THREADS");
        out
    };
    let seq = with_threads("1");
    let par = with_threads("4");
    assert_eq!(seq, par, "open-loop sweep depends on thread count");
    // The control path actually engaged.
    let swept = sweep::map(cells, run_cell);
    assert!(swept.iter().all(|r| r.control.admitted > 0));
}

#[test]
fn sharded_sweep_is_byte_identical_to_unsharded() {
    // Process sharding (`docs/CHECKPOINT.md`): each shard runs a
    // contiguous slice of the grid, and concatenating the shards'
    // results in shard order must reproduce the unsharded sweep byte
    // for byte — same original indices, same rendered reports.
    let whole: Vec<(usize, String)> = sweep::map_sharded(cells(), |(p, s)| run_cell(p, s))
        .into_iter()
        .map(|(i, r)| (i, format!("{r:?}")))
        .collect();
    assert_eq!(whole.len(), cells().len());

    let mut stitched: Vec<(usize, String)> = Vec::new();
    std::env::set_var("ACCELFLOW_SHARDS", "3");
    for index in 0..3 {
        std::env::set_var("ACCELFLOW_SHARD_INDEX", index.to_string());
        stitched.extend(
            sweep::map_sharded(cells(), |(p, s)| run_cell(p, s))
                .into_iter()
                .map(|(i, r)| (i, format!("{r:?}"))),
        );
    }
    std::env::remove_var("ACCELFLOW_SHARDS");
    std::env::remove_var("ACCELFLOW_SHARD_INDEX");

    assert_eq!(
        whole, stitched,
        "three concatenated shards diverged from the unsharded sweep"
    );
}

#[test]
fn warm_started_search_matches_cold() {
    // The throughput search's shared-prefix warm start (fork N restored
    // snapshot copies) must land on exactly the probes — and the exact
    // result — of the cold mode that re-simulates the prefix per probe.
    let services = vec![socialnetwork::uniq_id()];
    let mk = || {
        let mut cfg = harness::machine_config(Policy::AccelFlow, Scale::quick());
        cfg.arch.cores = 2;
        cfg.arch.pes_per_accelerator = 1;
        cfg
    };
    let warm = harness::max_throughput_with_mode(&mk(), &services, 5.0, 3, true);
    let cold = harness::max_throughput_with_mode(&mk(), &services, 5.0, 3, false);
    assert_eq!(
        warm, cold,
        "warm-started search diverged from the cold baseline"
    );
    assert!(warm > 0.0, "search found no sustainable load");
}

#[test]
fn throughput_search_is_thread_count_invariant() {
    // The speculative parallel search must return the sequential
    // result for a small machine regardless of worker count.
    let services = vec![socialnetwork::uniq_id()];
    let mk = || {
        let mut cfg = harness::machine_config(Policy::AccelFlow, Scale::quick());
        cfg.arch.cores = 2;
        cfg.arch.pes_per_accelerator = 1;
        cfg
    };
    let with_threads = |n: &str| {
        std::env::set_var("ACCELFLOW_THREADS", n);
        let r = harness::max_throughput_with(&mk(), &services, 5.0, 3);
        std::env::remove_var("ACCELFLOW_THREADS");
        r
    };
    let seq = with_threads("1"); // original early-exit sequential search
    let par = with_threads("4"); // speculative parallel search
    assert_eq!(seq, par, "search result must not depend on thread count");
}
