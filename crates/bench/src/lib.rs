//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the full index).
//!
//! Each `src/bin/` binary reproduces one table or figure and prints a
//! paper-vs-measured comparison; `benches/` holds criterion benchmarks
//! over the simulator's hot paths and scaled-down experiment runs.
//!
//! - [`harness`] — standard run configurations, the max-throughput
//!   (SLO-bounded) search, and experiment plumbing.
//! - [`sweep`] — the parallel sweep runner: independent simulations
//!   fan out across worker threads (`ACCELFLOW_THREADS`), results come
//!   back in deterministic input order.
//! - [`table`] — plain-text table rendering for experiment output.
//! - [`paper`] — the numbers the paper reports, as constants, so every
//!   binary can print paper-vs-measured side by side.

#![warn(missing_docs)]

pub mod harness;
pub mod paper;
pub mod sweep;
pub mod table;
