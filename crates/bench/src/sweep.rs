//! Parallel sweep runner for independent simulations.
//!
//! The paper's evaluation is embarrassingly parallel: every figure is a
//! set of *independent* single-threaded simulations (policy × load ×
//! seed), so the harness fans them out across OS threads and collects
//! the results **in input order**. Each simulation still runs on one
//! thread with its own seeded RNG, so every result is bit-for-bit
//! identical to a sequential run — parallelism exists only *across*
//! simulations, never within one (see DESIGN.md, "Parallel harness").
//!
//! Thread count comes from `ACCELFLOW_THREADS`, defaulting to
//! [`std::thread::available_parallelism`]. `ACCELFLOW_THREADS=1`
//! degrades to a plain sequential loop with no threads spawned.
//!
//! Nested sweeps (a parallel figure loop whose body calls the parallel
//! [`max_throughput`](crate::harness::max_throughput) search) run their
//! inner layer sequentially, so the total thread count stays bounded by
//! the configured parallelism instead of multiplying per level.
//!
//! Two scale levers layer on top of the thread fan-out (both in
//! `docs/CHECKPOINT.md`):
//!
//! - **Process sharding** ([`Shard`], [`map_sharded`]):
//!   `ACCELFLOW_SHARDS`/`ACCELFLOW_SHARD_INDEX` deterministically
//!   partition an input grid across independent processes; each shard
//!   owns a contiguous slice and reports outputs with their original
//!   grid indices, so concatenating the shards in index order
//!   reproduces the unsharded sweep byte-for-byte.
//! - **Prefix warm-start** ([`WarmStart`]): when every grid point
//!   shares one configuration and one simulated warm-up prefix, the
//!   prefix is simulated once, snapshotted, and each point forks a
//!   restored copy and appends only its own tail — byte-identical to
//!   re-simulating the prefix per point (the snapshot round-trip is
//!   pinned by the equivalence suite) while paying the prefix cost
//!   once.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use accelflow_core::machine::{Ev, MachineConfig, MachineRun};
use accelflow_core::request::ServiceSpec;
use accelflow_core::stats::RunReport;
use accelflow_core::Arrival;
use accelflow_sim::time::{SimDuration, SimTime};

/// The no-op event observer warm-start forks run under (a fn pointer,
/// so restore-vs-replay arms share one [`MachineRun`] type).
type NoObserve = fn(SimTime, &Ev);

fn no_observe(_: SimTime, _: &Ev) {}

thread_local! {
    /// True on sweep worker threads; makes nested sweeps sequential.
    static IN_SWEEP: Cell<bool> = const { Cell::new(false) };
}

/// The sweep's worker-thread budget: `ACCELFLOW_THREADS` if set (values
/// below 1 are treated as 1), else the machine's available parallelism.
pub fn parallelism() -> usize {
    match std::env::var("ACCELFLOW_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Whether the current thread is already inside a sweep worker.
pub fn in_sweep() -> bool {
    IN_SWEEP.with(|f| f.get())
}

/// Applies `f` to every input, returning outputs in input order.
///
/// Runs across up to [`parallelism`] worker threads; falls back to a
/// plain sequential loop when only one thread is configured, when there
/// are fewer than two inputs, or when called from inside another sweep
/// (nested parallelism would multiply thread counts).
///
/// # Determinism
///
/// `f` is invoked exactly once per input and outputs are returned in
/// input order, so for any `f` whose result depends only on its input
/// (which holds for every simulation in this repo: seeded RNG, no
/// shared mutable state) the result vector is identical — bit for bit —
/// to `inputs.into_iter().map(f).collect()`.
pub fn map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = parallelism().min(inputs.len());
    if threads <= 1 || in_sweep() {
        return inputs.into_iter().map(f).collect();
    }

    let n = inputs.len();
    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let outputs = &outputs;
    let next = &next;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                IN_SWEEP.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = slots[i]
                        .lock()
                        .expect("sweep input slot poisoned")
                        .take()
                        .expect("sweep input claimed twice");
                    let out = f(input);
                    *outputs[i].lock().expect("sweep output slot poisoned") = Some(out);
                }
            });
        }
    });

    outputs
        .iter()
        .map(|m| {
            m.lock()
                .expect("sweep output slot poisoned")
                .take()
                .expect("sweep worker left an output empty")
        })
        .collect()
}

// ----- process sharding -----

/// This process's slice of a sharded sweep: `index` of `count`
/// processes, each owning a contiguous range of the input grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Total number of cooperating processes (≥ 1).
    pub count: usize,
    /// This process's zero-based shard id (< `count`).
    pub index: usize,
}

impl Shard {
    /// The un-sharded singleton: one process owns the whole grid.
    pub fn whole() -> Self {
        Shard { count: 1, index: 0 }
    }

    /// Reads `ACCELFLOW_SHARDS` (total processes, default 1; values
    /// below 1 are treated as 1) and `ACCELFLOW_SHARD_INDEX` (this
    /// process, default 0).
    ///
    /// # Panics
    ///
    /// Panics when the index is not below the count — a misconfigured
    /// launcher must fail loudly, not silently compute nothing.
    pub fn from_env() -> Self {
        let count = std::env::var("ACCELFLOW_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let index = std::env::var("ACCELFLOW_SHARD_INDEX")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        assert!(
            index < count,
            "ACCELFLOW_SHARD_INDEX={index} must be below ACCELFLOW_SHARDS={count}"
        );
        Shard { count, index }
    }

    /// Whether this process owns the entire grid (no sharding).
    pub fn is_whole(&self) -> bool {
        self.count == 1
    }

    /// The contiguous sub-range of `0..n` this shard owns. Balanced:
    /// sizes differ by at most one, earlier shards take the remainder,
    /// and the ranges of all shards tile `0..n` exactly in index order.
    pub fn range(&self, n: usize) -> std::ops::Range<usize> {
        let base = n / self.count;
        let rem = n % self.count;
        let start = self.index * base + self.index.min(rem);
        let len = base + usize::from(self.index < rem);
        start..start + len
    }
}

/// [`map`] over the slice of `inputs` owned by the [`Shard`] from the
/// environment, returning `(original grid index, output)` pairs in
/// input order.
///
/// Because shards own contiguous, tiling ranges and each pair carries
/// its grid index, concatenating every shard's output in shard order
/// reproduces `map(inputs, f)` with indices attached — byte for byte,
/// whatever the process count (pinned in the bench determinism suite).
pub fn map_sharded<I, O, F>(inputs: Vec<I>, f: F) -> Vec<(usize, O)>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let shard = Shard::from_env();
    let range = shard.range(inputs.len());
    let owned: Vec<(usize, I)> = inputs
        .into_iter()
        .enumerate()
        .skip(range.start)
        .take(range.len())
        .collect();
    map(owned, |(i, input)| (i, f(input)))
}

// ----- prefix warm-start -----

/// A shared simulated prefix that a grid of runs forks from.
///
/// Build one per (configuration, prefix-workload) pair, then call
/// [`WarmStart::fork`] once per grid point with that point's arrival
/// *tail* (everything at or after the prefix horizon). In warm mode
/// the prefix is simulated once and snapshotted; every fork restores
/// the snapshot and appends its tail. In cold mode every fork
/// re-simulates the prefix — same two-phase code path, no snapshot —
/// which is what makes warm-vs-cold byte-equality a meaningful check
/// of the snapshot subsystem (and the cold mode the honest baseline
/// for the warm-start speedup in `docs/BENCHMARKS.md`).
pub struct WarmStart {
    cfg: MachineConfig,
    services: Vec<ServiceSpec>,
    /// Prefix arrivals, retained for cold-mode replay (empty in warm
    /// mode — the snapshot already carries their consequences).
    prefix: Vec<Arrival>,
    prefix_duration: SimDuration,
    seed: u64,
    /// `Some` in warm mode: the serialized machine at the prefix
    /// horizon.
    snapshot: Option<Vec<u8>>,
}

impl WarmStart {
    /// Prepares a shared prefix. With `warm` set the prefix is
    /// simulated immediately (once) and held as a snapshot; otherwise
    /// the arrivals are held and re-simulated by every fork.
    pub fn new(
        cfg: MachineConfig,
        services: Vec<ServiceSpec>,
        prefix: Vec<Arrival>,
        prefix_duration: SimDuration,
        seed: u64,
        warm: bool,
    ) -> Self {
        let (prefix, snapshot) = if warm {
            let mut run = MachineRun::start(
                &cfg,
                &services,
                prefix,
                prefix_duration,
                seed,
                no_observe as NoObserve,
            );
            run.run_to(SimTime::ZERO + prefix_duration);
            (Vec::new(), Some(run.snapshot()))
        } else {
            (prefix, None)
        };
        WarmStart {
            cfg,
            services,
            prefix,
            prefix_duration,
            seed,
            snapshot,
        }
    }

    /// Whether forks restore a snapshot (true) or replay the prefix.
    pub fn is_warm(&self) -> bool {
        self.snapshot.is_some()
    }

    /// The prefix horizon: tails must start at or after this instant.
    pub fn prefix_end(&self) -> SimTime {
        SimTime::ZERO + self.prefix_duration
    }

    /// Runs one grid point: prefix (restored or replayed), then `tail`
    /// appended with the horizon extended to `end`, through the drain.
    pub fn fork(&self, tail: Vec<Arrival>, end: SimTime) -> RunReport {
        let mut run: MachineRun<NoObserve> = match &self.snapshot {
            Some(bytes) => {
                MachineRun::restore(&self.cfg, &self.services, bytes, no_observe as NoObserve)
                    .expect("a WarmStart snapshot always matches its own config")
            }
            None => {
                let mut run = MachineRun::start(
                    &self.cfg,
                    &self.services,
                    self.prefix.clone(),
                    self.prefix_duration,
                    self.seed,
                    no_observe as NoObserve,
                );
                run.run_to(self.prefix_end());
                run
            }
        };
        run.append_arrivals(tail, end);
        run.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Env vars are process-global: every test that pins one serializes
    /// through this lock.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Helper: run `body` with the given env vars pinned, restoring the
    /// prior values afterwards.
    fn with_env(vars: &[(&str, &str)], body: impl FnOnce()) {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev: Vec<(&str, Option<String>)> = vars
            .iter()
            .map(|(k, v)| {
                let old = std::env::var(k).ok();
                std::env::set_var(k, v);
                (*k, old)
            })
            .collect();
        body();
        for (k, old) in prev {
            match old {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }

    /// Helper: run `body` with `ACCELFLOW_THREADS` pinned.
    fn with_threads(n: &str, body: impl FnOnce()) {
        with_env(&[("ACCELFLOW_THREADS", n)], body);
    }

    #[test]
    fn preserves_input_order() {
        with_threads("4", || {
            let inputs: Vec<u64> = (0..64).collect();
            let out = map(inputs.clone(), |x| x * x);
            let expect: Vec<u64> = inputs.iter().map(|x| x * x).collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn single_thread_fallback_spawns_no_workers() {
        with_threads("1", || {
            // Sequential fallback runs f on the caller's thread, so a
            // thread-local write from f is visible here afterwards.
            thread_local! {
                static TOUCHED: Cell<u32> = const { Cell::new(0) };
            }
            TOUCHED.with(|t| t.set(0));
            let out = map(vec![1u32, 2, 3], |x| {
                TOUCHED.with(|t| t.set(t.get() + 1));
                x + 10
            });
            assert_eq!(out, vec![11, 12, 13]);
            assert_eq!(TOUCHED.with(|t| t.get()), 3, "must run on caller thread");
        });
    }

    #[test]
    fn parallel_equals_sequential() {
        // The determinism contract at the sweep level: same closure,
        // same inputs, same outputs, independent of thread count.
        let work = |seed: u64| {
            // A deterministic mini-workload (xorshift walk).
            let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let inputs: Vec<u64> = (0..32).collect();
        let mut seq = Vec::new();
        with_threads("1", || seq = map(inputs.clone(), work));
        let mut par = Vec::new();
        with_threads("8", || par = map(inputs.clone(), work));
        assert_eq!(seq, par);
    }

    #[test]
    fn each_input_runs_exactly_once() {
        with_threads("8", || {
            let calls = AtomicU64::new(0);
            let out = map((0..100u64).collect(), |x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x
            });
            assert_eq!(calls.load(Ordering::Relaxed), 100);
            assert_eq!(out.len(), 100);
        });
    }

    #[test]
    fn nested_sweeps_run_sequentially() {
        with_threads("4", || {
            let out = map(vec![0u32, 1, 2, 3], |outer| {
                assert!(in_sweep() || parallelism() == 1);
                // The inner sweep must not spawn another thread layer.
                let inner = map(vec![10u32, 20], |x| {
                    assert!(in_sweep() || parallelism() == 1);
                    x + outer
                });
                inner.iter().sum::<u32>()
            });
            assert_eq!(out, vec![30, 32, 34, 36]);
        });
    }

    #[test]
    fn empty_and_singleton_inputs() {
        with_threads("4", || {
            let empty: Vec<u32> = map(Vec::new(), |x: u32| x);
            assert!(empty.is_empty());
            assert_eq!(map(vec![7u32], |x| x * 2), vec![14]);
        });
    }

    #[test]
    fn env_parsing_clamps_to_one() {
        with_threads("0", || assert_eq!(parallelism(), 1));
        with_threads("garbage", || assert_eq!(parallelism(), 1));
        with_threads("3", || assert_eq!(parallelism(), 3));
    }

    #[test]
    fn shard_ranges_tile_every_grid() {
        for n in [0usize, 1, 5, 7, 31, 32] {
            for count in [1usize, 2, 3, 5, 8, 40] {
                let mut covered = Vec::new();
                let mut sizes = Vec::new();
                for index in 0..count {
                    let r = Shard { count, index }.range(n);
                    sizes.push(r.len());
                    covered.extend(r);
                }
                // Contiguous tiling of 0..n in shard order, balanced to
                // within one item.
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} count={count}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "n={n} count={count} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn shard_env_defaults_and_validates() {
        with_env(&[("ACCELFLOW_SHARDS", "3"), ("ACCELFLOW_SHARD_INDEX", "2")], || {
            assert_eq!(Shard::from_env(), Shard { count: 3, index: 2 });
        });
        with_env(&[("ACCELFLOW_SHARDS", "0"), ("ACCELFLOW_SHARD_INDEX", "0")], || {
            assert!(Shard::from_env().is_whole(), "count clamps up to 1");
        });
    }

    #[test]
    fn out_of_range_shard_index_is_rejected() {
        // catch_unwind instead of should_panic so with_env still
        // restores the process-global vars afterwards.
        with_env(&[("ACCELFLOW_SHARDS", "2"), ("ACCELFLOW_SHARD_INDEX", "2")], || {
            assert!(std::panic::catch_unwind(Shard::from_env).is_err());
        });
    }

    #[test]
    fn sharded_map_concatenates_to_the_whole() {
        let inputs: Vec<u64> = (0..17).collect();
        let whole: Vec<(usize, u64)> = inputs.iter().enumerate().map(|(i, x)| (i, x * 3)).collect();
        let mut merged = Vec::new();
        for index in 0..4 {
            with_env(
                &[
                    ("ACCELFLOW_SHARDS", "4"),
                    ("ACCELFLOW_SHARD_INDEX", &index.to_string()),
                    ("ACCELFLOW_THREADS", "2"),
                ],
                || merged.extend(map_sharded(inputs.clone(), |x| x * 3)),
            );
        }
        assert_eq!(merged, whole);
    }
}
