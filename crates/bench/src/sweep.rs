//! Parallel sweep runner for independent simulations.
//!
//! The paper's evaluation is embarrassingly parallel: every figure is a
//! set of *independent* single-threaded simulations (policy × load ×
//! seed), so the harness fans them out across OS threads and collects
//! the results **in input order**. Each simulation still runs on one
//! thread with its own seeded RNG, so every result is bit-for-bit
//! identical to a sequential run — parallelism exists only *across*
//! simulations, never within one (see DESIGN.md, "Parallel harness").
//!
//! Thread count comes from `ACCELFLOW_THREADS`, defaulting to
//! [`std::thread::available_parallelism`]. `ACCELFLOW_THREADS=1`
//! degrades to a plain sequential loop with no threads spawned.
//!
//! Nested sweeps (a parallel figure loop whose body calls the parallel
//! [`max_throughput`](crate::harness::max_throughput) search) run their
//! inner layer sequentially, so the total thread count stays bounded by
//! the configured parallelism instead of multiplying per level.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// True on sweep worker threads; makes nested sweeps sequential.
    static IN_SWEEP: Cell<bool> = const { Cell::new(false) };
}

/// The sweep's worker-thread budget: `ACCELFLOW_THREADS` if set (values
/// below 1 are treated as 1), else the machine's available parallelism.
pub fn parallelism() -> usize {
    match std::env::var("ACCELFLOW_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Whether the current thread is already inside a sweep worker.
pub fn in_sweep() -> bool {
    IN_SWEEP.with(|f| f.get())
}

/// Applies `f` to every input, returning outputs in input order.
///
/// Runs across up to [`parallelism`] worker threads; falls back to a
/// plain sequential loop when only one thread is configured, when there
/// are fewer than two inputs, or when called from inside another sweep
/// (nested parallelism would multiply thread counts).
///
/// # Determinism
///
/// `f` is invoked exactly once per input and outputs are returned in
/// input order, so for any `f` whose result depends only on its input
/// (which holds for every simulation in this repo: seeded RNG, no
/// shared mutable state) the result vector is identical — bit for bit —
/// to `inputs.into_iter().map(f).collect()`.
pub fn map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = parallelism().min(inputs.len());
    if threads <= 1 || in_sweep() {
        return inputs.into_iter().map(f).collect();
    }

    let n = inputs.len();
    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let outputs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let outputs = &outputs;
    let next = &next;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                IN_SWEEP.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = slots[i]
                        .lock()
                        .expect("sweep input slot poisoned")
                        .take()
                        .expect("sweep input claimed twice");
                    let out = f(input);
                    *outputs[i].lock().expect("sweep output slot poisoned") = Some(out);
                }
            });
        }
    });

    outputs
        .iter()
        .map(|m| {
            m.lock()
                .expect("sweep output slot poisoned")
                .take()
                .expect("sweep worker left an output empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Helper: run `body` with `ACCELFLOW_THREADS` pinned, restoring
    /// the prior value afterwards. Serialized via a lock because env
    /// vars are process-global.
    fn with_threads(n: &str, body: impl FnOnce()) {
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var("ACCELFLOW_THREADS").ok();
        std::env::set_var("ACCELFLOW_THREADS", n);
        body();
        match prev {
            Some(v) => std::env::set_var("ACCELFLOW_THREADS", v),
            None => std::env::remove_var("ACCELFLOW_THREADS"),
        }
    }

    #[test]
    fn preserves_input_order() {
        with_threads("4", || {
            let inputs: Vec<u64> = (0..64).collect();
            let out = map(inputs.clone(), |x| x * x);
            let expect: Vec<u64> = inputs.iter().map(|x| x * x).collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn single_thread_fallback_spawns_no_workers() {
        with_threads("1", || {
            // Sequential fallback runs f on the caller's thread, so a
            // thread-local write from f is visible here afterwards.
            thread_local! {
                static TOUCHED: Cell<u32> = const { Cell::new(0) };
            }
            TOUCHED.with(|t| t.set(0));
            let out = map(vec![1u32, 2, 3], |x| {
                TOUCHED.with(|t| t.set(t.get() + 1));
                x + 10
            });
            assert_eq!(out, vec![11, 12, 13]);
            assert_eq!(TOUCHED.with(|t| t.get()), 3, "must run on caller thread");
        });
    }

    #[test]
    fn parallel_equals_sequential() {
        // The determinism contract at the sweep level: same closure,
        // same inputs, same outputs, independent of thread count.
        let work = |seed: u64| {
            // A deterministic mini-workload (xorshift walk).
            let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let inputs: Vec<u64> = (0..32).collect();
        let mut seq = Vec::new();
        with_threads("1", || seq = map(inputs.clone(), work));
        let mut par = Vec::new();
        with_threads("8", || par = map(inputs.clone(), work));
        assert_eq!(seq, par);
    }

    #[test]
    fn each_input_runs_exactly_once() {
        with_threads("8", || {
            let calls = AtomicU64::new(0);
            let out = map((0..100u64).collect(), |x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x
            });
            assert_eq!(calls.load(Ordering::Relaxed), 100);
            assert_eq!(out.len(), 100);
        });
    }

    #[test]
    fn nested_sweeps_run_sequentially() {
        with_threads("4", || {
            let out = map(vec![0u32, 1, 2, 3], |outer| {
                assert!(in_sweep() || parallelism() == 1);
                // The inner sweep must not spawn another thread layer.
                let inner = map(vec![10u32, 20], |x| {
                    assert!(in_sweep() || parallelism() == 1);
                    x + outer
                });
                inner.iter().sum::<u32>()
            });
            assert_eq!(out, vec![30, 32, 34, 36]);
        });
    }

    #[test]
    fn empty_and_singleton_inputs() {
        with_threads("4", || {
            let empty: Vec<u32> = map(Vec::new(), |x: u32| x);
            assert!(empty.is_empty());
            assert_eq!(map(vec![7u32], |x| x * 2), vec![14]);
        });
    }

    #[test]
    fn env_parsing_clamps_to_one() {
        with_threads("0", || assert_eq!(parallelism(), 1));
        with_threads("garbage", || assert_eq!(parallelism(), 1));
        with_threads("3", || assert_eq!(parallelism(), 3));
    }
}
