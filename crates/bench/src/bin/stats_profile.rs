//! Replays the paper's headline workload shapes with telemetry on and
//! writes a Perfetto-loadable Chrome trace plus a per-component
//! latency-breakdown table for each.
//!
//! Two runs, mirroring `stats_audit`:
//!
//! 1. Fig 11 shape: the eight SocialNetwork services under bursty
//!    Alibaba-like arrivals, AccelFlow policy.
//! 2. Fig 14 shape: fixed-load Poisson with per-request SLO slack,
//!    AccelFlow-Deadline policy.
//!
//! Each run validates its own exported JSON against the Chrome
//! `trace_event` schema before writing it; a malformed trace exits
//! non-zero so CI can gate on the exporter. Traces land in
//! `results/trace_fig11.json` and `results/trace_fig14.json` — open
//! them at <https://ui.perfetto.dev>. Scale via `ACCELFLOW_DURATION_MS`
//! / `ACCELFLOW_RPS` / `ACCELFLOW_SEED` as usual.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::table::{us, Table};
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_core::stats::RunReport;
use accelflow_sim::telemetry::validate_chrome_trace;
use accelflow_workloads::socialnetwork;

/// Sparkline ramp, dimmest to brightest.
const RAMP: &[char] = &['.', ':', '-', '=', '+', '*', '#', '@'];

fn print_profile(label: &str, path: &str, report: &RunReport) -> bool {
    let tel = &report.telemetry;
    println!(
        "\n=== {label}: {} completed, {} telemetry records ({} dropped) ===",
        report.completed(),
        tel.records.len(),
        tel.dropped,
    );

    // Per-component latency breakdown, busiest first.
    let mut t = Table::new(
        format!("{label}: per-component busy-time breakdown"),
        &[
            "component",
            "spans",
            "busy (us)",
            "mean (us)",
            "p99 (us)",
            "max (us)",
        ],
    );
    for row in tel.component_breakdown() {
        t.row(&[
            row.label.clone(),
            row.spans.to_string(),
            us(row.busy),
            us(row.mean),
            us(row.p99),
            us(row.max),
        ]);
    }
    t.print();

    // Textual timeline: one sparkline per utilization column, plus the
    // DMA-engine and live-request counters.
    if let (Some((first, _)), Some((last, _))) = (tel.samples.first(), tel.samples.last()) {
        println!(
            "timeline ({} samples, {} .. {}):",
            tel.samples.len(),
            first,
            last
        );
    }
    let interesting =
        |name: &str| name.starts_with("util%:") || name == "busy_dma" || name == "live_reqs";
    for (i, name) in tel.columns.iter().enumerate() {
        if !interesting(name) {
            continue;
        }
        let peak = tel.samples.iter().map(|(_, row)| row[i]).max().unwrap_or(0);
        if peak == 0 {
            continue; // nothing to draw
        }
        println!("  {:<12} |{}| peak {}", name, tel.sparkline(i, RAMP), peak);
    }

    // Validate before writing: a trace that fails the schema check is a
    // bug in the exporter, not a bad run.
    let json = tel.chrome_trace();
    match validate_chrome_trace(&json) {
        Ok(summary) => {
            if let Err(e) = std::fs::write(path, &json) {
                println!("  FAILED to write {path}: {e}");
                return false;
            }
            println!(
                "wrote {path}: {} events ({} spans, {} counters, {} instants, {} flow arrows)",
                summary.events, summary.spans, summary.counters, summary.instants, summary.flows,
            );
            true
        }
        Err(e) => {
            println!("  INVALID chrome trace for {label}: {e}");
            false
        }
    }
}

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    std::fs::create_dir_all("results").expect("create results/");
    let mut ok = true;

    // Fig 11 shape: shared bursty arrivals, AccelFlow.
    let arrivals = harness::shared_arrivals(&services, scale);
    println!(
        "fig11 shape: {} arrivals over {} at {} rps/service, telemetry on",
        arrivals.len(),
        scale.duration,
        scale.rps
    );
    let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
    cfg.telemetry = true;
    let report = Machine::run_arrivals(&cfg, &services, arrivals, scale.duration, scale.seed);
    ok &= print_profile("fig11/AccelFlow", "results/trace_fig11.json", &report);

    // Fig 14 shape: Poisson with SLO deadlines, AccelFlow-Deadline.
    let mut slo_services = services.clone();
    for s in &mut slo_services {
        s.slo_slack = Some(5.0);
    }
    let mut cfg = MachineConfig::new(Policy::AccelFlowDeadline);
    cfg.warmup = scale.warmup;
    cfg.telemetry = true;
    let report = Machine::run_workload(&cfg, &slo_services, scale.rps, scale.duration, scale.seed);
    ok &= print_profile("fig14/AccelFlow-DL", "results/trace_fig14.json", &report);

    if ok {
        println!("\nboth traces schema-valid; load them at https://ui.perfetto.dev");
    } else {
        println!("\ntrace export failed");
        std::process::exit(1);
    }
}
