//! Extension (paper §V-1: "more advanced policies could process the
//! entries based on their Priority field"): priority scheduling in the
//! input dispatchers — a high-priority service sharing a lean ensemble
//! with bulk traffic.

use accelflow_accel::dispatcher::QueuePolicy;
use accelflow_bench::table::Table;
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

fn main() {
    let mut latency_critical = socialnetwork::uniq_id();
    latency_critical.priority = 7;
    let bulk = socialnetwork::compose_post();
    let services = vec![latency_critical, bulk];

    let mut t = Table::new(
        "Priority scheduling on a lean (2-PE) ensemble",
        &[
            "dispatcher",
            "UniqId mean (us)",
            "UniqId p99 (us)",
            "CPost p99 (us)",
        ],
    );
    for (name, policy) in [
        ("FIFO", QueuePolicy::Fifo),
        ("priority", QueuePolicy::Priority),
    ] {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(5);
        cfg.arch.pes_per_accelerator = 2;
        cfg.queue_policy_override = Some(policy);
        let r = Machine::run_workload(&cfg, &services, 30_000.0, SimDuration::from_millis(80), 3);
        t.row(&[
            name.to_string(),
            format!("{:.1}", r.per_service[0].mean().as_micros_f64()),
            format!("{:.1}", r.per_service[0].p99().as_micros_f64()),
            format!("{:.0}", r.per_service[1].p99().as_micros_f64()),
        ]);
    }
    t.print();
    println!("High-priority entries jump the input queues; bulk traffic absorbs the delay.");
}
