//! Fig 17: breakdown of a service's execution time in AccelFlow (CPU,
//! accelerators, orchestration logic, communication), measured on an
//! unloaded system — plus RELIEF's orchestration share for contrast.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let mut scale = Scale::from_env();
    scale.rps = 120.0; // unloaded: one request at a time in expectation
    let af = harness::run_poisson(Policy::AccelFlow, &services, scale.rps, scale);
    let relief = harness::run_poisson(Policy::Relief, &services, scale.rps, scale);

    let mut t = Table::new(
        "Fig 17: AccelFlow on-server execution-time breakdown (unloaded)",
        &[
            "service",
            "CPU",
            "accelerators",
            "orchestration",
            "communication",
        ],
    );
    let mut orch_avg = 0.0;
    for s in &af.per_service {
        let b = &s.breakdown;
        let total = b.on_server().as_secs_f64().max(1e-12);
        orch_avg += b.orchestration.as_secs_f64() / total / af.per_service.len() as f64;
        t.row(&[
            s.name.clone(),
            pct(b.cpu.as_secs_f64() / total),
            pct(b.accel.as_secs_f64() / total),
            pct(b.orchestration.as_secs_f64() / total),
            pct(b.communication.as_secs_f64() / total),
        ]);
    }
    t.print();
    let relief_orch = relief.total_breakdown().orchestration_fraction();
    println!(
        "AccelFlow orchestration share: {} (paper {}); RELIEF: {} (paper ~{})",
        pct(orch_avg),
        pct(paper::FIG17_ORCH_SHARE),
        pct(relief_orch),
        pct(paper::FIG17_RELIEF_ORCH_SHARE),
    );
}
