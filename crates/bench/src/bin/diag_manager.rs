//! Diagnostic: centralized-manager load per Fig 13 ablation rung —
//! useful when re-calibrating manager occupancy constants.
use accelflow_bench::harness::{self, Scale};
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);
    for p in Policy::ABLATION {
        let r = harness::run_policy(p, &services, arrivals.clone(), scale);
        let util = r.totals.manager_busy.as_secs_f64() / scale.duration.as_secs_f64();
        println!(
            "{:<12} p99 {:>8.0}us mgr-jobs {:>9} mgr-booked-util {:>6.3} completed {}",
            p.name(),
            harness::avg_p99(&r),
            r.totals.manager_jobs,
            util,
            r.completed()
        );
    }
}
