//! Fig 16: P99 tail latency of serverless functions (FunctionBench
//! stand-ins) under Azure-like bursty invocations, for Non-acc,
//! RELIEF, and AccelFlow.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_trace::templates::TraceLibrary;
use accelflow_workloads::{arrivals, serverless};

fn main() {
    let functions = serverless::all();
    let mut scale = Scale::from_env();
    scale.rps = std::env::var("ACCELFLOW_RPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_500.0);
    let lib = TraceLibrary::standard();
    let timing =
        ServiceTimeModel::calibrated(accelflow_arch::config::ArchConfig::icelake().core_clock);
    // Azure invocation rates are heavily skewed toward short functions
    // (most production functions run for milliseconds or less), so the
    // short functions get proportionally higher rates.
    let weights = [10.0, 1.5, 0.4, 0.8, 5.0]; // ImgRot, MLServe, VidProc, DocConv, ApiAgg
    let mut arr = Vec::new();
    for (i, (f, w)) in functions.iter().zip(weights).enumerate() {
        let sub = arrivals::azure_like_arrivals(
            std::slice::from_ref(f),
            &lib,
            &timing,
            scale.rps * w,
            scale.duration,
            scale.seed + i as u64,
        );
        arr.extend(sub.into_iter().map(|mut a| {
            a.service = accelflow_core::request::ServiceId(i);
            a
        }));
    }
    arr.sort_by_key(|a| a.at);
    println!("{} invocations over {}", arr.len(), scale.duration);

    let policies = [Policy::NonAcc, Policy::Relief, Policy::AccelFlow];
    let mut reports = Vec::new();
    for p in policies {
        let r = harness::run_policy(p, &functions, arr.clone(), scale);
        reports.push(r);
    }
    let mut t = Table::new(
        "Fig 16: serverless P99 (us)",
        &["function", "Non-acc", "RELIEF", "AccelFlow", "AF vs RELIEF"],
    );
    let mut reds = Vec::new();
    for (i, f) in functions.iter().enumerate() {
        let p99: Vec<f64> = reports
            .iter()
            .map(|r| r.per_service[i].p99().as_micros_f64())
            .collect();
        let red = 1.0 - p99[2] / p99[1];
        reds.push(red);
        t.row(&[
            f.name.clone(),
            format!("{:.0}", p99[0]),
            format!("{:.0}", p99[1]),
            format!("{:.0}", p99[2]),
            pct(red),
        ]);
    }
    let avg = reds.iter().sum::<f64>() / reds.len() as f64;
    t.row(&[
        "AVERAGE".into(),
        String::new(),
        String::new(),
        String::new(),
        pct(avg),
    ]);
    t.row(&[
        "paper".into(),
        String::new(),
        String::new(),
        String::new(),
        pct(paper::FIG16_VS_RELIEF),
    ]);
    t.print();
}
