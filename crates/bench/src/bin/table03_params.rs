//! Table III: the architectural parameters in force.

use accelflow_arch::config::ArchConfig;
use accelflow_bench::table::Table;

fn main() {
    let c = ArchConfig::icelake();
    let mut t = Table::new(
        "Table III: architectural parameters",
        &["parameter", "value", "paper"],
    );
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "cores",
            format!("{} @ {}", c.cores, c.core_clock),
            "36 @ 2.4GHz",
        ),
        (
            "accel queues",
            format!(
                "{} in / {} out",
                c.input_queue_entries, c.output_queue_entries
            ),
            "64 in / 64 out",
        ),
        (
            "queue entry inline",
            format!("{} B", c.queue_entry_inline_bytes),
            "2 KB",
        ),
        ("A-DMA engines", c.dma_engines.to_string(), "10"),
        ("PEs / accelerator", c.pes_per_accelerator.to_string(), "8"),
        (
            "scratchpad / PE",
            format!("{} KB", c.scratchpad_bytes / 1024),
            "64 KB",
        ),
        (
            "queue->scratchpad",
            format!(
                "{} + {:.0} GB/s",
                c.queue_to_scratchpad_latency,
                c.queue_to_scratchpad_bw / 1e9
            ),
            "10 ns, 100 GB/s",
        ),
        (
            "notification",
            format!("{} cycles", c.notification_cycles),
            "avg 80 cycles",
        ),
        (
            "intra-chiplet mesh",
            format!(
                "{} cycles/hop, {} B links",
                c.mesh_hop_cycles, c.mesh_link_bytes
            ),
            "3 cycles/hop, 16B",
        ),
        (
            "inter-chiplet",
            format!("{} cycles", c.inter_chiplet_cycles),
            "60 cycles",
        ),
        (
            "memory BW",
            format!("{:.1} GB/s", c.memory_bw / 1e9),
            "4 x 102.4 GB/s",
        ),
        (
            "accel TLB",
            format!("{} entries, {}-way", c.accel_tlb_entries, c.accel_tlb_ways),
            "2048, 8-way (L2/IOTLB)",
        ),
    ];
    for (k, v, p) in rows {
        t.row(&[k.to_string(), v, p.to_string()]);
    }
    t.print();
}
