//! Diagnostic: latency-over-time view of the bursty headline workload.
//!
//! Buckets completions into 4 ms windows and renders a sparkline of
//! each bucket's p95 latency for AccelFlow and RELIEF, making the
//! burst-driven tail behavior visible.

use accelflow_bench::harness::{self, Scale};
use accelflow_core::policy::Policy;
use accelflow_sim::stats::TimeSeries;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

const BARS: [char; 8] = [
    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}',
];

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);
    let bucket = SimDuration::from_millis(4);

    // Arrival-rate sparkline.
    let mut arr_series = TimeSeries::new(bucket, scale.duration);
    for a in &arrivals {
        arr_series.record(a.at, 1);
    }
    println!(
        "arrivals/4ms: {}",
        arr_series.sparkline(&BARS, |t, i| t.count(i) as f64)
    );

    for policy in [Policy::AccelFlow, Policy::Relief] {
        let mut cfg = harness::machine_config(policy, scale);
        cfg.sample_latencies = true;
        let r = accelflow_core::machine::Machine::run_arrivals(
            &cfg,
            &services,
            arrivals.clone(),
            scale.duration,
            scale.seed,
        );
        let mut ts = TimeSeries::new(bucket, scale.duration);
        let mut peak = 0.0f64;
        for s in &r.per_service {
            for &(at, lat) in &s.samples {
                ts.record(at, lat.as_picos());
            }
        }
        for i in 0..ts.buckets() {
            if let Some(p) = ts.percentile(i, 95.0) {
                peak = peak.max(p as f64 / 1e6);
            }
        }
        println!(
            "{:<10} p95: {}  (peak {:.0} us)",
            policy.name(),
            ts.sparkline(&BARS, |t, i| t.percentile(i, 95.0).unwrap_or(0) as f64),
            peak
        );
    }
    println!();
    println!("Bursts (tall arrival bars) line up with tail spikes; RELIEF's");
    println!("manager amplifies them far more than AccelFlow's dispatchers.");
}
