//! Extension: overflow-area sizing (paper §IV-A provisions an overflow
//! area per input queue; §VII-B6 reports how often it is exercised).
//! Sweeps the overflow capacity on a lean ensemble under heavy load.

use accelflow_bench::sweep;
use accelflow_bench::table::{pct, Table};
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = vec![socialnetwork::read_home_timeline(), socialnetwork::login()];
    let sizes = [0usize, 8, 64, 256];
    let reports = sweep::map(sizes.to_vec(), |overflow| {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(5);
        cfg.arch.pes_per_accelerator = 2;
        cfg.arch.input_queue_entries = 8;
        cfg.arch.overflow_entries = overflow;
        Machine::run_workload(&cfg, &services, 40_000.0, SimDuration::from_millis(60), 9)
    });

    let mut t = Table::new(
        "Overflow-area sizing (2-PE ensemble, heavy load)",
        &[
            "overflow entries",
            "overflows",
            "rejected->fallback",
            "fallback share",
            "p99 (us)",
        ],
    );
    for (&overflow, r) in sizes.iter().zip(&reports) {
        let p99: f64 = r
            .per_service
            .iter()
            .map(|s| s.p99().as_micros_f64())
            .sum::<f64>()
            / r.per_service.len() as f64;
        t.row(&[
            overflow.to_string(),
            r.totals.overflows.to_string(),
            r.totals.fallbacks.to_string(),
            pct(r.fallback_fraction()),
            format!("{p99:.0}"),
        ]);
    }
    t.print();
    println!("A larger overflow area trades CPU fallbacks for queueing: fallbacks");
    println!("drop as the area grows, and the tail reflects the queue depth.");
}
