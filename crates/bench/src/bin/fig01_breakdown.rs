//! Fig 1: execution-time breakdown of SocialNetwork service
//! invocations on the Non-acc server (CPU-equivalent attribution per
//! tax category), with absolute unloaded execution times.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_trace::kind::AccelKind;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let mut scale = Scale::from_env();
    scale.rps = 400.0; // unloaded: Fig 1 measures service composition
    let report = harness::run_poisson(Policy::NonAcc, &services, scale.rps, scale);

    let cat = |shares: &[f64; 9], a: AccelKind, b: Option<AccelKind>| {
        shares[a.id() as usize] + b.map(|k| shares[k.id() as usize]).unwrap_or(0.0)
    };

    let mut table = Table::new(
        "Fig 1: Non-acc execution-time breakdown",
        &[
            "service",
            "exec (us)",
            "TCP",
            "(De)Encr",
            "RPC",
            "(De)Ser",
            "(De)Cmp",
            "LdB",
            "AppLogic",
        ],
    );
    let mut avg = [0.0f64; 7];
    for s in &report.per_service {
        let (shares, app) = s.fig1_shares();
        use AccelKind::*;
        let row = [
            cat(&shares, Tcp, None),
            cat(&shares, Encr, Some(Decr)),
            cat(&shares, Rpc, None),
            cat(&shares, Ser, Some(Dser)),
            cat(&shares, Cmp, Some(Dcmp)),
            cat(&shares, Ldb, None),
            app,
        ];
        for (a, r) in avg.iter_mut().zip(row) {
            *a += r / report.per_service.len() as f64;
        }
        table.row(&[
            s.name.clone(),
            format!("{:.0}", s.mean().as_micros_f64()),
            pct(row[0]),
            pct(row[1]),
            pct(row[2]),
            pct(row[3]),
            pct(row[4]),
            pct(row[5]),
            pct(row[6]),
        ]);
    }
    table.row(&[
        "AVERAGE".into(),
        String::new(),
        pct(avg[0]),
        pct(avg[1]),
        pct(avg[2]),
        pct(avg[3]),
        pct(avg[4]),
        pct(avg[5]),
        pct(avg[6]),
    ]);
    table.row(&[
        "paper avg".into(),
        String::new(),
        pct(paper::FIG1_SHARES[0].1),
        pct(paper::FIG1_SHARES[1].1),
        pct(paper::FIG1_SHARES[2].1),
        pct(paper::FIG1_SHARES[3].1),
        pct(paper::FIG1_SHARES[4].1),
        pct(paper::FIG1_SHARES[5].1),
        pct(paper::FIG1_SHARES[6].1),
    ]);
    table.print();
}
