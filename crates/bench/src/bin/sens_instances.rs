//! Extension: accelerator instance-count sensitivity (paper §IV-A
//! provisions "one or more instances of all the accelerators"; the
//! Enqueue retry loop spans instances of a type). Sweeps instance
//! count on a lean per-instance configuration.

use accelflow_bench::sweep;
use accelflow_bench::table::{pct, Table};
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let counts = [1usize, 2, 4];
    let reports = sweep::map(counts.to_vec(), |instances| {
        let mut cfg = MachineConfig::new(Policy::AccelFlow);
        cfg.warmup = SimDuration::from_millis(5);
        cfg.instances_per_accel = instances;
        cfg.arch.pes_per_accelerator = 2;
        Machine::run_workload(&cfg, &services, 13_400.0, SimDuration::from_millis(80), 42)
    });

    let mut t = Table::new(
        "Instance-count sweep (2 PEs per instance, 13.4 kRPS/svc)",
        &[
            "instances/type",
            "avg p99 (us)",
            "mean (us)",
            "fallback share",
        ],
    );
    for (&instances, r) in counts.iter().zip(&reports) {
        let p99: f64 = r
            .per_service
            .iter()
            .map(|s| s.p99().as_micros_f64())
            .sum::<f64>()
            / r.per_service.len() as f64;
        let mean: f64 = r
            .per_service
            .iter()
            .map(|s| s.mean().as_micros_f64())
            .sum::<f64>()
            / r.per_service.len() as f64;
        t.row(&[
            instances.to_string(),
            format!("{p99:.0}"),
            format!("{mean:.0}"),
            pct(r.fallback_fraction()),
        ]);
    }
    t.print();
    println!("Four 2-PE instances match the capacity of the baseline 8-PE design");
    println!("while shortening per-instance queues.");
}
