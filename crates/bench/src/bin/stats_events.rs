//! §VII-B6: frequency of high-overhead events — overflow-area
//! fallbacks, page faults, TCP timeouts, TLB miss rates — under the
//! production-trace load and at peak load.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let avg = harness::run_poisson(Policy::AccelFlow, &services, scale.rps, scale);
    let seed = scale.seed;
    let peak_rps = harness::max_throughput(Policy::AccelFlow, &services, 5.0, seed);
    let peak = harness::run_poisson(Policy::AccelFlow, &services, peak_rps, scale);

    let invocations =
        |r: &accelflow_core::stats::RunReport| r.totals.accel_jobs.iter().sum::<u64>().max(1);
    let overflow_share = |r: &accelflow_core::stats::RunReport| {
        (r.totals.overflows + r.totals.fallbacks) as f64 / invocations(r) as f64
    };
    let mut t = Table::new(
        "§VII-B6: high-overhead events",
        &["event", "measured", "paper"],
    );
    t.row(&[
        "overflow/fallback share (trace load)".into(),
        pct(overflow_share(&avg)),
        pct(paper::OVERFLOW_SHARE_AVG),
    ]);
    t.row(&[
        "overflow/fallback share (peak)".into(),
        pct(overflow_share(&peak)),
        pct(paper::OVERFLOW_SHARE_PEAK),
    ]);
    t.row(&[
        "page faults".into(),
        format!(
            "{} ({:.2}/M invocations)",
            avg.totals.page_faults,
            avg.totals.page_faults as f64 / invocations(&avg) as f64 * 1e6
        ),
        "0.13 / M instructions".into(),
    ]);
    t.row(&[
        "TCP timeouts".into(),
        format!(
            "{} ({:.1}/M requests)",
            avg.totals.tcp_timeouts,
            avg.totals.tcp_timeouts as f64 / avg.completed().max(1) as f64 * 1e6
        ),
        "3.2 / M requests".into(),
    ]);
    let (hits, misses) = avg
        .totals
        .tlb
        .iter()
        .fold((0u64, 0u64), |(h, m), (a, b)| (h + a, m + b));
    t.row(&[
        "accelerator TLB miss ratio".into(),
        pct(misses as f64 / (hits + misses).max(1) as f64),
        "(paper: 3.4 D-MPKI)".into(),
    ]);
    t.row(&[
        "tenant scratchpad wipes".into(),
        avg.totals.tenant_wipes.to_string(),
        String::new(),
    ]);
    t.row(&[
        "past-time events clamped".into(),
        format!(
            "{} (trace load) / {} (peak)",
            avg.totals.clamped_events, peak.totals.clamped_events
        ),
        "0 in a healthy model".into(),
    ]);
    t.print();
}
