//! §VII-B5: energy and performance-per-watt — a fixed request batch
//! run at each architecture's own near-peak sustainable rate (the
//! paper runs the services "for 400K requests": faster architectures
//! drain the batch sooner, so they also spend less static energy).

use accelflow_bench::harness;
use accelflow_bench::paper;
use accelflow_bench::table::{pct, ratio, Table};
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let seed = std::env::var("ACCELFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    // Batch size per service (scaled down from the paper's 400K total).
    let batch_per_service = std::env::var("ACCELFLOW_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000u64);

    let mut rows = Vec::new();
    for p in [Policy::NonAcc, Policy::Relief, Policy::AccelFlow] {
        // Drive each architecture at 85% of its own sustainable peak.
        let peak = harness::max_throughput(p, &services, 5.0, seed);
        let rate = peak * 0.85;
        let duration = SimDuration::from_secs_f64(batch_per_service as f64 / rate);
        let mut cfg = MachineConfig::new(p);
        cfg.warmup = SimDuration::ZERO;
        let r = Machine::run_workload(&cfg, &services, rate, duration, seed);
        let e = r.totals.energy;
        let ppw = r.completed() as f64 / e.total_j;
        println!(
            "  {:<10} rate {:>6.1} kRPS/svc  batch drained at {:>7.3}s  energy {:>7.1} J",
            p.name(),
            rate / 1000.0,
            r.ended_at.as_secs_f64(),
            e.total_j
        );
        rows.push((p, e.total_j, e.avg_power_w, ppw));
    }
    let mut t = Table::new(
        "§VII-B5: energy for the batch at each architecture's peak",
        &["architecture", "energy (J)", "avg power (W)", "req/J"],
    );
    for (p, j, w, ppw) in &rows {
        t.row(&[
            p.name().to_string(),
            format!("{j:.1}"),
            format!("{w:.0}"),
            format!("{ppw:.0}"),
        ]);
    }
    t.print();

    let energy = |p: Policy| rows.iter().find(|(q, ..)| *q == p).unwrap().1;
    let ppw = |p: Policy| rows.iter().find(|(q, ..)| *q == p).unwrap().3;
    let mut t = Table::new("§VII-B5 ratios", &["comparison", "measured", "paper"]);
    t.row(&[
        "energy reduction vs Non-acc".into(),
        pct(1.0 - energy(Policy::AccelFlow) / energy(Policy::NonAcc)),
        pct(paper::ENERGY_REDUCTION_VS_NONACC),
    ]);
    t.row(&[
        "perf/W vs Non-acc".into(),
        ratio(ppw(Policy::AccelFlow) / ppw(Policy::NonAcc)),
        ratio(paper::PERF_PER_WATT_VS_NONACC),
    ]);
    t.row(&[
        "perf/W vs RELIEF".into(),
        ratio(ppw(Policy::AccelFlow) / ppw(Policy::Relief)),
        ratio(paper::PERF_PER_WATT_VS_RELIEF),
    ]);
    t.print();
}
