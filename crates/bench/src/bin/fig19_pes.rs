//! Fig 19: P99 tail latency with 2, 4, or 8 PEs per accelerator, plus
//! the text's fallback rates, deadline misses, and throughput deltas.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::sweep;
use accelflow_bench::table::{pct, Table};
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);

    let mut slo_services = services.clone();
    for s in &mut slo_services {
        s.slo_slack = Some(5.0);
    }

    // Each PE count needs a latency run and an SLO-bounded throughput
    // search; all six simulations fan out through one sweep.
    let pe_counts = [8usize, 4, 2];
    let rows = sweep::map(pe_counts.to_vec(), |pes| {
        let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
        cfg.arch.pes_per_accelerator = pes;
        let r = Machine::run_arrivals(
            &cfg,
            &slo_services,
            arrivals.clone(),
            scale.duration,
            scale.seed,
        );
        let p99 = harness::avg_p99(&r);
        let fallback = r.fallback_fraction();
        let misses: u64 = r.per_service.iter().map(|s| s.deadline_misses).sum();
        let completed = r.completed().max(1);

        let mut tcfg = MachineConfig::new(Policy::AccelFlow);
        tcfg.warmup = SimDuration::from_millis(5);
        tcfg.arch.pes_per_accelerator = pes;
        let tput = harness::max_throughput_with(&tcfg, &services, 5.0, scale.seed);
        (p99, fallback, misses, completed, tput)
    });

    let mut t = Table::new(
        "Fig 19: PE-count sensitivity",
        &[
            "PEs",
            "avg P99 (us)",
            "vs 8 PEs",
            "fallback %",
            "deadline misses %",
            "max kRPS",
            "tput drop",
        ],
    );
    let (base_p99, _, _, _, base_tput) = rows[0];
    for (&pes, &(p99, fallback, misses, completed, tput)) in pe_counts.iter().zip(&rows) {
        t.row(&[
            pes.to_string(),
            format!("{p99:.0}"),
            format!("{:+.1}%", (p99 / base_p99 - 1.0) * 100.0),
            pct(fallback),
            pct(misses as f64 / completed as f64),
            format!("{:.1}", tput / 1000.0),
            format!("{:+.1}%", (tput / base_tput - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!(
        "paper: P99 +{} (4 PEs) / +{} (2 PEs); deadline misses {} / {}; throughput -{} / -{}",
        pct(paper::FIG19_P99_4PES),
        pct(paper::FIG19_P99_2PES),
        pct(paper::FIG19_DEADLINE_MISSES[0].1),
        pct(paper::FIG19_DEADLINE_MISSES[1].1),
        pct(paper::FIG19_THROUGHPUT_DROP[0].1),
        pct(paper::FIG19_THROUGHPUT_DROP[1].1),
    );
}
