//! Fig 18: P99 tail latency for different organizations of the
//! accelerators into chiplets (1, 2, 3, 4, 6).

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::sweep;
use accelflow_bench::table::{pct, Table};
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);

    // One independent simulation per chiplet organization.
    let orgs = [1usize, 2, 3, 4, 6];
    let p99s = sweep::map(orgs.to_vec(), |chiplets| {
        let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
        cfg.chiplets = chiplets;
        let r = Machine::run_arrivals(
            &cfg,
            &services,
            arrivals.clone(),
            scale.duration,
            scale.seed,
        );
        harness::avg_p99(&r)
    });

    let mut t = Table::new(
        "Fig 18: avg P99 (us) vs chiplet organization",
        &["chiplets", "avg P99 (us)", "vs 2-chiplet"],
    );
    let mut two = 0.0;
    for (&chiplets, &p99) in orgs.iter().zip(&p99s) {
        if chiplets == 2 {
            two = p99;
        }
        let delta = if two > 0.0 {
            format!("{:+.1}%", (p99 / two - 1.0) * 100.0)
        } else {
            "-".into()
        };
        t.row(&[chiplets.to_string(), format!("{p99:.0}"), delta]);
    }
    t.print();
    println!(
        "paper: 2 -> 6 chiplets increases tail latency by {} on average",
        pct(paper::FIG18_2_TO_6_CHIPLETS)
    );
}
