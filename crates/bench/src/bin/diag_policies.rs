//! Diagnostic: per-policy latency, completion, utilization, and
//! breakdown summary — useful when re-calibrating the machine model.
use accelflow_bench::harness::{self, Scale};
use accelflow_core::policy::Policy;
use accelflow_trace::kind::AccelKind;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);
    for p in [
        Policy::Relief,
        Policy::CpuCentric,
        Policy::Cohort,
        Policy::AccelFlow,
        Policy::NonAcc,
    ] {
        let r = harness::run_policy(p, &services, arrivals.clone(), scale);
        let b = r.total_breakdown();
        let mgr_util = r.totals.manager_busy.as_secs_f64() / scale.duration.as_secs_f64();
        print!(
            "{:<12} p99 {:>9.0}us mean {:>7.0}us done {:.3} mgr-util {:.2} ",
            p.name(),
            harness::avg_p99(&r),
            harness::avg_mean(&r),
            r.completion_ratio(),
            mgr_util
        );
        print!(
            "cpu {:.0} acc {:.0} orch {:.0} comm {:.0} ext {:.0} (ms) ",
            b.cpu.as_secs_f64() * 1e3,
            b.accel.as_secs_f64() * 1e3,
            b.orchestration.as_secs_f64() * 1e3,
            b.communication.as_secs_f64() * 1e3,
            b.external.as_secs_f64() * 1e3
        );
        for k in [
            AccelKind::Tcp,
            AccelKind::Encr,
            AccelKind::Dser,
            AccelKind::Cmp,
        ] {
            print!("{}={:.2} ", k, r.totals.accel_utilization[k.id() as usize]);
        }
        println!("fallb {} ovfl {}", r.totals.fallbacks, r.totals.overflows);
    }
}
