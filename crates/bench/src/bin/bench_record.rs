//! Records the kernel performance trajectory: runs the event-kernel
//! microbenches plus fig11/fig14-shaped macro simulations and writes a
//! machine-readable `BENCH_<n>.json` snapshot (events/sec, wall-clock,
//! peak RSS, event counts, git revision). One snapshot is committed per
//! PR; CI re-runs the same benches and fails on a >10% events/sec
//! regression against the committed file. See `docs/BENCHMARKS.md`.
//!
//! Usage:
//!
//! ```text
//! bench_record record [--out BENCH_6.json] [--baseline-from FILE]
//! bench_record check BENCH_6.json
//! ```
//!
//! `record` measures and writes a snapshot; `--baseline-from` embeds a
//! previous snapshot's `current` section as this file's `baseline`
//! (the pre-change measurement the PR's improvement is judged
//! against). `check` re-measures and fails (exit 1) if any bench's
//! fresh events/sec falls more than the tolerance below the committed
//! `current` figures.
//!
//! Environment knobs: `ACCELFLOW_BENCH_MS` (macro-run window, default
//! 120), `ACCELFLOW_BENCH_REPS` (repetitions, best-of, default 3),
//! `ACCELFLOW_BENCH_TOLERANCE` (check slack, default 0.10),
//! `ACCELFLOW_SEED`.

use std::time::Instant;

use accelflow_bench::harness::{self, Scale};
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_sim::engine::{EventQueue, Model, Simulation};
use accelflow_sim::time::{SimDuration, SimTime};
use accelflow_workloads::socialnetwork;

/// One measured bench: total events delivered, best wall-clock, and
/// the derived throughput.
#[derive(Clone, Debug)]
struct Measure {
    name: &'static str,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
}

/// Self-rescheduling timer churn (the `engine/100k_events` criterion
/// shape, scaled up): every delivery schedules one follow-on at a
/// staggered delay, keeping a steady queue population.
struct Churn {
    left: u64,
}

impl Model for Churn {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
        if self.left > 0 {
            self.left -= 1;
            queue.schedule(
                SimDuration::from_nanos(u64::from(ev % 97) + 1),
                ev.wrapping_add(1),
            );
        }
    }
}

/// Discards every event: used to drain a pre-filled queue so the raw
/// schedule+pop cost is measured without model work.
struct Drain;

impl Model for Drain {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, _ev: u32, _queue: &mut EventQueue<u32>) {}
}

fn reps() -> u32 {
    std::env::var("ACCELFLOW_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Runs `run` (returning an event count) `reps()` times and keeps the
/// fastest repetition — best-of filters scheduler noise. `setup`
/// produces each repetition's input *outside* the timed section, and
/// lazily: one repetition's input is alive at a time, so peak RSS
/// reflects the simulation, not a stash of pre-cloned inputs.
fn best_of_with<T>(
    name: &'static str,
    mut setup: impl FnMut() -> T,
    mut run: impl FnMut(T) -> u64,
) -> Measure {
    let mut best: Option<Measure> = None;
    for _ in 0..reps() {
        let input = setup();
        let t0 = Instant::now();
        let events = run(input);
        let wall_s = t0.elapsed().as_secs_f64();
        let m = Measure {
            name,
            events,
            wall_s,
            events_per_sec: events as f64 / wall_s.max(1e-9),
        };
        if best
            .as_ref()
            .is_none_or(|b| m.events_per_sec > b.events_per_sec)
        {
            best = Some(m);
        }
    }
    let m = best.expect("at least one repetition");
    eprintln!(
        "  {:<24} {:>12} events  {:>8.3} s  {:>12.0} events/s",
        m.name, m.events, m.wall_s, m.events_per_sec
    );
    m
}

fn best_of(name: &'static str, mut f: impl FnMut() -> u64) -> Measure {
    best_of_with(name, || (), |()| f())
}

fn bench_engine_churn() -> Measure {
    best_of("engine_churn_1m", || {
        let mut sim = Simulation::new(Churn { left: 1_000_000 });
        sim.queue_mut().schedule(SimDuration::ZERO, 1);
        sim.run();
        sim.queue_mut().delivered()
    })
}

fn bench_schedule_pop() -> Measure {
    best_of("engine_schedule_pop_400k", || {
        let mut sim = Simulation::new(Drain);
        let q = sim.queue_mut();
        q.reserve(400_000);
        // Pseudo-random arrival pattern (LCG) with same-time bursts.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..400_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = SimTime::from_picos((x >> 20) % 1_000_000_000);
            q.schedule_at(at, i as u32);
        }
        sim.run();
        sim.queue_mut().delivered()
    })
}

/// Macro-run window in milliseconds of simulated time.
fn bench_ms() -> u64 {
    std::env::var("ACCELFLOW_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

fn seed() -> u64 {
    std::env::var("ACCELFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// One full machine simulation counting delivered events; arrivals are
/// generated outside the timed section.
fn machine_run(name: &'static str, policy: Policy, bursty: bool, rps: f64) -> Measure {
    let services = socialnetwork::all();
    let ms = bench_ms();
    let scale = Scale {
        duration: SimDuration::from_millis(ms),
        warmup: SimDuration::from_millis((ms / 8).max(2)),
        rps,
        seed: seed(),
    };
    let arrivals = if bursty {
        harness::shared_arrivals(&services, scale)
    } else {
        use accelflow_accel::timing::ServiceTimeModel;
        use accelflow_trace::templates::TraceLibrary;
        let lib = TraceLibrary::standard();
        let timing =
            ServiceTimeModel::calibrated(accelflow_arch::config::ArchConfig::icelake().core_clock);
        accelflow_core::poisson_arrivals(
            &services,
            &lib,
            &timing,
            scale.rps,
            scale.duration,
            scale.seed,
        )
    };
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = scale.warmup;
    // Pin the observability switches: the trajectory tracks the bare
    // kernel, not the audit/telemetry feature combinations.
    cfg.audit = false;
    cfg.telemetry = false;
    // Clone the arrival list once per repetition, outside the timed
    // section: the deep copy is bench plumbing, not kernel work — and
    // cloning lazily keeps one copy alive at a time (pre-cloning all
    // repetitions up front inflated peak RSS by reps × arrival list).
    best_of_with(
        name,
        || arrivals.clone(),
        |arr| {
            let mut events = 0u64;
            let _report = Machine::run_arrivals_observed(
                &cfg,
                &services,
                arr,
                scale.duration,
                scale.seed,
                |_, _| events += 1,
            );
            events
        },
    )
}

/// Open-loop arrival generation at the headline scale: one simulated
/// day (diurnal modulation) streamed through [`openloop_each`] and
/// *counted, not collected* — the generator must sustain 1M+ arrivals
/// without holding them, so this bench tracks generation throughput
/// and keeps the trajectory's peak-RSS figure honest. "Events" here
/// are generated arrivals, not kernel deliveries.
///
/// [`openloop_each`]: accelflow_workloads::openloop::openloop_each
fn bench_openloop_arrivals() -> Measure {
    use accelflow_accel::timing::ServiceTimeModel;
    use accelflow_trace::templates::TraceLibrary;
    use accelflow_workloads::openloop::{openloop_each, Diurnal};
    let services = socialnetwork::all();
    let lib = TraceLibrary::standard();
    let timing =
        ServiceTimeModel::calibrated(accelflow_arch::config::ArchConfig::icelake().core_clock);
    // all() has 8 services: 15.7k mean rps each over 8 s ≈ 1.0M total.
    let duration = SimDuration::from_millis(8_000);
    let process = Diurnal::day(duration, 0.8);
    best_of("openloop_1m_arrivals", || {
        let mut n = 0u64;
        openloop_each(
            &process,
            &services,
            &lib,
            &timing,
            15_700.0,
            duration,
            seed(),
            |_| n += 1,
        );
        n
    })
}

/// One full fig14-style throughput search with the warm-start mode
/// pinned: `warm` forks every probe from one shared prefix snapshot,
/// cold re-simulates the prefix per probe (`docs/CHECKPOINT.md`). The
/// machine is the determinism suite's narrow 2-core/1-PE box so the
/// search stays a few seconds; "events" is 1 (one search), so
/// `events_per_sec` is searches/second — the regression gate then
/// guards the search's wall-clock, and the warm/cold ratio is the
/// honest warm-start speedup quoted in `docs/BENCHMARKS.md`.
///
/// The warmup is stretched to 4 s of simulated conditioning — the
/// regime warm-starting exists for. At millisecond warmups the prefix
/// is noise next to the 80–2000 ms probe windows and the two modes
/// time within a few percent of each other (measured; see the
/// accounting in `docs/BENCHMARKS.md`).
fn bench_search(name: &'static str, warm: bool) -> Measure {
    let services = vec![socialnetwork::uniq_id()];
    let mut cfg = harness::machine_config(Policy::AccelFlow, Scale::quick());
    cfg.arch.cores = 2;
    cfg.arch.pes_per_accelerator = 1;
    cfg.warmup = SimDuration::from_millis(4000);
    best_of(name, || {
        let rps = harness::max_throughput_with_mode(&cfg, &services, 5.0, seed(), warm);
        assert!(rps > 0.0, "search found no sustainable load");
        1
    })
}

/// Peak resident set size in kB (`VmHWM`), or 0 where unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn run_all() -> Vec<Measure> {
    eprintln!(
        "bench_record: {} reps, macro window {} ms",
        reps(),
        bench_ms()
    );
    let only = std::env::var("ACCELFLOW_BENCH_ONLY").ok();
    let want = |name: &str| {
        only.as_deref()
            .is_none_or(|f| f.split(',').any(|n| n.trim() == name))
    };
    let mut out = Vec::new();
    if want("engine_churn_1m") {
        out.push(bench_engine_churn());
    }
    if want("engine_schedule_pop_400k") {
        out.push(bench_schedule_pop());
    }
    if want("fig11_shape") {
        out.push(machine_run(
            "fig11_shape",
            Policy::AccelFlow,
            true,
            13_400.0,
        ));
    }
    if want("fig14_shape") {
        out.push(machine_run(
            "fig14_shape",
            Policy::AccelFlow,
            false,
            8_000.0,
        ));
    }
    if want("fig14_shape_relief") {
        out.push(machine_run(
            "fig14_shape_relief",
            Policy::Relief,
            false,
            4_000.0,
        ));
    }
    if want("openloop_1m_arrivals") {
        out.push(bench_openloop_arrivals());
    }
    if want("fig14_search_warm") {
        out.push(bench_search("fig14_search_warm", true));
    }
    if want("fig14_search_cold") {
        out.push(bench_search("fig14_search_cold", false));
    }
    out
}

/// Renders one snapshot section (`"current"` / `"baseline"`) with each
/// bench on a single line, which keeps the file greppable and lets
/// `check` parse it without a JSON library.
fn render_section(rev: &str, rss_kb: u64, ms: &[Measure]) -> String {
    let mut s = String::new();
    s.push_str(&format!("    \"git_rev\": \"{rev}\",\n"));
    s.push_str(&format!("    \"peak_rss_kb\": {rss_kb},\n"));
    s.push_str("    \"benches\": {\n");
    for (i, m) in ms.iter().enumerate() {
        let comma = if i + 1 == ms.len() { "" } else { "," };
        s.push_str(&format!(
            "      \"{}\": {{\"events\": {}, \"wall_s\": {:.4}, \"events_per_sec\": {:.1}}}{}\n",
            m.name, m.events, m.wall_s, m.events_per_sec, comma
        ));
    }
    s.push_str("    }\n");
    s
}

/// One bench entry parsed back out of a snapshot file.
#[derive(Clone, Debug)]
struct ParsedBench {
    name: String,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
}

/// The numeric value following `"key":` in a single-line JSON object.
fn json_num(rest: &str, key: &str) -> Option<f64> {
    let after = rest.split(&format!("\"{key}\":")).nth(1)?;
    let tok: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    tok.parse().ok()
}

/// Extracts the full bench measurements from a named section of a
/// snapshot file written by [`render_section`].
fn parse_section(text: &str, section: &str) -> Vec<ParsedBench> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with(&format!("\"{section}\":")) {
            in_section = true;
            continue;
        }
        if in_section && (t.starts_with("\"current\":") || t.starts_with("\"baseline\":")) {
            break; // next section began
        }
        if !in_section {
            continue;
        }
        if let Some((name_part, rest)) = t.split_once("\": {\"events\"") {
            let name = name_part.trim_start_matches('"').to_string();
            let events = json_num(t, "events").unwrap_or(0.0) as u64;
            let wall_s = json_num(rest, "wall_s").unwrap_or(0.0);
            if let Some(events_per_sec) = json_num(rest, "events_per_sec") {
                out.push(ParsedBench {
                    name,
                    events,
                    wall_s,
                    events_per_sec,
                });
            }
        }
    }
    out
}

fn record(out: Option<String>, baseline_from: Option<String>) {
    let ms = run_all();
    let rss = peak_rss_kb();
    let rev = git_rev();
    let baseline = baseline_from.map(|p| {
        let text = std::fs::read_to_string(&p)
            .unwrap_or_else(|e| panic!("cannot read baseline file {p}: {e}"));
        let rev = text
            .lines()
            .skip_while(|l| !l.trim().starts_with("\"current\":"))
            .find_map(|l| l.trim().strip_prefix("\"git_rev\": \""))
            .map(|v| v.trim_end_matches("\",").to_string())
            .unwrap_or_else(|| "unknown".into());
        let rss = text
            .lines()
            .skip_while(|l| !l.trim().starts_with("\"current\":"))
            .find_map(|l| l.trim().strip_prefix("\"peak_rss_kb\": "))
            .and_then(|v| v.trim_end_matches(',').parse().ok())
            .unwrap_or(0);
        (parse_section(&text, "current"), rev, rss)
    });

    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str("  \"current\": {\n");
    json.push_str(&render_section(&rev, rss, &ms));
    json.push_str("  }");
    if let Some((benches, brev, brss)) = &baseline {
        json.push_str(",\n  \"baseline\": {\n");
        // Embed the baseline's full measurements verbatim — events and
        // wall-clock included, so `check` can verify the section is a
        // real measurement and not a zeroed husk.
        let bm: Vec<ParsedBench> = benches
            .iter()
            .filter(|b| ms.iter().any(|m| m.name == b.name.as_str()))
            .cloned()
            .collect();
        let mut s = String::new();
        s.push_str(&format!("    \"git_rev\": \"{brev}\",\n"));
        s.push_str(&format!("    \"peak_rss_kb\": {brss},\n"));
        s.push_str("    \"benches\": {\n");
        for (i, b) in bm.iter().enumerate() {
            let comma = if i + 1 == bm.len() { "" } else { "," };
            s.push_str(&format!(
                "      \"{}\": {{\"events\": {}, \"wall_s\": {:.4}, \"events_per_sec\": {:.1}}}{}\n",
                b.name, b.events, b.wall_s, b.events_per_sec, comma
            ));
        }
        s.push_str("    }\n");
        json.push_str(&s);
        json.push_str("  }");
        // Improvement ratio on the headline macro shape.
        if let (Some(cur), Some(base)) = (
            ms.iter().find(|m| m.name == "fig14_shape"),
            bm.iter().find(|b| b.name == "fig14_shape"),
        ) {
            if base.events_per_sec > 0.0 {
                json.push_str(&format!(
                    ",\n  \"fig14_speedup\": {:.2}",
                    cur.events_per_sec / base.events_per_sec
                ));
            }
        }
    }
    json.push_str("\n}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn check(path: &str) {
    let tol: f64 = std::env::var("ACCELFLOW_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10);
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let committed = parse_section(&text, "current");
    assert!(
        !committed.is_empty(),
        "no benches found in the committed snapshot {path}"
    );
    // Refuse snapshots whose baseline section is a zeroed husk: a
    // baseline with `events: 0` or `wall_s: 0.0` was never a real
    // measurement, so every comparison made against it is fiction.
    let corrupt: Vec<String> = parse_section(&text, "baseline")
        .iter()
        .filter(|b| b.events == 0 || b.wall_s <= 0.0)
        .map(|b| b.name.clone())
        .collect();
    if !corrupt.is_empty() {
        eprintln!(
            "corrupt baseline in {path}: zeroed events/wall_s for {}\n\
             (re-record with `bench_record record --baseline-from <real snapshot>`)",
            corrupt.join(", ")
        );
        std::process::exit(1);
    }
    let fresh = run_all();
    let mut failures = Vec::new();
    println!(
        "\n{:<24} {:>14} {:>14} {:>8}",
        "bench", "committed", "fresh", "ratio"
    );
    for b in &committed {
        let name = &b.name;
        let Some(f) = fresh.iter().find(|m| m.name == name.as_str()) else {
            failures.push(format!("{name}: bench missing from this build"));
            continue;
        };
        let ratio = f.events_per_sec / b.events_per_sec;
        println!(
            "{:<24} {:>14.0} {:>14.0} {:>7.2}x",
            name, b.events_per_sec, f.events_per_sec, ratio
        );
        if ratio < 1.0 - tol {
            failures.push(format!(
                "{name}: {:.0} events/s is {:.1}% below the committed {:.0}",
                f.events_per_sec,
                (1.0 - ratio) * 100.0,
                b.events_per_sec
            ));
        }
    }
    if failures.is_empty() {
        println!("\nbench check OK (tolerance {:.0}%)", tol * 100.0);
    } else {
        eprintln!("\nbench regression detected:\n  {}", failures.join("\n  "));
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            let mut out = None;
            let mut baseline_from = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out = it.next().cloned(),
                    "--baseline-from" => baseline_from = it.next().cloned(),
                    other => panic!("unknown flag {other}"),
                }
            }
            record(out, baseline_from);
        }
        Some("check") => {
            let path = args.get(1).expect("usage: bench_record check <file>");
            check(path);
        }
        _ => {
            eprintln!("usage: bench_record record [--out FILE] [--baseline-from FILE]");
            eprintln!("       bench_record check FILE");
            std::process::exit(2);
        }
    }
}
