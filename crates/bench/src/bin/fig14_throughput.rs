//! Fig 14: maximum throughput (the largest load that meets the SLO of
//! 5x the unloaded execution time) for the five architectures plus the
//! Ideal bound, and the extra throughput from deadline-aware
//! scheduling (§VII-A3).

use accelflow_bench::harness;
use accelflow_bench::paper;
use accelflow_bench::sweep;
use accelflow_bench::table::{pct, ratio, Table};
use accelflow_core::machine::MachineConfig;
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let seed = std::env::var("ACCELFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    let policies = [
        Policy::NonAcc,
        Policy::CpuCentric,
        Policy::Relief,
        Policy::Cohort,
        Policy::AccelFlow,
        Policy::Ideal,
    ];
    // Deadline-aware scheduling with per-request SLO slack (§IV-C).
    let mut slo_services = services.clone();
    for s in &mut slo_services {
        s.slo_slack = Some(5.0);
    }
    let mut cfg = MachineConfig::new(Policy::AccelFlowDeadline);
    cfg.warmup = SimDuration::from_millis(5);

    // Seven independent SLO-bounded searches (six policies plus the
    // deadline variant), fanned out as one sweep. Each inner search
    // runs sequentially on its worker (nested sweeps don't multiply
    // threads), so results match a fully sequential run bit for bit.
    let searches: Vec<Option<Policy>> = policies
        .iter()
        .map(|&p| Some(p))
        .chain(std::iter::once(None))
        .collect();
    let tputs = sweep::map(searches, |job| match job {
        Some(p) => harness::max_throughput(p, &services, 5.0, seed),
        None => harness::max_throughput_with(&cfg, &slo_services, 5.0, seed),
    });
    let dl = tputs[policies.len()];

    let mut results = Vec::new();
    let mut t = Table::new(
        "Fig 14: max throughput under SLO (kRPS per service)",
        &["architecture", "max kRPS/svc"],
    );
    for (p, &tput) in policies.iter().zip(&tputs) {
        println!(
            "  measured {:<12} {:>8.1} kRPS/service",
            p.name(),
            tput / 1000.0
        );
        t.row(&[p.name().to_string(), format!("{:.1}", tput / 1000.0)]);
        results.push((*p, tput));
    }
    t.row(&["AccelFlow+DL".into(), format!("{:.1}", dl / 1000.0)]);
    t.print();

    let get = |p: Policy| {
        results
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, v)| *v)
            .unwrap()
    };
    let af = get(Policy::AccelFlow);
    let mut t = Table::new("Fig 14 ratios", &["comparison", "measured", "paper"]);
    t.row(&[
        "AccelFlow vs Non-acc".into(),
        ratio(af / get(Policy::NonAcc)),
        ratio(paper::FIG14_VS_NONACC),
    ]);
    t.row(&[
        "AccelFlow vs RELIEF".into(),
        ratio(af / get(Policy::Relief)),
        ratio(paper::FIG14_VS_RELIEF),
    ]);
    t.row(&[
        "AccelFlow within Ideal".into(),
        pct(1.0 - af / get(Policy::Ideal)),
        format!("within {}", pct(paper::FIG14_WITHIN_IDEAL)),
    ]);
    t.row(&[
        "deadline scheduling extra".into(),
        ratio(dl / af),
        ratio(paper::FIG14_DEADLINE_EXTRA),
    ]);
    t.print();
}
