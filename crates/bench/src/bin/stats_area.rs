//! §VI: area overhead of AccelFlow — the McPAT-derived accounting.

use accelflow_arch::area::area_report;
use accelflow_arch::config::ArchConfig;
use accelflow_bench::table::{pct, Table};

fn main() {
    let r = area_report(&ArchConfig::icelake());
    let mut t = Table::new(
        "§VI: SoC area accounting (mm², 7nm-scaled)",
        &["component", "mm^2", "paper"],
    );
    t.row(&[
        "cores + private caches".into(),
        format!("{:.1}", r.cores.0),
        "83.1".into(),
    ]);
    t.row(&["LLC".into(), format!("{:.1}", r.llc.0), "38.2".into()]);
    t.row(&[
        "core network".into(),
        format!("{:.1}", r.core_network.0),
        "1.0".into(),
    ]);
    t.row(&[
        "nine accelerators (8 PEs each)".into(),
        format!("{:.1}", r.accelerators.0),
        "44.9".into(),
    ]);
    t.row(&[
        "queues + dispatchers".into(),
        format!("{:.1}", r.queues_dispatchers.0),
        "3.4".into(),
    ]);
    t.row(&[
        "10 A-DMA engines".into(),
        format!("{:.1}", r.dma_engines.0),
        "1.3".into(),
    ]);
    t.row(&[
        "accelerator network".into(),
        format!("{:.1}", r.accel_network.0),
        "0.4".into(),
    ]);
    t.row(&["TOTAL".into(), format!("{:.1}", r.total().0), "~173".into()]);
    t.print();

    let mut t = Table::new("§VI shares", &["metric", "measured", "paper"]);
    t.row(&[
        "ensemble share of SoC".into(),
        pct(r.ensemble_share()),
        "29.0%".into(),
    ]);
    t.row(&[
        "accelerators share".into(),
        pct(r.accelerator_share()),
        "26.1%".into(),
    ]);
    t.row(&[
        "AccelFlow orchestration overhead".into(),
        pct(r.orchestration_share()),
        "<=2.9%".into(),
    ]);
    t.print();
}
