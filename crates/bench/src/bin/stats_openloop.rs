//! Open-loop traffic sweep: scenario × control policy × cluster size.
//!
//! Drives the arrival generators of `accelflow_workloads::openloop`
//! (`docs/WORKLOADS.md`) through clusters running the online-control
//! subsystem (`accelflow_core::control`): token-bucket rate limiting,
//! live-request shedding, and the telemetry-feedback autoscaler. Every
//! cell reports SLO-window compliance (fraction of windows whose
//! completions stay ≥99% under the latency target), tail latency,
//! ingress rejections, and scaling actions. The invariant auditor is
//! forced on in every node; any violation or cluster-layer clamp exits
//! non-zero for CI.
//!
//! The machines are deliberately *narrow* (2 PEs per station, 0.25×
//! speedup, 4 instances per kind): one lit station saturates at the
//! diurnal peak while the fully-lit fleet does not, so provisioning
//! policy is visible in the compliance column.
//!
//! After the sweep, the headline experiment: a one-day diurnal
//! scenario (the day mapped onto the run window) with ≥1M open-loop
//! arrivals at default scale on a 4-node cluster, comparing static
//! lean provisioning against the reactive autoscaler.
//!
//! `ACCELFLOW_RPS` is the **per-node** per-service mean: the generated
//! stream scales with the fleet (`rps × nodes`), so every cell offers
//! the same work per node. Byte-deterministic at any
//! `ACCELFLOW_THREADS` (cells fan out over [`sweep::map`]; each run is
//! single-threaded on seeded streams).
//!
//! The sweep grid also shards across processes:
//! `ACCELFLOW_SHARDS`/`ACCELFLOW_SHARD_INDEX` give each process a
//! contiguous slice of the cells, and concatenating the shards' result
//! rows in shard order reproduces the unsharded table byte-for-byte
//! (`docs/CHECKPOINT.md`; CI diffs two shards against one). The
//! headline experiment only runs unsharded — it is one cross-policy
//! comparison, not a grid.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_bench::harness::{self, Scale};
use accelflow_bench::sweep;
use accelflow_core::cluster::{Cluster, ClusterConfig, ClusterReport};
use accelflow_core::control::{AutoscalerConfig, ControlConfig, RateLimit, SloTarget};
use accelflow_core::machine::MachineConfig;
use accelflow_core::policy::Policy;
use accelflow_core::Arrival;
use accelflow_sim::time::SimDuration;
use accelflow_trace::templates::TraceLibrary;
use accelflow_workloads::openloop::{
    ArrivalProcess, ColdStartStorm, CorrelatedBursts, Diurnal, FlashCrowd,
};
use accelflow_workloads::socialnetwork;

/// The two-service mix every cell runs (one tenant per service).
fn core_pair() -> Vec<accelflow_core::request::ServiceSpec> {
    vec![socialnetwork::uniq_id(), socialnetwork::login()]
}

/// Stations per accelerator kind (the autoscaler's actuation range).
const INSTANCES: usize = 4;
/// Fleet sizes swept.
const NODE_COUNTS: &[usize] = &[1, 4];
/// Per-request latency target for SLO windows.
const P99_TARGET: SimDuration = SimDuration::from_micros(1_000);

/// The traffic scenarios of the gallery (`docs/WORKLOADS.md`).
const SCENARIOS: &[&str] = &["diurnal", "flash", "bursts", "coldstart"];

/// The control policies compared.
const POLICIES: &[&str] = &["static_lean", "static_full", "autoscale", "throttle"];

fn generator(name: &str, duration: SimDuration, seed: u64) -> Box<dyn ArrivalProcess> {
    match name {
        "diurnal" => Box::new(Diurnal::day(duration, 0.8)),
        "flash" => Box::new(FlashCrowd::for_run(duration, 4.0)),
        "bursts" => Box::new(CorrelatedBursts::alibaba(duration, seed)),
        "coldstart" => Box::new(ColdStartStorm::azure(duration, seed)),
        other => unreachable!("unknown scenario {other}"),
    }
}

fn control(policy: &str, window: SimDuration, node_rps: f64) -> ControlConfig {
    let slo = Some(SloTarget {
        window,
        p99_target: P99_TARGET,
    });
    match policy {
        "static_lean" => ControlConfig {
            autoscaler: Some(AutoscalerConfig::static_at(1)),
            slo,
            ..ControlConfig::disabled()
        },
        "static_full" => ControlConfig {
            autoscaler: Some(AutoscalerConfig::static_at(INSTANCES)),
            slo,
            ..ControlConfig::disabled()
        },
        "autoscale" => ControlConfig {
            autoscaler: Some(AutoscalerConfig::reactive()),
            slo,
            ..ControlConfig::disabled()
        },
        "throttle" => ControlConfig {
            // Lean provisioning, but ingress holds each tenant to ~75%
            // of its mean share and sheds past a live ceiling — tail
            // windows stay healthy by refusing the overload instead of
            // absorbing it.
            autoscaler: Some(AutoscalerConfig::static_at(1)),
            rate_limit: Some(RateLimit {
                tokens_per_sec: 0.75 * node_rps,
                burst: 64.0,
            }),
            max_live: Some(512),
            slo,
        },
        other => unreachable!("unknown policy {other}"),
    }
}

/// The narrow node: one lit station saturates at scenario peaks.
fn node_config(scale: Scale, policy: &str, window: SimDuration, node_rps: f64) -> MachineConfig {
    let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
    cfg.audit = true;
    cfg.arch.pes_per_accelerator = 2;
    cfg.speedup_scale = 0.25;
    cfg.instances_per_accel = INSTANCES;
    cfg.control = control(policy, window, node_rps);
    cfg
}

/// Open-loop arrivals for one cell: the scenario modulates a mean of
/// `rps × nodes` per service (the fleet splits the stream).
fn arrivals_for(scenario: &str, scale: Scale, nodes: usize, duration: SimDuration) -> Vec<Arrival> {
    let services = core_pair();
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(
        harness::machine_config(Policy::AccelFlow, scale)
            .arch
            .core_clock,
    );
    let process = generator(scenario, duration, scale.seed);
    accelflow_workloads::openloop::openloop_arrivals(
        process.as_ref(),
        &services,
        &lib,
        &timing,
        scale.rps * nodes as f64,
        duration,
        scale.seed,
    )
}

fn run_cell(scenario: &str, policy: &str, nodes: usize, scale: Scale) -> ClusterReport {
    let duration = scale.duration;
    let window = SimDuration::from_picos((duration.as_picos() / 64).max(1_000_000));
    let node = node_config(scale, policy, window, scale.rps);
    let cfg = ClusterConfig::new(nodes, node);
    let arrivals = arrivals_for(scenario, scale, nodes, duration);
    Cluster::run_arrivals(&cfg, &core_pair(), arrivals, duration, scale.seed)
}

/// Prints one result row; returns false when audits or clamps dirty it.
fn report_row(label: &str, report: &ClusterReport) -> bool {
    let control = report.control();
    let violations: u64 = report
        .per_node
        .iter()
        .map(|r| r.audit.violation_count)
        .sum();
    println!(
        "{label} {:>9} {:>9} {:>7} {:>7} {:>6.1}% {:>10} {:>5} {:>5} {:>10}",
        control.admitted,
        control.rate_limited,
        control.shed,
        control.slo_windows,
        100.0 * control.slo_compliance(),
        format!("{}", report.p99()),
        control.scale_ups,
        control.scale_downs,
        violations,
    );
    let mut clean = violations == 0 && report.clamped == 0;
    for node in &report.per_node {
        for v in &node.audit.violations {
            println!("    [{}] at {}: {}", v.invariant, v.at, v.detail);
        }
    }
    if report.clamped > 0 {
        println!(
            "    cluster kernel clamped {} events (dispatcher time-travel bug)",
            report.clamped
        );
        clean = false;
    }
    clean
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "open-loop sweep: {} per-node rps/service (mean), {} window, audits on",
        scale.rps, scale.duration
    );
    println!(
        "{:<10} {:<12} {:>5} {:>9} {:>9} {:>7} {:>7} {:>7} {:>10} {:>5} {:>5} {:>10}",
        "scenario",
        "policy",
        "nodes",
        "admitted",
        "ratelim",
        "shed",
        "windows",
        "slo-ok",
        "p99",
        "up",
        "down",
        "violations"
    );

    let mut cells: Vec<(&str, &str, usize)> = Vec::new();
    for &scenario in SCENARIOS {
        for &policy in POLICIES {
            for &nodes in NODE_COUNTS {
                cells.push((scenario, policy, nodes));
            }
        }
    }
    let shard = sweep::Shard::from_env();
    if !shard.is_whole() {
        let range = shard.range(cells.len());
        println!(
            "shard {}/{}: cells {}..{} of {}",
            shard.index,
            shard.count,
            range.start,
            range.end,
            cells.len()
        );
    }
    let reports = sweep::map_sharded(cells.clone(), |(scenario, policy, nodes)| {
        run_cell(scenario, policy, nodes, scale)
    });

    let mut clean = true;
    for (i, report) in &reports {
        let (scenario, policy, nodes) = cells[*i];
        let label = format!("{scenario:<10} {policy:<12} {nodes:>5}");
        clean &= report_row(&label, report);
    }

    // The headline is one cross-policy comparison, not a grid cell:
    // a sharded launch runs only the grid slice and skips it.
    if !shard.is_whole() {
        if clean {
            println!("\nall nodes clean under the auditor (shard {})", shard.index);
            return;
        }
        println!("\ninvariant violations detected (shard {})", shard.index);
        std::process::exit(1);
    }

    // ----- headline: one-day diurnal, >=1M arrivals, 4 nodes -----
    //
    // The day maps onto a window 60x the sweep's; at the default scale
    // (13.4k rps/service/node over 160 ms) the 4-node stream carries
    // ~1.03M arrivals. Lean static provisioning saturates at the diurnal peak
    // while the autoscaler rides it, which shows up directly in the
    // SLO-window compliance gap.
    let day = SimDuration::from_picos(scale.duration.as_picos() * 60);
    let window = SimDuration::from_picos((day.as_picos() / 256).max(1_000_000));
    let nodes = 4usize;
    let arrivals = arrivals_for("diurnal", scale, nodes, day);
    let offered = arrivals.len();
    println!(
        "\nheadline: one-day diurnal, {} arrivals over {} on {} nodes",
        offered, day, nodes
    );
    let headline = sweep::map(vec!["static_lean", "autoscale"], |policy| {
        let node = node_config(scale, policy, window, scale.rps);
        let cfg = ClusterConfig::new(nodes, node);
        Cluster::run_arrivals(
            &cfg,
            &core_pair(),
            arrivals_for("diurnal", scale, nodes, day),
            day,
            scale.seed,
        )
    });
    drop(arrivals);
    let mut compliance = Vec::new();
    for (policy, report) in ["static_lean", "autoscale"].iter().zip(&headline) {
        let label = format!("{:<10} {policy:<12} {nodes:>5}", "diurnal-1d");
        clean &= report_row(&label, report);
        compliance.push(report.control().slo_compliance());
    }
    let (lean, auto) = (compliance[0], compliance[1]);
    println!(
        "\nautoscaler SLO-window compliance {:.1}% vs static-lean {:.1}% ({})",
        100.0 * auto,
        100.0 * lean,
        if auto > lean {
            "autoscaler improves compliance"
        } else {
            "no improvement at this scale"
        }
    );

    if clean {
        println!("\nall nodes clean under the auditor");
    } else {
        println!("\ninvariant violations detected");
        std::process::exit(1);
    }
}
