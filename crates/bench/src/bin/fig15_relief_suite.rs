//! Fig 15: maximum throughput of the coarse-grain image-processing and
//! RNN applications (the RELIEF gem5 suite stand-ins) under RELIEF and
//! AccelFlow orchestration.

use accelflow_bench::harness;
use accelflow_bench::paper;
use accelflow_bench::table::{ratio, Table};
use accelflow_core::policy::Policy;
use accelflow_workloads::relief_suite;

fn main() {
    let seed = std::env::var("ACCELFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let mut t = Table::new(
        "Fig 15: coarse-grain suite max throughput (kRPS)",
        &["application", "RELIEF", "AccelFlow", "gain", "paper avg"],
    );
    let mut gains = Vec::new();
    for app in relief_suite::all() {
        let services = vec![app.clone()];
        let relief = harness::max_throughput(Policy::Relief, &services, 5.0, seed);
        let af = harness::max_throughput(Policy::AccelFlow, &services, 5.0, seed);
        gains.push(af / relief);
        t.row(&[
            app.name.clone(),
            format!("{:.1}", relief / 1000.0),
            format!("{:.1}", af / 1000.0),
            ratio(af / relief),
            String::new(),
        ]);
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    t.row(&[
        "AVERAGE".into(),
        String::new(),
        String::new(),
        ratio(avg),
        ratio(paper::FIG15_VS_RELIEF),
    ]);
    t.print();
}
