//! Table I: the source/destination accelerators of each accelerator,
//! derived from the T1–T12 trace library.
//!
//! The paper derives this matrix from 80+ services; ours comes from
//! the twelve templates (which always run TLS, so e.g. TCP's only
//! accelerator source is Encr — the paper also sees plaintext Ser/Cmp
//! feeds). The point the table makes — inter-accelerator connections
//! must be flexible, many-to-many — holds identically.

use accelflow_bench::table::Table;
use accelflow_trace::kind::AccelKind;
use accelflow_trace::templates::{Neighbor, TraceLibrary};

fn main() {
    let lib = TraceLibrary::standard();
    let matrix = lib.connectivity();

    let paper: &[(&str, &str, &str)] = &[
        ("TCP", "Ser, Encr, Cmp", "LdB, Decr, Dser, Dcmp"),
        ("Encr", "TCP, RPC, Ser", "TCP, RPC"),
        ("Decr", "TCP", "RPC, Dser"),
        ("RPC", "Decr, Ser", "Encr, Deser, LdB"),
        ("Ser", "Deser, Cmp, CPU", "TCP, Encr, RPC"),
        ("Dser", "TCP, Decr, RPC", "Ser, Dcmp, LdB"),
        ("Cmp", "Deser, CPU", "Ser, LdB, CPU, TCP"),
        ("Dcmp", "Deser, TCP, CPU", "(De)Ser, LdB, CPU, TCP"),
        ("LdB", "TCP, Dser, Dcmp", "CPU"),
    ];

    let fmt = |set: &std::collections::BTreeSet<Neighbor>| {
        set.iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };

    let mut t = Table::new(
        "Table I: source/destination accelerators (measured from the trace library)",
        &[
            "accelerator",
            "src (measured)",
            "dst (measured)",
            "src (paper)",
            "dst (paper)",
        ],
    );
    for (i, kind) in AccelKind::ALL.iter().enumerate() {
        let (src, dst) = &matrix[kind];
        t.row(&[
            kind.to_string(),
            fmt(src),
            fmt(dst),
            paper[i].1.to_string(),
            paper[i].2.to_string(),
        ]);
    }
    t.print();

    let many_to_many = matrix
        .values()
        .filter(|(src, dst)| src.len() > 1 || dst.len() > 1)
        .count();
    println!(
        "{many_to_many}/9 accelerators have multiple sources or destinations \
         -> connections must be flexible (the paper's conclusion)."
    );
}
