//! Table IV: most-common execution path per service and the number of
//! accelerators used per service invocation.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_bench::table::Table;
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::Frequency;
use accelflow_trace::templates::TraceLibrary;
use accelflow_workloads::socialnetwork;

fn main() {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
    let paper = [87usize, 28, 18, 30, 29, 19, 9, 25];
    let mut t = Table::new(
        "Table IV: execution paths and accelerator counts",
        &["service", "path", "# accels (measured avg)", "# (paper)"],
    );
    let mut rng = SimRng::seed(1);
    for (svc, paper_n) in socialnetwork::all().iter().zip(paper) {
        let n = 400;
        let total: usize = (0..n)
            .map(|i| {
                svc.sample(&lib, &timing, &mut rng, (i as u64) << 32)
                    .accelerator_invocations()
            })
            .sum();
        t.row(&[
            svc.name.clone(),
            svc.path_string(&lib),
            format!("{:.1}", total as f64 / n as f64),
            paper_n.to_string(),
        ]);
    }
    t.print();
}
