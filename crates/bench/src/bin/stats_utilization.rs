//! §VII-B4: accelerator utilization when operating at peak throughput
//! without violating SLOs.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_trace::kind::AccelKind;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let seed = std::env::var("ACCELFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let peak = harness::max_throughput(Policy::AccelFlow, &services, 5.0, seed);
    println!("peak throughput: {:.1} kRPS/service\n", peak / 1000.0);
    let mut scale = Scale::from_env();
    scale.rps = peak;
    let r = harness::run_poisson(Policy::AccelFlow, &services, peak, scale);

    use AccelKind::*;
    let pair = |a: AccelKind, b: AccelKind| {
        (r.totals.accel_utilization[a.id() as usize] + r.totals.accel_utilization[b.id() as usize])
            / 2.0
    };
    let rows: Vec<(&str, f64)> = vec![
        ("TCP", r.totals.accel_utilization[Tcp.id() as usize]),
        ("(De)Encr", pair(Encr, Decr)),
        ("RPC", r.totals.accel_utilization[Rpc.id() as usize]),
        ("(De)Ser", pair(Ser, Dser)),
        ("(De)Cmp", pair(Cmp, Dcmp)),
        ("LdB", r.totals.accel_utilization[Ldb.id() as usize]),
    ];
    let mut t = Table::new(
        "§VII-B4: accelerator utilization at peak",
        &["accelerator", "measured", "paper"],
    );
    for ((name, util), (_, paper_util)) in rows.iter().zip(paper::UTILIZATION_AT_PEAK) {
        t.row(&[name.to_string(), pct(*util), pct(paper_util)]);
    }
    t.print();
}
