//! §VII-B2: glue-instruction accounting — average instructions per
//! output-dispatcher operation, ATM reads, and the cost taxonomy.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::Table;
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let r = harness::run_poisson(Policy::AccelFlow, &services, scale.rps, scale);
    let mut t = Table::new(
        "§VII-B2: dispatcher glue instructions",
        &["metric", "measured", "paper"],
    );
    t.row(&[
        "avg instructions / dispatch".into(),
        format!("{:.1}", r.totals.mean_glue_instructions()),
        format!("{:.0}", paper::GLUE_AVG_INSTRUCTIONS),
    ]);
    t.row(&[
        "dispatches".into(),
        r.totals.dispatches.to_string(),
        String::new(),
    ]);
    t.row(&[
        "ATM reads".into(),
        r.totals.atm_reads.to_string(),
        String::new(),
    ]);
    t.row(&["plain hop".into(), "15 instrs".into(), "~15".into()]);
    t.row(&[
        "branch".into(),
        "+7 (named) / +9 (custom)".into(),
        "+7".into(),
    ]);
    t.row(&[
        "end of trace".into(),
        "14 (chain) / 18 (to CPU)".into(),
        "12-20".into(),
    ]);
    t.row(&["transform (2KB)".into(), "+12".into(), "+12".into()]);
    t.print();
}
