//! Fig 12: P99 tail latency of the DeathStarBench suites under Low
//! (5 kRPS), Medium (10 kRPS), and High (15 kRPS) Poisson loads for
//! the five architectures.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::sweep;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_workloads::suites;

fn main() {
    let services = suites::deathstarbench();
    let scale = Scale::from_env();
    let loads = [(5_000.0, "Low"), (10_000.0, "Medium"), (15_000.0, "High")];

    // All load × policy simulations are independent; run the full
    // cross product through one sweep and slice rows afterwards.
    let jobs: Vec<(f64, Policy)> = loads
        .iter()
        .flat_map(|&(rps, _)| Policy::HEADLINE.iter().map(move |&p| (rps, p)))
        .collect();
    let p99s = sweep::map(jobs, |(rps, p)| {
        harness::avg_p99(&harness::run_poisson(p, &services, rps, scale))
    });

    let mut t = Table::new(
        "Fig 12: avg P99 (us) under different loads",
        &[
            "load",
            "Non-acc",
            "CPU-Centric",
            "RELIEF",
            "Cohort",
            "AccelFlow",
            "AF vs RELIEF",
        ],
    );
    for (i, (rps, name)) in loads.iter().enumerate() {
        let mut row = vec![format!("{name} ({:.0}k)", rps / 1000.0)];
        let mut relief = 0.0;
        let mut af = 0.0;
        for (j, p) in Policy::HEADLINE.iter().enumerate() {
            let p99 = p99s[i * Policy::HEADLINE.len() + j];
            if *p == Policy::Relief {
                relief = p99;
            }
            if *p == Policy::AccelFlow {
                af = p99;
            }
            row.push(format!("{p99:.0}"));
        }
        row.push(format!(
            "{} (paper {})",
            pct(1.0 - af / relief),
            pct(paper::FIG12_VS_RELIEF[i].1)
        ));
        t.row(&row);
    }
    t.print();
}
