//! Fig 3: orchestration overhead as a fraction of service execution
//! time, for CPU-Centric, HW-Manager (RELIEF), and Direct, as the
//! processor load sweeps from 1 to 15 kRPS.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let mut scale = Scale::from_env();
    // The paper sweeps the load of the whole 36-core processor.
    let machine_loads = [1_000.0, 5_000.0, 10_000.0, 15_000.0, 60_000.0, 107_000.0];
    let policies = [Policy::CpuCentric, Policy::Relief, Policy::Direct];

    let mut t = Table::new(
        "Fig 3: orchestration overhead vs machine load (fraction of total service execution time)",
        &["machine kRPS", "CPU-Centric", "HW-Manager", "Direct"],
    );
    for total in machine_loads {
        let rps = total / services.len() as f64;
        scale.rps = rps;
        let mut row = vec![format!("{:.0}", total / 1000.0)];
        for p in policies {
            let r = harness::run_poisson(p, &services, rps, scale);
            // Fig 3 divides by the *total* execution time of the
            // service (including nested waits).
            let total_latency: f64 = r
                .per_service
                .iter()
                .map(|s| s.mean().as_secs_f64() * s.completed as f64)
                .sum();
            let frac = r.total_breakdown().orchestration.as_secs_f64() / total_latency.max(1e-12);
            row.push(pct(frac));
        }
        t.row(&row);
    }
    t.print();
    println!(
        "paper at 15 kRPS: CPU-Centric {} / HW-Manager {} (Direct small and flat)",
        pct(paper::FIG3_CPU_CENTRIC_AT_15K),
        pct(paper::FIG3_HW_MANAGER_AT_15K),
    );
}
