//! §III Q2: the fraction of accelerator sequences containing at least
//! one conditional, per benchmark suite (paper: SocialNet 69.2%,
//! HotelReservation 62.5%, MediaServices 82.5%, TrainTicket 53.8%).

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::request::ServiceSpec;
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::Frequency;
use accelflow_trace::templates::TraceLibrary;
use accelflow_workloads::{musuite, socialnetwork, suites, trainticket};

fn branch_stats(services: &[ServiceSpec]) -> (f64, usize) {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
    let mut rng = SimRng::seed(1212);
    // A "sequence" is one trace call: the accelerators that run with
    // no intervening CPU involvement (chained response traces included,
    // since the TCP dispatcher arms them from the ATM).
    let (mut with, mut total, mut max_branches) = (0usize, 0usize, 0usize);
    for svc in services {
        for i in 0..400u64 {
            let p = svc.sample(&lib, &timing, &mut rng, i << 36);
            for c in p.calls() {
                total += 1;
                let branches: usize = c
                    .segments
                    .iter()
                    .flat_map(|seg| seg.hops.iter())
                    .map(|h| h.branches_after as usize)
                    .sum();
                if branches > 0 {
                    with += 1;
                }
                max_branches = max_branches.max(branches);
            }
        }
    }
    (with as f64 / total as f64, max_branches)
}

fn main() {
    let suites: Vec<(&str, Vec<ServiceSpec>, f64)> = vec![
        (
            "SocialNet",
            socialnetwork::all(),
            paper::BRANCHY_SEQUENCES[0].1,
        ),
        (
            "HotelReservation",
            suites::hotel_reservation(),
            paper::BRANCHY_SEQUENCES[1].1,
        ),
        (
            "MediaServices",
            suites::media_services(),
            paper::BRANCHY_SEQUENCES[2].1,
        ),
        (
            "TrainTicket",
            trainticket::all(),
            paper::BRANCHY_SEQUENCES[3].1,
        ),
        ("uSuite", musuite::all(), f64::NAN),
    ];
    let mut t = Table::new(
        "§III Q2: sequences with >=1 conditional",
        &["suite", "measured", "paper", "max branches/seq"],
    );
    for (name, services, paper_frac) in suites {
        let (frac, maxb) = branch_stats(&services);
        t.row(&[
            name.to_string(),
            pct(frac),
            if paper_frac.is_nan() {
                "-".into()
            } else {
                pct(paper_frac)
            },
            maxb.to_string(),
        ]);
    }
    t.print();
    println!("paper: \"Some sequences have up to four\" conditionals.");
}
