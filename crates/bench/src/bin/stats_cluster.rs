//! Cluster-scale sweep: fleet size × balancer × fault rate.
//!
//! Drives the two-level orchestrator (`accelflow_core::cluster`,
//! `docs/CLUSTER.md`) over the social-network workload and prints, per
//! cell: aggregate goodput, fleet P99 (absolute and relative to the
//! single-machine unloaded P99, with a 5× SLO verdict like Fig 14's),
//! the dispatch imbalance, and the keep-alive health counters
//! (suspensions / recoveries / relocations). The invariant auditor is
//! forced on in every node; any violation exits non-zero for CI.
//!
//! `ACCELFLOW_RPS` is the **per-node** per-service load: the front
//! end's arrival stream scales with the fleet (`rps × nodes`), so
//! every cell offers the same work per node and goodput should scale
//! ~linearly with size until balancing or faults bite.
//!
//! Byte-deterministic at any `ACCELFLOW_THREADS`: cells fan out over
//! [`sweep::map`], each cluster runs single-threaded on seeded
//! streams, and the printed table is identical at any worker count
//! (the CI cluster job diffs two thread counts to prove it).

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::sweep;
use accelflow_core::cluster::{BalancerKind, Cluster, ClusterConfig, ClusterReport};
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_core::{FaultClass, FaultConfig};
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

/// Fleet sizes swept.
const NODE_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Fault fractions swept: accelerator stalls per offered request.
const FAULT_FRACTIONS: &[f64] = &[0.0, 0.02];
/// SLO multiple over the unloaded P99 (paper Fig 14 uses 5×).
const SLO_MULT: f64 = 5.0;

fn cluster_config(scale: Scale, nodes: usize, balancer: BalancerKind, frac: f64) -> ClusterConfig {
    let services = socialnetwork::all().len() as f64;
    let mut node = harness::machine_config(Policy::AccelFlow, scale);
    node.audit = true;
    if frac > 0.0 {
        // stalls/ms per node = (stalls per request) × (requests per ms
        // offered to each node). Long dark windows so the keep-alive
        // poll actually catches suspended nodes at smoke scale.
        let mut faults =
            FaultConfig::only(FaultClass::AccelStall, frac * scale.rps * services / 1000.0);
        faults.stall_duration = SimDuration::from_micros(500);
        node.faults = faults;
    }
    let mut cfg = ClusterConfig::new(nodes, node);
    cfg.balancer = balancer;
    cfg.keepalive = Some(SimDuration::from_micros(100));
    cfg.suspend_dark_stations = 1;
    cfg
}

fn run_cell(scale: Scale, nodes: usize, balancer: BalancerKind, frac: f64) -> ClusterReport {
    let cfg = cluster_config(scale, nodes, balancer, frac);
    Cluster::run_workload(
        &cfg,
        &socialnetwork::all(),
        scale.rps * nodes as f64,
        scale.duration,
        scale.seed,
    )
}

/// Single-machine unloaded P99 over the merged workload — the SLO
/// anchor every cell's fleet P99 is judged against.
fn unloaded_p99_us(scale: Scale) -> f64 {
    let cfg = harness::machine_config(Policy::AccelFlow, scale);
    let report = Machine::run_workload(
        &cfg,
        &socialnetwork::all(),
        400.0,
        SimDuration::from_millis(300),
        scale.seed,
    );
    report
        .aggregate_latency()
        .percentile_duration(99.0)
        .as_micros_f64()
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "cluster sweep: {} at {} rps/service/node over {}, keep-alive 100us, audits on",
        Policy::AccelFlow.name(),
        scale.rps,
        scale.duration
    );

    let mut cells: Vec<(usize, BalancerKind, f64)> = Vec::new();
    for &nodes in NODE_COUNTS {
        for balancer in BalancerKind::ALL {
            for &frac in FAULT_FRACTIONS {
                cells.push((nodes, balancer, frac));
            }
        }
    }

    // The unloaded anchor rides the same fan-out as the cells.
    enum Out {
        Unloaded(f64),
        Cell(Box<ClusterReport>),
    }
    let jobs: Vec<Option<(usize, BalancerKind, f64)>> = std::iter::once(None)
        .chain(cells.iter().copied().map(Some))
        .collect();
    let outs = sweep::map(jobs, |job| match job {
        None => Out::Unloaded(unloaded_p99_us(scale)),
        Some((nodes, balancer, frac)) => {
            Out::Cell(Box::new(run_cell(scale, nodes, balancer, frac)))
        }
    });
    let mut outs = outs.into_iter();
    let unloaded_us = match outs.next() {
        Some(Out::Unloaded(u)) => u,
        _ => unreachable!("first sweep job is the unloaded anchor"),
    };
    println!("unloaded single-machine p99: {unloaded_us:.1}us (SLO = {SLO_MULT}x)\n");
    println!(
        "{:>5} {:<15} {:>6} {:>11} {:>10} {:>7} {:>4} {:>7} {:>6} {:>6} {:>6} {:>10}",
        "nodes",
        "balancer",
        "frac",
        "goodput/s",
        "p99",
        "x-unl",
        "slo",
        "imbal",
        "susp",
        "recov",
        "reloc",
        "violations"
    );

    let mut clean = true;
    for ((nodes, balancer, frac), out) in cells.iter().zip(outs) {
        let report = match out {
            Out::Cell(r) => r,
            Out::Unloaded(_) => unreachable!("only one anchor job"),
        };
        let p99_us = report.p99().as_micros_f64();
        let ratio = if unloaded_us > 0.0 {
            p99_us / unloaded_us
        } else {
            0.0
        };
        let slo_ok = ratio <= SLO_MULT && report.completion_ratio() >= 0.97;
        let violations: u64 = report
            .per_node
            .iter()
            .map(|r| r.audit.violation_count)
            .sum();
        println!(
            "{nodes:>5} {:<15} {frac:>6.3} {:>11.0} {:>10} {ratio:>7.2} {:>4} {:>7.2} {:>6} {:>6} {:>6} {violations:>10}",
            balancer.name(),
            report.goodput_rps(),
            format!("{}", report.p99()),
            if slo_ok { "ok" } else { "MISS" },
            report.dispatch_imbalance(),
            report.health.suspensions,
            report.health.recoveries,
            report.health.relocations,
        );
        for node in &report.per_node {
            clean &= node.audit.is_clean();
            for v in &node.audit.violations {
                println!("    [{}] at {}: {}", v.invariant, v.at, v.detail);
            }
        }
        if report.clamped > 0 {
            clean = false;
            println!(
                "    cluster kernel clamped {} events (dispatcher time-travel bug)",
                report.clamped
            );
        }
    }

    if clean {
        println!("\nall nodes clean under the auditor");
    } else {
        println!("\ninvariant violations detected");
        std::process::exit(1);
    }
}
