//! §VII-C5: accelerator-speedup sensitivity — AccelFlow vs RELIEF
//! max throughput as every accelerator's speedup scales by 0.25x to 4x.

use accelflow_bench::harness;
use accelflow_bench::paper;
use accelflow_bench::sweep;
use accelflow_bench::table::{ratio, Table};
use accelflow_core::machine::MachineConfig;
use accelflow_core::policy::Policy;
use accelflow_sim::time::SimDuration;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let seed = std::env::var("ACCELFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let points = [
        (0.25, Some(1.4)),
        (0.5, None),
        (1.0, Some(2.2)),
        (2.0, None),
        (4.0, Some(3.9)),
    ];
    // Ten independent throughput searches (5 scales × 2 policies).
    let jobs: Vec<(f64, Policy)> = points
        .iter()
        .flat_map(|&(scale_f, _)| {
            [Policy::Relief, Policy::AccelFlow]
                .iter()
                .map(move |&p| (scale_f, p))
        })
        .collect();
    let tputs = sweep::map(jobs, |(scale_f, p)| {
        let mut cfg = MachineConfig::new(p);
        cfg.warmup = SimDuration::from_millis(5);
        cfg.speedup_scale = scale_f;
        harness::max_throughput_with(&cfg, &services, 5.0, seed)
    });

    let mut t = Table::new(
        "Speedup sweep: AccelFlow gain over RELIEF (max throughput)",
        &[
            "speedup scale",
            "RELIEF kRPS",
            "AccelFlow kRPS",
            "gain",
            "paper",
        ],
    );
    for (i, (scale_f, paper_gain)) in points.into_iter().enumerate() {
        let relief = tputs[2 * i];
        let af = tputs[2 * i + 1];
        t.row(&[
            format!("{scale_f}x"),
            format!("{:.1}", relief / 1000.0),
            format!("{:.1}", af / 1000.0),
            ratio(af / relief),
            paper_gain.map(ratio).unwrap_or_default(),
        ]);
    }
    t.print();
    let _ = paper::SPEEDUP_SWEEP_GAINS;
}
