//! Degradation curves under deterministic fault injection.
//!
//! For each fault class, sweeps the injection rate from zero to well
//! past the resilience layer's comfort zone and prints goodput and P99
//! latency per cell, with the invariant auditor forced on — every run
//! must stay clean (no request lost or double-completed under any
//! injected fault) or the binary exits non-zero for CI to catch.
//!
//! The sweep axis is faults per *offered request* (so the same
//! fractions stress a quick smoke run and a full-scale run equally);
//! each fraction is converted to the injector's faults-per-simulated-
//! millisecond rate from the offered load. Scale via
//! `ACCELFLOW_DURATION_MS` / `ACCELFLOW_RPS` / `ACCELFLOW_SEED`.
//!
//! See `docs/RESILIENCE.md` for a worked walkthrough of the output.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::sweep;
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_core::stats::RunReport;
use accelflow_core::{FaultClass, FaultConfig};
use accelflow_workloads::socialnetwork;

/// Fault fractions swept per class: faults per offered request.
const FRACTIONS: &[f64] = &[0.005, 0.01, 0.05];

fn run_cell(rate_per_ms: f64, class: Option<FaultClass>, scale: Scale) -> RunReport {
    let services = socialnetwork::all();
    let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
    cfg.audit = true;
    // Narrow, slowed accelerators: input queues hold entries at this
    // load, so queue-entry drops find victims and stall/DMA faults
    // show up in the latency tail instead of vanishing into idle
    // capacity (an unloaded machine absorbs faults for free).
    cfg.arch.pes_per_accelerator = 2;
    cfg.speedup_scale = 0.25;
    cfg.faults = match class {
        Some(c) => FaultConfig::only(c, rate_per_ms),
        None => FaultConfig::disabled(),
    };
    Machine::run_workload(&cfg, &services, scale.rps, scale.duration, scale.seed)
}

/// Goodput in completed requests per simulated second.
fn goodput(r: &RunReport) -> f64 {
    let secs = r.measured.as_micros_f64() / 1e6;
    if secs <= 0.0 {
        return 0.0;
    }
    r.completed() as f64 / secs
}

fn print_row(label: &str, frac: f64, r: &RunReport) -> bool {
    let f = &r.faults;
    let p99 = r.aggregate_latency().percentile_duration(99.0);
    println!(
        "{label:<12} {frac:>6.3} {:>10.0} {:>12} {:>9} {:>8} {:>12} {:>9} {:>11}",
        goodput(r),
        format!("{p99}"),
        f.injected(),
        f.retries,
        f.redispatches,
        f.degraded,
        r.audit.violation_count,
    );
    for v in &r.audit.violations {
        println!("    [{}] at {}: {}", v.invariant, v.at, v.detail);
    }
    r.audit.is_clean()
}

fn main() {
    let scale = Scale::from_env();
    let n_services = socialnetwork::all().len() as f64;
    // faults/ms = (faults per request) x (requests per ms across all
    // services).
    let rate_of = |frac: f64| frac * scale.rps * n_services / 1000.0;

    println!(
        "fault sweep: {} at {} rps/service over {}, audits on",
        Policy::AccelFlow.name(),
        scale.rps,
        scale.duration
    );
    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>9} {:>8} {:>12} {:>9} {:>11}",
        "class",
        "frac",
        "goodput/s",
        "p99",
        "injected",
        "retries",
        "redispatches",
        "degraded",
        "violations"
    );

    let mut cells: Vec<(Option<FaultClass>, f64)> = vec![(None, 0.0)];
    for &class in FaultClass::ALL.iter() {
        for &frac in FRACTIONS {
            cells.push((Some(class), frac));
        }
    }
    let reports = sweep::map(cells.clone(), |(class, frac)| {
        run_cell(rate_of(frac), class, scale)
    });

    let mut clean = true;
    let baseline = goodput(&reports[0]);
    for ((class, frac), r) in cells.iter().zip(&reports) {
        let label = class.map(|c| c.name()).unwrap_or("none");
        clean &= print_row(label, *frac, r);
        // Queue drops are no-ops against empty queues by design, so a
        // zero count at smoke scale is expected for that class only.
        if class.is_some_and(|c| c != FaultClass::QueueDrop)
            && *frac >= 0.01
            && r.faults.injected() == 0
        {
            println!("    warning: {label} at frac {frac} injected nothing");
        }
    }
    println!("\nbaseline goodput {baseline:.0}/s; degradation is the drop per class as frac grows");

    if clean {
        println!("all runs clean under the auditor");
    } else {
        println!("invariant violations detected");
        std::process::exit(1);
    }
}
