//! Fig 11: P99 tail latency (and average latency) of the eight
//! SocialNetwork services under the five architectures, driven by
//! Alibaba-like production invocation rates (13.4 kRPS per service on
//! average).

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::sweep;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);
    println!(
        "arrivals: {} requests over {} at {} rps/service\n",
        arrivals.len(),
        scale.duration,
        scale.rps
    );

    // One independent simulation per policy; fan out across sweep
    // workers and print in the deterministic input order.
    let policies = Policy::HEADLINE;
    let reports = sweep::map(policies.to_vec(), |p| {
        harness::run_policy(p, &services, arrivals.clone(), scale)
    });
    for (p, r) in policies.iter().zip(&reports) {
        println!(
            "{:<12} completed {:>7}/{:<7} avg-p99 {:>9.1} us  avg-mean {:>8.1} us",
            p.name(),
            r.completed(),
            r.offered(),
            harness::avg_p99(r),
            harness::avg_mean(r),
        );
    }

    // Per-service P99 table.
    let mut t = Table::new(
        "Fig 11: P99 tail latency (us) per service",
        &[
            "service",
            "Non-acc",
            "CPU-Centric",
            "RELIEF",
            "Cohort",
            "AccelFlow",
            "avg(AF)",
        ],
    );
    for (i, svc) in services.iter().enumerate() {
        let mut row = vec![svc.name.clone()];
        for r in &reports {
            row.push(format!("{:.0}", r.per_service[i].p99().as_micros_f64()));
        }
        row.push(format!(
            "{:.0}",
            reports[4].per_service[i].mean().as_micros_f64()
        ));
        t.row(&row);
    }
    t.print();

    // Reductions vs paper.
    let mut t = Table::new(
        "AccelFlow reductions (average across services)",
        &[
            "baseline",
            "P99 paper",
            "P99 measured",
            "mean paper",
            "mean measured",
        ],
    );
    let af_p99 = harness::avg_p99(&reports[4]);
    let af_mean = harness::avg_mean(&reports[4]);
    for (i, (name, paper_p99)) in paper::FIG11_P99_REDUCTION.iter().enumerate() {
        let base_p99 = harness::avg_p99(&reports[i]);
        let base_mean = harness::avg_mean(&reports[i]);
        let red_p99 = 1.0 - af_p99 / base_p99;
        let red_mean = 1.0 - af_mean / base_mean;
        t.row(&[
            name.to_string(),
            pct(*paper_p99),
            pct(red_p99),
            pct(paper::FIG11_MEAN_REDUCTION[i].1),
            pct(red_mean),
        ]);
    }
    t.print();
}
