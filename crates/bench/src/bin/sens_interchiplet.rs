//! §VII-C2: inter-chiplet latency sensitivity — P99 for 2- and
//! 6-chiplet organizations as the inter-chiplet link latency sweeps
//! from 20 to 100 cycles.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);

    let mut t = Table::new(
        "Inter-chiplet latency sweep: avg P99 (us)",
        &["cycles", "2-chiplet", "6-chiplet"],
    );
    let mut six_at = std::collections::BTreeMap::new();
    for cycles in [20.0f64, 60.0, 100.0] {
        let mut row = vec![format!("{cycles:.0}")];
        for chiplets in [2usize, 6] {
            let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
            cfg.chiplets = chiplets;
            cfg.arch.inter_chiplet_cycles = cycles;
            // Slower links also carry less bandwidth (flit-clocked,
            // partially compensated by deeper pipelining).
            cfg.arch.inter_chiplet_bw *= (60.0 / cycles).powf(0.25);
            let r = Machine::run_arrivals(
                &cfg,
                &services,
                arrivals.clone(),
                scale.duration,
                scale.seed,
            );
            let p99 = harness::avg_p99(&r);
            if chiplets == 6 {
                six_at.insert(cycles as u64, p99);
            }
            row.push(format!("{p99:.0}"));
        }
        t.row(&row);
    }
    t.print();
    let grow = six_at[&100] / six_at[&60] - 1.0;
    println!(
        "6-chiplet, 60 -> 100 cycles: {} (paper {})",
        pct(grow),
        pct(paper::INTERCHIPLET_60_TO_100)
    );
}
