//! §VII-C2: inter-chiplet latency sensitivity — P99 for 2- and
//! 6-chiplet organizations as the inter-chiplet link latency sweeps
//! from 20 to 100 cycles.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::sweep;
use accelflow_bench::table::{pct, Table};
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);

    // Full cycles × chiplets cross product as one sweep.
    let cycle_points = [20.0f64, 60.0, 100.0];
    let orgs = [2usize, 6];
    let jobs: Vec<(f64, usize)> = cycle_points
        .iter()
        .flat_map(|&cycles| orgs.iter().map(move |&chiplets| (cycles, chiplets)))
        .collect();
    let p99s = sweep::map(jobs, |(cycles, chiplets)| {
        let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
        cfg.chiplets = chiplets;
        cfg.arch.inter_chiplet_cycles = cycles;
        // Slower links also carry less bandwidth (flit-clocked,
        // partially compensated by deeper pipelining).
        cfg.arch.inter_chiplet_bw *= (60.0 / cycles).powf(0.25);
        let r = Machine::run_arrivals(
            &cfg,
            &services,
            arrivals.clone(),
            scale.duration,
            scale.seed,
        );
        harness::avg_p99(&r)
    });

    let mut t = Table::new(
        "Inter-chiplet latency sweep: avg P99 (us)",
        &["cycles", "2-chiplet", "6-chiplet"],
    );
    let mut six_at = std::collections::BTreeMap::new();
    for (i, &cycles) in cycle_points.iter().enumerate() {
        let mut row = vec![format!("{cycles:.0}")];
        for (j, &chiplets) in orgs.iter().enumerate() {
            let p99 = p99s[i * orgs.len() + j];
            if chiplets == 6 {
                six_at.insert(cycles as u64, p99);
            }
            row.push(format!("{p99:.0}"));
        }
        t.row(&row);
    }
    t.print();
    let grow = six_at[&100] / six_at[&60] - 1.0;
    println!(
        "6-chiplet, 60 -> 100 cycles: {} (paper {})",
        pct(grow),
        pct(paper::INTERCHIPLET_60_TO_100)
    );
}
