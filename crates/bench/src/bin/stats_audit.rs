//! Runs the headline experiments with the invariant auditor forced on
//! and reports every violation it catches.
//!
//! Two workload shapes, mirroring the paper's evaluation:
//!
//! 1. Fig 11-style: the eight SocialNetwork services under bursty
//!    Alibaba-like arrivals, one run per headline policy over shared
//!    arrivals.
//! 2. Fig 14-style: fixed-load Poisson runs with per-request SLO slack
//!    (deadline scheduling) plus the Ideal bound.
//!
//! Exit status is non-zero if any run reports a violation, so CI can
//! gate on it. Scale via `ACCELFLOW_DURATION_MS` / `ACCELFLOW_RPS` /
//! `ACCELFLOW_SEED` as usual.

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::sweep;
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_core::stats::RunReport;
use accelflow_workloads::socialnetwork;

fn print_report(label: &str, r: &RunReport) -> bool {
    let a = &r.audit;
    println!(
        "{:<24} completed {:>7}/{:<7} checks {:>10}  violations {}",
        label,
        r.completed(),
        r.offered(),
        a.checks,
        a.violation_count,
    );
    for v in &a.violations {
        println!("    [{}] at {}: {}", v.invariant, v.at, v.detail);
    }
    if a.violation_count > a.violations.len() as u64 {
        println!(
            "    ... and {} more (recording capped)",
            a.violation_count - a.violations.len() as u64
        );
    }
    a.is_clean()
}

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let mut clean = true;

    // Fig 11 shape: shared bursty arrivals, headline policies.
    let arrivals = harness::shared_arrivals(&services, scale);
    println!(
        "fig11 shape: {} arrivals over {} at {} rps/service, audits on",
        arrivals.len(),
        scale.duration,
        scale.rps
    );
    let policies = Policy::HEADLINE;
    let reports = sweep::map(policies.to_vec(), |p| {
        let mut cfg = harness::machine_config(p, scale);
        cfg.audit = true;
        Machine::run_arrivals(
            &cfg,
            &services,
            arrivals.clone(),
            scale.duration,
            scale.seed,
        )
    });
    for (p, r) in policies.iter().zip(&reports) {
        clean &= print_report(p.name(), r);
    }

    // Fig 14 shape: fixed-load Poisson runs with SLO deadlines.
    let mut slo_services = services.clone();
    for s in &mut slo_services {
        s.slo_slack = Some(5.0);
    }
    println!(
        "\nfig14 shape: Poisson at {} rps/service, SLO slack 5x",
        scale.rps
    );
    let deadline_policies = [Policy::AccelFlowDeadline, Policy::AccelFlow, Policy::Ideal];
    let reports = sweep::map(deadline_policies.to_vec(), |p| {
        let mut cfg = MachineConfig::new(p);
        cfg.warmup = scale.warmup;
        cfg.audit = true;
        Machine::run_workload(&cfg, &slo_services, scale.rps, scale.duration, scale.seed)
    });
    for (p, r) in deadline_policies.iter().zip(&reports) {
        clean &= print_report(p.name(), r);
    }

    if clean {
        println!("\nall runs clean");
    } else {
        println!("\ninvariant violations detected");
        std::process::exit(1);
    }
}
