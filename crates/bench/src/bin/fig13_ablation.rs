//! Fig 13: P99 tail latency with the successive addition of AccelFlow
//! techniques: RELIEF -> +PerAccTypeQ -> +Direct (traces, direct
//! transfers) -> +CntrFlow (branches in dispatchers) -> AccelFlow
//! (transforms and large payloads in dispatchers).

use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);

    let mut relief_p99 = 0.0;
    let mut t = Table::new(
        "Fig 13: ablation ladder (avg P99 across services)",
        &["design", "avg P99 (us)", "cumulative reduction", "paper"],
    );
    for (i, p) in Policy::ABLATION.iter().enumerate() {
        let r = harness::run_policy(*p, &services, arrivals.clone(), scale);
        let p99 = harness::avg_p99(&r);
        if i == 0 {
            relief_p99 = p99;
        }
        let reduction = 1.0 - p99 / relief_p99;
        let paper_txt = if i == 0 {
            "baseline".to_string()
        } else {
            pct(paper::FIG13_CUMULATIVE_REDUCTION[i - 1].1)
        };
        t.row(&[
            p.name().to_string(),
            format!("{p99:.0}"),
            pct(reduction),
            paper_txt,
        ]);
    }
    t.print();
}
