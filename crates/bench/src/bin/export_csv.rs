//! Exports the headline experiment series as CSV files under
//! `results/csv/` for plotting (Fig 11 per-service latencies, Fig 12
//! load sweep, Fig 13 ablation, Fig 19 PE sweep, Fig 20 generations).

use std::fs;
use std::io::Write as _;

use accelflow_arch::config::CpuGeneration;
use accelflow_bench::harness::{self, Scale};
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn write(path: &str, header: &str, rows: &[String]) {
    fs::create_dir_all("results/csv").expect("create results/csv");
    let mut f = fs::File::create(path).expect("create csv");
    writeln!(f, "{header}").expect("write");
    for row in rows {
        writeln!(f, "{row}").expect("write");
    }
    println!("wrote {path} ({} rows)", rows.len());
}

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);

    // Fig 11: per-service p99/mean for the five architectures.
    let mut rows = Vec::new();
    for p in Policy::HEADLINE {
        let r = harness::run_policy(p, &services, arrivals.clone(), scale);
        for s in &r.per_service {
            rows.push(format!(
                "{},{},{:.1},{:.1}",
                p.name(),
                s.name,
                s.p99().as_micros_f64(),
                s.mean().as_micros_f64()
            ));
        }
    }
    write(
        "results/csv/fig11.csv",
        "policy,service,p99_us,mean_us",
        &rows,
    );

    // Fig 13: ablation ladder.
    let mut rows = Vec::new();
    for p in Policy::ABLATION {
        let r = harness::run_policy(p, &services, arrivals.clone(), scale);
        rows.push(format!("{},{:.1}", p.name(), harness::avg_p99(&r)));
    }
    write("results/csv/fig13.csv", "design,avg_p99_us", &rows);

    // Fig 20: generations.
    let mut rows = Vec::new();
    for generation in CpuGeneration::ALL {
        for p in [Policy::NonAcc, Policy::Relief, Policy::AccelFlow] {
            let mut cfg = harness::machine_config(p, scale);
            cfg.arch.generation = generation;
            let r = Machine::run_arrivals(
                &cfg,
                &services,
                arrivals.clone(),
                scale.duration,
                scale.seed,
            );
            rows.push(format!(
                "{},{},{:.1}",
                generation.name(),
                p.name(),
                harness::avg_p99(&r)
            ));
        }
    }
    write(
        "results/csv/fig20.csv",
        "generation,policy,avg_p99_us",
        &rows,
    );

    // Fig 19: PE sweep.
    let mut rows = Vec::new();
    for pes in [2usize, 4, 8] {
        let mut cfg = harness::machine_config(Policy::AccelFlow, scale);
        cfg.arch.pes_per_accelerator = pes;
        let r = Machine::run_arrivals(
            &cfg,
            &services,
            arrivals.clone(),
            scale.duration,
            scale.seed,
        );
        rows.push(format!(
            "{},{:.1},{:.4}",
            pes,
            harness::avg_p99(&r),
            r.fallback_fraction()
        ));
    }
    write(
        "results/csv/fig19.csv",
        "pes,avg_p99_us,fallback_fraction",
        &rows,
    );
}
