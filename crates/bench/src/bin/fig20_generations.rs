//! Fig 20: P99 tail latency of Non-acc, RELIEF, and AccelFlow across
//! CPU generations (Haswell ... Emerald Rapids); AccelFlow's advantage
//! grows on newer cores because tax code benefits less than app logic.

use accelflow_arch::config::CpuGeneration;
use accelflow_bench::harness::{self, Scale};
use accelflow_bench::paper;
use accelflow_bench::table::{pct, Table};
use accelflow_core::machine::Machine;
use accelflow_core::policy::Policy;
use accelflow_workloads::socialnetwork;

fn main() {
    let services = socialnetwork::all();
    let scale = Scale::from_env();
    let arrivals = harness::shared_arrivals(&services, scale);

    let mut t = Table::new(
        "Fig 20: avg P99 (us) across CPU generations",
        &[
            "generation",
            "Non-acc",
            "RELIEF",
            "AccelFlow",
            "AF vs RELIEF",
        ],
    );
    for generation in CpuGeneration::ALL {
        let mut row = vec![generation.name().to_string()];
        let mut relief = 0.0;
        let mut af = 0.0;
        for p in [Policy::NonAcc, Policy::Relief, Policy::AccelFlow] {
            let mut cfg = harness::machine_config(p, scale);
            cfg.arch.generation = generation;
            let r = Machine::run_arrivals(
                &cfg,
                &services,
                arrivals.clone(),
                scale.duration,
                scale.seed,
            );
            let p99 = harness::avg_p99(&r);
            if p == Policy::Relief {
                relief = p99;
            }
            if p == Policy::AccelFlow {
                af = p99;
            }
            row.push(format!("{p99:.0}"));
        }
        row.push(pct(1.0 - af / relief));
        t.row(&row);
    }
    t.print();
    println!(
        "paper: AF vs RELIEF {} on IceLake -> {} on EmeraldRapids",
        pct(paper::FIG20_ICELAKE),
        pct(paper::FIG20_EMERALD)
    );
}
