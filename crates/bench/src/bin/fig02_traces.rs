//! Figures 2, 4, and 7: the trace shapes, rendered as flow diagrams
//! (the paper draws boxes and arrows; we render indented ASCII).

use accelflow_trace::templates::{TemplateId, TraceLibrary};
use accelflow_trace::viz::render;

fn main() {
    let lib = TraceLibrary::standard();
    println!(
        "Fig 2a / T2 (send function response):\n{}",
        render(lib.entry(TemplateId::T2))
    );
    println!(
        "Fig 2b / T4 (send read request to DB cache):\n{}",
        render(lib.entry(TemplateId::T4))
    );
    println!(
        "Fig 4a / T1 (receive function request):\n{}",
        render(lib.entry(TemplateId::T1))
    );
    println!(
        "Fig 7 / T5 (receive DB-cache read response):\n{}",
        render(lib.entry(TemplateId::T5))
    );
    println!(
        "Fig 7 / T6 (receive DB read response):\n{}",
        render(lib.entry(TemplateId::T6))
    );
    println!(
        "Fig 7 / T7 (receive write response):\n{}",
        render(lib.entry(TemplateId::T7))
    );
    println!(
        "Fig 7 / T10 (receive RPC response):\n{}",
        render(lib.entry(TemplateId::T10))
    );
    println!(
        "Split error subtrace (§IV-B):\n{}",
        render(
            lib.atm()
                .peek(lib.error_addr())
                .expect("error trace resident")
        )
    );
}
