//! Fig 5: minimum / median / maximum input and output data sizes per
//! accelerator, measured over sampled service programs.

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_bench::table::Table;
use accelflow_sim::rng::SimRng;
use accelflow_sim::time::Frequency;
use accelflow_trace::kind::AccelKind;
use accelflow_trace::templates::TraceLibrary;
use accelflow_workloads::socialnetwork;

fn main() {
    let lib = TraceLibrary::standard();
    let timing = ServiceTimeModel::calibrated(Frequency::from_ghz(2.4));
    let mut rng = SimRng::seed(17);
    let mut ins: Vec<Vec<u64>> = vec![Vec::new(); AccelKind::COUNT];
    let mut outs: Vec<Vec<u64>> = vec![Vec::new(); AccelKind::COUNT];
    for svc in socialnetwork::all() {
        for i in 0..800u64 {
            let p = svc.sample(&lib, &timing, &mut rng, i << 36);
            for call in p.calls() {
                for seg in &call.segments {
                    for hop in &seg.hops {
                        ins[hop.kind.id() as usize].push(hop.in_bytes);
                        outs[hop.kind.id() as usize].push(hop.out_bytes);
                    }
                }
            }
        }
    }
    let stats = |v: &mut Vec<u64>| {
        v.sort_unstable();
        if v.is_empty() {
            (0, 0, 0)
        } else {
            (v[0], v[v.len() / 2], v[v.len() - 1])
        }
    };
    let mut t = Table::new(
        "Fig 5: per-accelerator data sizes (bytes) -- LdB carries no processed payload",
        &[
            "accelerator",
            "in min",
            "in med",
            "in max",
            "out min",
            "out med",
            "out max",
        ],
    );
    for kind in AccelKind::ALL {
        if kind == AccelKind::Ldb {
            continue; // Fig 5 has no LdB bar
        }
        let (imin, imed, imax) = stats(&mut ins[kind.id() as usize]);
        let (omin, omed, omax) = stats(&mut outs[kind.id() as usize]);
        t.row(&[
            kind.to_string(),
            imin.to_string(),
            imed.to_string(),
            imax.to_string(),
            omin.to_string(),
            omed.to_string(),
            omax.to_string(),
        ]);
    }
    t.print();
    println!("paper: median sizes are a few KB with long tails to tens of KB (as also observed by Google).");
}
