//! Table II: the complete list of traces the services use, with their
//! structure, branch conditions, packed encodings, and resolved paths.

use accelflow_bench::table::Table;
use accelflow_trace::cond::PayloadFlags;
use accelflow_trace::ir::PathStep;
use accelflow_trace::packed;
use accelflow_trace::templates::{TemplateId, TraceLibrary};

fn main() {
    let lib = TraceLibrary::standard();
    let mut t = Table::new(
        "Table II: trace library",
        &[
            "trace",
            "explanation",
            "accels",
            "branches",
            "packed (bytes)",
            "paths",
        ],
    );
    for id in TemplateId::ALL {
        let trace = lib.entry(id);
        let bytes = packed::pack(trace).expect("all templates pack");
        t.row(&[
            id.name().to_string(),
            id.description().to_string(),
            trace.accelerator_count().to_string(),
            trace.branch_count().to_string(),
            bytes.len().to_string(),
            trace.all_paths().len().to_string(),
        ]);
    }
    t.print();

    // Show the resolved common path of each template.
    let mut t = Table::new("Common-case resolved paths", &["trace", "path"]);
    let common = PayloadFlags {
        hit: true,
        found: true,
        ..PayloadFlags::default()
    };
    for id in TemplateId::ALL {
        let path: Vec<String> = lib
            .entry(id)
            .resolve_path(&common)
            .iter()
            .map(|s| match s {
                PathStep::Accel(k) => k.to_string(),
                PathStep::Cpu => "CPU".into(),
                PathStep::Chain(a) => format!("chain({a})"),
            })
            .collect();
        t.row(&[id.name().to_string(), path.join(" -> ")]);
    }
    t.print();
    println!(
        "ATM holds {} resident traces; {} of 12 templates contain branches.",
        lib.atm().occupied(),
        TemplateId::ALL
            .iter()
            .filter(|&&id| lib.entry(id).branch_count() > 0)
            .count()
    );
}
