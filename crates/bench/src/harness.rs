//! Standard experiment plumbing: run scales, policy runs with common
//! random numbers, unloaded-latency probes, and the SLO-bounded
//! max-throughput search (paper Fig 14: "the maximum load without
//! violating the SLO", SLO = 5× the unloaded service execution time).

use accelflow_accel::timing::ServiceTimeModel;
use accelflow_core::arrivals::Arrival;
use accelflow_core::machine::{Machine, MachineConfig};
use accelflow_core::policy::Policy;
use accelflow_core::request::ServiceSpec;
use accelflow_core::stats::RunReport;
use accelflow_sim::time::SimDuration;
use accelflow_trace::templates::TraceLibrary;
use accelflow_workloads::arrivals::{bursty_arrivals, BurstyProfile};

use crate::sweep;

/// The run scale of an experiment (duration, warmup, per-service load).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Arrival window.
    pub duration: SimDuration,
    /// Warmup excluded from measurement.
    pub warmup: SimDuration,
    /// Mean requests/second per service (the paper's real-trace average
    /// is 13.4 kRPS).
    pub rps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale; override with the environment
    /// variables `ACCELFLOW_DURATION_MS`, `ACCELFLOW_RPS`, and
    /// `ACCELFLOW_SEED`.
    pub fn from_env() -> Self {
        let ms = std::env::var("ACCELFLOW_DURATION_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(160u64);
        let rps = std::env::var("ACCELFLOW_RPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(13_400.0f64);
        let seed = std::env::var("ACCELFLOW_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42u64);
        Scale {
            duration: SimDuration::from_millis(ms),
            warmup: SimDuration::from_millis((ms / 8).max(2)),
            rps,
            seed,
        }
    }

    /// A small scale for tests and criterion benches.
    pub fn quick() -> Self {
        Scale {
            duration: SimDuration::from_millis(40),
            warmup: SimDuration::from_millis(4),
            rps: 2_000.0,
            seed: 42,
        }
    }
}

/// A machine config at this scale for a policy.
pub fn machine_config(policy: Policy, scale: Scale) -> MachineConfig {
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = scale.warmup;
    cfg
}

/// Generates the Alibaba-like bursty arrivals once, so every policy
/// sees the same requests (common random numbers).
pub fn shared_arrivals(services: &[ServiceSpec], scale: Scale) -> Vec<Arrival> {
    let lib = TraceLibrary::standard();
    let timing =
        ServiceTimeModel::calibrated(accelflow_arch::config::ArchConfig::icelake().core_clock);
    bursty_arrivals(
        services,
        &lib,
        &timing,
        scale.rps,
        scale.duration,
        scale.seed,
        &BurstyProfile::alibaba_like(),
    )
}

/// Runs one policy over a shared arrival list.
pub fn run_policy(
    policy: Policy,
    services: &[ServiceSpec],
    arrivals: Vec<Arrival>,
    scale: Scale,
) -> RunReport {
    let cfg = machine_config(policy, scale);
    Machine::run_arrivals(&cfg, services, arrivals, scale.duration, scale.seed)
}

/// Runs one policy with its own Poisson arrivals at `rps` per service.
pub fn run_poisson(policy: Policy, services: &[ServiceSpec], rps: f64, scale: Scale) -> RunReport {
    let cfg = machine_config(policy, scale);
    Machine::run_workload(&cfg, services, rps, scale.duration, scale.seed)
}

/// Per-service mean latency on an unloaded system (one request in
/// flight at a time, in expectation).
pub fn unloaded_means(policy: Policy, services: &[ServiceSpec], seed: u64) -> Vec<SimDuration> {
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = SimDuration::from_millis(1);
    let report = Machine::run_workload(
        &cfg,
        services,
        120.0, // light enough that requests almost never overlap
        SimDuration::from_millis(120),
        seed,
    );
    report.per_service.iter().map(|s| s.mean()).collect()
}

/// Per-service P99 latency on an unloaded system — the baseline for
/// the SLO check (comparing loaded P99 against unloaded P99 makes the
/// check robust to the workload's intrinsic stragglers).
pub fn unloaded_p99s(cfg: &MachineConfig, services: &[ServiceSpec], seed: u64) -> Vec<SimDuration> {
    let mut u = cfg.clone();
    u.warmup = SimDuration::from_millis(1);
    // Long light-load run: the P99 estimate needs enough samples per
    // service to capture the workload's intrinsic stragglers.
    let report = Machine::run_workload(&u, services, 400.0, SimDuration::from_millis(1_500), seed);
    report.per_service.iter().map(|s| s.p99()).collect()
}

/// Whether a run meets the SLO: every service's P99 within
/// `slo_mult ×` its unloaded mean, and (almost) nothing left behind.
pub fn meets_slo(report: &RunReport, unloaded: &[SimDuration], slo_mult: f64) -> bool {
    if report.completion_ratio() < 0.97 {
        return false;
    }
    report.per_service.iter().zip(unloaded).all(|(s, u)| {
        if s.completed < 200 {
            return true; // not enough signal to fail a service
        }
        s.p99() <= *u * slo_mult
    })
}

/// Binary-searches the maximum per-service load (requests/second) that
/// still meets the SLO (paper Fig 14; SLO = 5× unloaded).
pub fn max_throughput(policy: Policy, services: &[ServiceSpec], slo_mult: f64, seed: u64) -> f64 {
    let mut cfg = MachineConfig::new(policy);
    cfg.warmup = SimDuration::from_millis(5);
    max_throughput_with(&cfg, services, slo_mult, seed)
}

/// [`max_throughput`] with an explicit machine configuration (smaller
/// machines for tests, PE sweeps for Fig 19, deadline scheduling for
/// §VII-A3).
///
/// With more than one sweep thread available this runs the
/// *speculative* parallel search: the unloaded baseline and all bracket
/// doublings go out as one [`sweep::map`], then each bisection round
/// evaluates the next few levels of the decision tree concurrently.
/// Every probe is a pure function of `rps` (seeded simulation, fixed
/// window), so the speculative walk lands on exactly the probes the
/// sequential search would have made and returns a bit-identical
/// result — it only trades redundant probe work for wall-clock.
pub fn max_throughput_with(
    cfg: &MachineConfig,
    services: &[ServiceSpec],
    slo_mult: f64,
    seed: u64,
) -> f64 {
    max_throughput_with_mode(cfg, services, slo_mult, seed, warm_start_enabled())
}

/// [`max_throughput_with`] with the warm-start mode pinned explicitly
/// (instead of read from `ACCELFLOW_WARM_START`) — for the determinism
/// suite's warm-vs-cold equality check and the `bench_record` speedup
/// measurement.
pub fn max_throughput_with_mode(
    cfg: &MachineConfig,
    services: &[ServiceSpec],
    slo_mult: f64,
    seed: u64,
    warm: bool,
) -> f64 {
    let prefix = probe_prefix(cfg, services, seed, warm);
    if sweep::parallelism() == 1 || sweep::in_sweep() {
        max_throughput_sequential(&prefix, cfg, services, slo_mult, seed)
    } else {
        max_throughput_speculative(&prefix, cfg, services, slo_mult, seed)
    }
}

/// Starting load of the throughput search (requests/second/service).
const SEARCH_FLOOR_RPS: f64 = 100.0;
/// Doubling steps in the exponential bracket phase.
const BRACKET_STEPS: usize = 12;
/// Halving steps in the bisection phase.
const BISECT_STEPS: usize = 7;
/// Load of the shared warm-up prefix every probe forks from — fixed
/// (not the probe's own load) so the prefix is common to the whole
/// search and can be simulated once.
const PREFIX_RPS: f64 = 400.0;

/// Whether throughput-search probes warm-start from a shared prefix
/// snapshot. On by default; `ACCELFLOW_WARM_START=0` (or `off`/
/// `false`) re-simulates the prefix per probe — same two-phase code
/// path, byte-identical results (pinned in the bench determinism
/// suite), just slower. The cold mode is the honest baseline for the
/// warm-start speedup row in `docs/BENCHMARKS.md`.
pub fn warm_start_enabled() -> bool {
    !matches!(
        std::env::var("ACCELFLOW_WARM_START").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    )
}

/// The shared probe prefix of one throughput search: `cfg.warmup` of
/// arrivals at the fixed [`PREFIX_RPS`], simulated once and
/// snapshotted when `warm` (see [`sweep::WarmStart`]).
///
/// Probes historically ran their own load from t = 0, so the queue
/// ramp-up transient fell inside the (excluded) warmup window; with a
/// shared light-load prefix the ramp to the probe's load happens at
/// the measurement boundary instead, which makes the probe marginally
/// more conservative — and identical for every probe, warm or cold.
fn probe_prefix(
    cfg: &MachineConfig,
    services: &[ServiceSpec],
    seed: u64,
    warm: bool,
) -> sweep::WarmStart {
    let lib = TraceLibrary::standard();
    let mut timing = ServiceTimeModel::calibrated(cfg.arch.core_clock);
    timing.set_speedup_scale(cfg.speedup_scale);
    let prefix = accelflow_core::arrivals::poisson_arrivals(
        services,
        &lib,
        &timing,
        PREFIX_RPS,
        cfg.warmup,
        seed,
    );
    sweep::WarmStart::new(
        cfg.clone(),
        services.to_vec(),
        prefix,
        cfg.warmup,
        seed,
        warm,
    )
}

/// One SLO probe at `rps`: fork the shared prefix, append a tail at
/// the probe load over a window that adapts so every service collects
/// enough samples for a stable P99 (low-rate probes need longer
/// windows). Pure in `(prefix, rps)` — the cornerstone of the
/// speculative parallel search.
fn probe_report(
    prefix: &sweep::WarmStart,
    cfg: &MachineConfig,
    services: &[ServiceSpec],
    rps: f64,
    seed: u64,
) -> RunReport {
    let ms = ((400.0 / rps) * 1000.0).clamp(80.0, 2_000.0) as u64;
    let window = SimDuration::from_millis(ms);
    let lib = TraceLibrary::standard();
    let mut timing = ServiceTimeModel::calibrated(cfg.arch.core_clock);
    timing.set_speedup_scale(cfg.speedup_scale);
    let mut tail =
        accelflow_core::arrivals::poisson_arrivals(services, &lib, &timing, rps, window, seed);
    let offset = prefix.prefix_end();
    for a in &mut tail {
        a.at = offset + SimDuration::from_picos(a.at.as_picos());
    }
    prefix.fork(tail, offset + window)
}

/// The original single-threaded search: exponential bracket with early
/// exit, then bisection. Used when only one sweep thread is configured
/// (it probes strictly fewer points than the speculative variant).
fn max_throughput_sequential(
    prefix: &sweep::WarmStart,
    cfg: &MachineConfig,
    services: &[ServiceSpec],
    slo_mult: f64,
    seed: u64,
) -> f64 {
    let unloaded = unloaded_p99s(cfg, services, seed);
    let probe = |rps: f64| {
        meets_slo(
            &probe_report(prefix, cfg, services, rps, seed),
            &unloaded,
            slo_mult,
        )
    };
    let mut lo = SEARCH_FLOOR_RPS;
    if !probe(lo) {
        return lo;
    }
    let mut hi = lo;
    for _ in 0..BRACKET_STEPS {
        hi *= 2.0;
        if !probe(hi) {
            break;
        }
        lo = hi;
    }
    for _ in 0..BISECT_STEPS {
        let mid = (lo + hi) / 2.0;
        if probe(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Midpoints of the bisection decision tree rooted at `(lo, hi)`, down
/// to `depth` levels, generated with the same `(lo + hi) / 2.0` float
/// arithmetic the sequential walk uses so speculative probes land on
/// bit-identical loads.
fn bisection_candidates(lo: f64, hi: f64, depth: usize, out: &mut Vec<f64>) {
    if depth == 0 {
        return;
    }
    let mid = (lo + hi) / 2.0;
    out.push(mid);
    bisection_candidates(lo, mid, depth - 1, out);
    bisection_candidates(mid, hi, depth - 1, out);
}

/// The parallel search. Phase 1 evaluates the unloaded baseline plus
/// every bracket doubling concurrently (the bracket has no early exit —
/// failed speculation costs only redundant work, never correctness).
/// Phase 2 bisects, evaluating 2^d − 1 speculative midpoints per round,
/// with d sized to the thread budget.
fn max_throughput_speculative(
    prefix: &sweep::WarmStart,
    cfg: &MachineConfig,
    services: &[ServiceSpec],
    slo_mult: f64,
    seed: u64,
) -> f64 {
    enum Job {
        Unloaded,
        Probe(f64),
    }
    enum Out {
        Unloaded(Vec<SimDuration>),
        Report(Box<RunReport>),
    }

    // Phase 1: baseline + bracket, one fan-out.
    let mut bracket = vec![SEARCH_FLOOR_RPS];
    let mut v = SEARCH_FLOOR_RPS;
    for _ in 0..BRACKET_STEPS {
        v *= 2.0;
        bracket.push(v);
    }
    let jobs: Vec<Job> = std::iter::once(Job::Unloaded)
        .chain(bracket.iter().map(|&rps| Job::Probe(rps)))
        .collect();
    let outs = sweep::map(jobs, |job| match job {
        Job::Unloaded => Out::Unloaded(unloaded_p99s(cfg, services, seed)),
        Job::Probe(rps) => Out::Report(Box::new(probe_report(prefix, cfg, services, rps, seed))),
    });
    let mut outs = outs.into_iter();
    let unloaded = match outs.next() {
        Some(Out::Unloaded(u)) => u,
        _ => unreachable!("first sweep job is the unloaded baseline"),
    };
    let pass: Vec<bool> = outs
        .map(|o| match o {
            Out::Report(r) => meets_slo(&r, &unloaded, slo_mult),
            Out::Unloaded(_) => unreachable!("only one baseline job"),
        })
        .collect();

    // Replay the sequential bracket walk over the cached outcomes.
    if !pass[0] {
        return bracket[0];
    }
    let mut lo = bracket[0];
    let mut hi = lo;
    for &ok in &pass[1..] {
        hi *= 2.0;
        if !ok {
            break;
        }
        lo = hi;
    }

    // Phase 2: speculative bisection. Depth d costs 2^d − 1 probes per
    // round; match it to the thread budget so one round is one wave.
    let depth_per_round = if sweep::parallelism() >= 8 { 3 } else { 2 };
    let mut cache: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
    let mut remaining = BISECT_STEPS;
    while remaining > 0 {
        let d = depth_per_round.min(remaining);
        let mut mids = Vec::new();
        bisection_candidates(lo, hi, d, &mut mids);
        // Degenerate intervals repeat midpoints; probe each load once.
        let mut seen = std::collections::HashSet::new();
        mids.retain(|m| !cache.contains_key(&m.to_bits()) && seen.insert(m.to_bits()));
        let results = sweep::map(mids.clone(), |m| {
            meets_slo(
                &probe_report(prefix, cfg, services, m, seed),
                &unloaded,
                slo_mult,
            )
        });
        for (m, r) in mids.iter().zip(results) {
            cache.insert(m.to_bits(), r);
        }
        for _ in 0..d {
            let mid = (lo + hi) / 2.0;
            if cache[&mid.to_bits()] {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        remaining -= d;
    }
    lo
}

/// Average P99 across services, as a single figure of merit.
pub fn avg_p99(report: &RunReport) -> f64 {
    let xs: Vec<f64> = report
        .per_service
        .iter()
        .filter(|s| s.completed > 0)
        .map(|s| s.p99().as_micros_f64())
        .collect();
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Average mean latency across services.
pub fn avg_mean(report: &RunReport) -> f64 {
    let xs: Vec<f64> = report
        .per_service
        .iter()
        .filter(|s| s.completed > 0)
        .map(|s| s.mean().as_micros_f64())
        .collect();
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelflow_workloads::socialnetwork;

    #[test]
    fn unloaded_means_are_finite_and_ordered() {
        let services = vec![socialnetwork::uniq_id(), socialnetwork::compose_post()];
        let means = unloaded_means(Policy::AccelFlow, &services, 1);
        assert_eq!(means.len(), 2);
        assert!(means[0] > SimDuration::ZERO);
        // CPost is a far longer service than UniqId.
        assert!(means[1] > means[0] * 2);
    }

    #[test]
    fn slo_check_enforces_p99() {
        let services = vec![socialnetwork::uniq_id()];
        let unloaded = unloaded_means(Policy::AccelFlow, &services, 1);
        let light = run_poisson(Policy::AccelFlow, &services, 500.0, Scale::quick());
        assert!(
            meets_slo(&light, &unloaded, 5.0),
            "light load must meet SLO"
        );
    }

    #[test]
    fn throughput_search_orders_policies() {
        // A deliberately tiny machine (2 cores, 1 PE/accelerator) keeps
        // the search cheap while preserving the ordering.
        let services = vec![socialnetwork::uniq_id()];
        let mk = |policy| {
            let mut cfg = machine_config(policy, Scale::quick());
            cfg.arch.cores = 2;
            cfg.arch.pes_per_accelerator = 1;
            cfg
        };
        let af = max_throughput_with(&mk(Policy::AccelFlow), &services, 5.0, 3);
        let non = max_throughput_with(&mk(Policy::NonAcc), &services, 5.0, 3);
        assert!(af > non * 1.5, "AccelFlow {af} must beat Non-acc {non}");
    }

    #[test]
    fn speculative_search_matches_sequential() {
        // The speculative parallel search must land on exactly the
        // sequential result — same bracket, same bisection descent —
        // because probes are pure. Compare the two algorithms directly
        // (sweep::map degrades gracefully whatever the thread count).
        let services = vec![socialnetwork::uniq_id()];
        let mut cfg = machine_config(Policy::AccelFlow, Scale::quick());
        cfg.arch.cores = 2;
        cfg.arch.pes_per_accelerator = 1;
        let prefix = probe_prefix(&cfg, &services, 3, true);
        let seq = max_throughput_sequential(&prefix, &cfg, &services, 5.0, 3);
        let spec = max_throughput_speculative(&prefix, &cfg, &services, 5.0, 3);
        assert_eq!(seq, spec, "speculative search diverged from sequential");
    }

    #[test]
    fn scales_read_env() {
        let s = Scale::quick();
        assert!(s.duration > s.warmup);
        let d = Scale::from_env();
        assert!(d.rps > 0.0);
    }
}

#[cfg(test)]
mod slo_tests {
    use super::*;
    use accelflow_core::stats::{MachineTotals, ServiceStats};
    use accelflow_sim::time::SimTime;

    fn report_with(p99s_us: &[(u64, u64)]) -> RunReport {
        // (p99 in µs, completed count) per service.
        let per_service = p99s_us
            .iter()
            .enumerate()
            .map(|(i, &(p99, n))| {
                let mut s = ServiceStats::new(format!("s{i}"));
                for _ in 0..n {
                    s.latency.record_duration(SimDuration::from_micros(p99));
                }
                s.completed = n;
                s.offered = n;
                s
            })
            .collect();
        RunReport {
            per_service,
            totals: MachineTotals::default(),
            measured: SimDuration::from_millis(10),
            ended_at: SimTime::ZERO + SimDuration::from_millis(10),
            faults: accelflow_core::FaultStats::default(),
            control: accelflow_core::ControlStats::default(),
            audit: accelflow_core::audit::AuditReport::disabled(),
            telemetry: accelflow_sim::telemetry::TelemetryReport::disabled(),
        }
    }

    #[test]
    fn slo_passes_within_budget() {
        let unloaded = vec![SimDuration::from_micros(100)];
        let r = report_with(&[(400, 1000)]);
        assert!(meets_slo(&r, &unloaded, 5.0));
    }

    #[test]
    fn slo_fails_beyond_budget() {
        let unloaded = vec![SimDuration::from_micros(100)];
        let r = report_with(&[(600, 1000)]);
        assert!(!meets_slo(&r, &unloaded, 5.0));
    }

    #[test]
    fn slo_skips_thin_services() {
        // Too few samples to judge: pass.
        let unloaded = vec![SimDuration::from_micros(100)];
        let r = report_with(&[(900, 30)]);
        assert!(meets_slo(&r, &unloaded, 5.0));
    }

    #[test]
    fn slo_fails_on_incompletion() {
        let unloaded = vec![SimDuration::from_micros(100)];
        let mut r = report_with(&[(100, 1000)]);
        r.per_service[0].offered = 2000; // half the requests never finished
        assert!(!meets_slo(&r, &unloaded, 5.0));
    }

    #[test]
    fn one_bad_service_fails_the_whole_machine() {
        let unloaded = vec![SimDuration::from_micros(100), SimDuration::from_micros(100)];
        let r = report_with(&[(100, 1000), (5_000, 1000)]);
        assert!(!meets_slo(&r, &unloaded, 5.0));
    }

    #[test]
    fn averages_ignore_empty_services() {
        let r = report_with(&[(100, 1000), (0, 0)]);
        // avg_p99 must not divide by the empty service.
        let avg = avg_p99(&r);
        assert!((avg - 100.0).abs() / 100.0 < 0.05, "{avg}");
        let empty = RunReport {
            per_service: vec![],
            totals: MachineTotals::default(),
            measured: SimDuration::ZERO,
            ended_at: SimTime::ZERO,
            faults: accelflow_core::FaultStats::default(),
            control: accelflow_core::ControlStats::default(),
            audit: accelflow_core::audit::AuditReport::disabled(),
            telemetry: accelflow_sim::telemetry::TelemetryReport::disabled(),
        };
        assert_eq!(avg_p99(&empty), 0.0);
        assert_eq!(avg_mean(&empty), 0.0);
    }
}
